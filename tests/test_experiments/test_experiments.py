"""Tests for the experiment drivers (reduced-scale configurations).

The benchmark harness runs the paper-scale versions; these tests exercise the
same code paths with tiny epoch counts so the whole suite stays fast.
"""

import pytest

from repro.core.weighting import BOUNDS_MODERATE
from repro.experiments import (
    fig1_overview,
    fig3_transpilation,
    fig4_ghz_validation,
    fig5_weight_trace,
    render_fig1,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig9,
    render_fig11,
    render_fig12,
    render_speedup,
    render_table1,
    run_fig6_vqe,
    run_fig9_weighted_vqe,
    run_fig11_qaoa,
    run_fig12_weighted_qaoa,
    speedup_from_result,
    table1_rows,
)
from repro.experiments import render_contention, run_sched_contention
from repro.experiments.fig6_vqe import VQEExperimentConfig
from repro.experiments.fig9_weighted_vqe import WeightedVQEConfig
from repro.experiments.fig11_qaoa import QAOAExperimentConfig
from repro.experiments.fig12_weighted_qaoa import WeightedQAOAConfig
from repro.experiments.sched_contention import ContentionConfig


class TestTable1AndFig3:
    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 11
        assert {row["device"] for row in rows} == {
            "Lima", "x2", "Belem", "Quito", "Manila", "Santiago", "Bogota",
            "Lagos", "Casablanca", "Toronto", "Manhattan",
        }
        assert "Manhattan" in render_table1()

    def test_fig3_rows(self):
        rows = fig3_transpilation()
        assert {row.device for row in rows} == {"Belem", "x2", "Manila"}
        x2 = [r for r in rows if r.device == "x2" and r.circuit == "fig3_demo"][0]
        belem = [r for r in rows if r.device == "Belem" and r.circuit == "fig3_demo"][0]
        assert x2.num_swaps <= belem.num_swaps
        assert "x2" in render_fig3(rows)


class TestFig4AndFig5:
    def test_ghz_validation_points_and_correlation(self):
        result = fig4_ghz_validation(
            device_names=("x2", "Belem", "Bogota", "Quito"),
            ages_hours=(0.02, 12.0),
            shots=2048,
            repeats=1,
            seed=1,
        )
        assert len(result.points) == 8
        for point in result.points:
            assert 0.0 <= point.calculated_error <= 1.0
            assert 0.0 <= point.observed_error <= 1.0
        assert result.correlation.pearson_r > 0.3
        assert "r=" in render_fig4(result)

    def test_weight_trace(self):
        result = fig5_weight_trace(
            device_names=("x2", "Belem", "Bogota"),
            duration_hours=6.0,
            step_hours=2.0,
        )
        assert len(result.times_hours) == 4
        for device in ("x2", "Belem", "Bogota"):
            assert len(result.weights[device]) == 4
            low, high = result.weight_range(device)
            assert 0.5 - 1e-9 <= low <= high <= 1.5 + 1e-9
        # x2 should carry the lowest average weight of the three
        assert result.mean_weight("x2") <= min(
            result.mean_weight("Belem"), result.mean_weight("Bogota")
        )
        assert "x2" in render_fig5(result)


@pytest.fixture(scope="module")
def tiny_fig6():
    return run_fig6_vqe(
        VQEExperimentConfig(
            epochs=3,
            shots=256,
            single_devices=("x2", "Bogota"),
            ensemble_devices=("x2", "Belem", "Bogota"),
            eqc_runs=1,
            seed=5,
        )
    )


class TestFig6AndDerived:
    def test_structure(self, tiny_fig6):
        assert set(tiny_fig6.singles.keys()) == {"x2", "Bogota"}
        assert len(tiny_fig6.eqc_runs) == 1
        assert len(tiny_fig6.ideal) == 3

    def test_tables(self, tiny_fig6):
        error_rows = tiny_fig6.error_rows()
        speed_rows = tiny_fig6.speed_rows()
        assert len(error_rows) == len(speed_rows) == 4  # ideal + 2 singles + 1 EQC
        assert all("error_pct" in row for row in error_rows)
        assert "Training speed" in render_fig6(tiny_fig6)

    def test_eqc_mean_curve(self, tiny_fig6):
        epochs, mean, std = tiny_fig6.eqc_mean_curve()
        assert len(epochs) == len(mean) == len(std) == 3

    def test_fig1_rows(self, tiny_fig6):
        rows = fig1_overview(result=tiny_fig6, devices=("x2", "Bogota"))
        assert [row.system for row in rows] == ["x2", "Bogota", "EQC"]
        assert "EQC" in render_fig1(rows)

    def test_speedup_summary(self, tiny_fig6):
        summary = speedup_from_result(tiny_fig6)
        assert summary.max_speedup >= summary.min_speedup > 0
        assert "EQC" in render_speedup(summary)


class TestFig9:
    def test_sweep(self):
        result = run_fig9_weighted_vqe(
            WeightedVQEConfig(
                epochs=2,
                shots=256,
                ensemble_devices=("x2", "Belem", "Bogota"),
                sweep=(("no weighting", None), ("weights 0.50-1.50", BOUNDS_MODERATE)),
                seed=3,
                run_ideal_reference=False,
            )
        )
        assert set(result.runs.keys()) == {"no weighting", "weights 0.50-1.50"}
        rows = result.rows()
        assert len(rows) == 2
        assert result.reference_energy == pytest.approx(result.problem.ground_energy)
        assert "weights" in render_fig9(result)


class TestFig11AndFig12:
    @pytest.fixture(scope="class")
    def tiny_fig11(self):
        return run_fig11_qaoa(
            QAOAExperimentConfig(
                iterations=3,
                shots=256,
                devices=("Belem", "Quito", "Bogota"),
                eqc_runs=1,
                seed=4,
                run_ideal_reference=False,
            )
        )

    def test_fig11_structure(self, tiny_fig11):
        assert set(tiny_fig11.singles.keys()) == {"Belem", "Quito", "Bogota"}
        rows = tiny_fig11.rows()
        assert len(rows) == 4
        for row in rows:
            assert -1.0 <= row["final_cost"] <= 0.0
        assert "Optimal cut" in render_fig11(tiny_fig11)

    def test_fig12_reuses_baseline(self, tiny_fig11):
        result = run_fig12_weighted_qaoa(
            WeightedQAOAConfig(
                iterations=3,
                shots=256,
                devices=("Belem", "Quito", "Bogota"),
                sweep=(("no weighting", None), ("weights 0.50-1.50", BOUNDS_MODERATE)),
                seed=4,
            ),
            baseline=tiny_fig11,
        )
        assert len(result.sweep_rows()) == 2
        ranking = result.ranking_rows()
        assert len(ranking) == 2 + 3 + 1
        assert ranking[0]["rank"] == 1
        # ranking is sorted by best cost ascending (more negative = better)
        costs = [row["best_cost"] for row in ranking]
        assert costs == sorted(costs)
        assert "ranking" in render_fig12(result).lower()


class TestSchedContention:
    @pytest.fixture(scope="class")
    def tiny_contention(self):
        return run_sched_contention(
            ContentionConfig(
                tenant_levels=(0, 200),
                policies=("fifo", "fair_share"),
                num_epochs=1,
                shots=128,
                seed=7,
            )
        )

    def test_grid_structure(self, tiny_contention):
        assert len(tiny_contention.cells) == 4
        cell = tiny_contention.cell("fifo", 200)
        assert cell.tenant_jobs_completed > 0
        assert cell.history.total_updates == 16

    def test_contention_slows_training(self, tiny_contention):
        for policy in ("fifo", "fair_share"):
            curve = tiny_contention.epochs_per_hour_curve(policy)
            assert curve[0][1] > curve[-1][1]

    def test_render(self, tiny_contention):
        text = render_contention(tiny_contention)
        assert "epochs_per_hour" in text
        assert "fair_share" in text

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ContentionConfig(tenant_levels=())
        with pytest.raises(ValueError):
            ContentionConfig(num_epochs=0)
