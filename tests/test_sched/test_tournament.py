"""Tests for the policy tournament harness: fleet cloning, cells, telemetry."""

import pytest

from repro.sched.tournament import (
    FLEET_TEMPLATES,
    SMOKE_CONFIG,
    TournamentConfig,
    clone_fleet,
    publish_tournament,
    run_cell,
    run_tournament,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.report import render_text, tournament_table

#: A deliberately tiny grid so the whole suite stays fast.
TINY = TournamentConfig(
    device_counts=(6,),
    tenant_levels=(0, 200),
    policies=("fifo", "backpressure"),
    num_epochs=2,
    clients=3,
    epoch_job_seconds=120.0,
)

_WALL_FIELDS = ("wall_seconds", "events_per_sec_wall")


class TestCloneFleet:
    def test_count_and_unique_names(self):
        fleet = clone_fleet(25)
        names = [qpu.name for qpu, _ in fleet]
        assert len(fleet) == 25
        assert len(set(names)) == 25

    def test_clones_cycle_templates_with_distinct_seeds(self):
        fleet = clone_fleet(2 * len(FLEET_TEMPLATES))
        seeds = [qpu.spec.seed for qpu, _ in fleet]
        assert len(set(seeds)) == len(seeds)
        first, second = fleet[0][0], fleet[len(FLEET_TEMPLATES)][0]
        assert first.spec.base_job_seconds == second.spec.base_job_seconds

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            clone_fleet(0)


class TestRunCell:
    def test_cell_reports_all_tracked_fields(self):
        cell = run_cell("fifo", 6, 200, TINY)
        for field in (
            "policy",
            "devices",
            "tenants",
            "epochs_per_hour",
            "foreground_wait_mean",
            "events_processed",
            "slo_queue_wait_p50",
            "slo_queue_wait_p99",
            "slo_rejected_fraction",
            "slo_tenant_fairness_jain",
        ):
            assert field in cell, field
        assert cell["epochs_per_hour"] > 0
        assert 0.0 <= cell["slo_rejected_fraction"] <= 1.0

    def test_cells_are_deterministic(self):
        def strip(cell):
            return {k: v for k, v in cell.items() if k not in _WALL_FIELDS}

        assert strip(run_cell("backpressure", 6, 200, TINY)) == strip(
            run_cell("backpressure", 6, 200, TINY)
        )

    def test_idle_fleet_trains_at_full_speed(self):
        cell = run_cell("fifo", 6, 0, TINY)
        assert cell["slo_rejected_fraction"] == 0.0
        # No contention: each epoch costs exactly the fixed job duration.
        assert cell["epochs_per_hour"] == pytest.approx(3600.0 / 120.0)


class TestRunTournament:
    def test_grid_shape_and_config_echo(self):
        result = run_tournament(TINY)
        assert len(result["cells"]) == 4
        assert result["config"]["policies"] == ["fifo", "backpressure"]
        coords = {(c["devices"], c["tenants"], c["policy"]) for c in result["cells"]}
        assert len(coords) == 4

    def test_smoke_grid_is_two_by_two(self):
        cells = (
            len(SMOKE_CONFIG.device_counts)
            * len(SMOKE_CONFIG.tenant_levels)
            * len(SMOKE_CONFIG.policies)
        )
        assert cells == 4


class TestTelemetryPublication:
    def test_gauges_round_trip_into_the_report_table(self):
        result = run_tournament(TINY)
        registry = MetricsRegistry()
        publish_tournament(result, registry)
        rows = tournament_table(dict(registry.gauges()))
        assert len(rows) == len(result["cells"])
        by_coord = {(c["devices"], c["tenants"], c["policy"]): c for c in result["cells"]}
        for row in rows:
            cell = by_coord[(row["devices"], row["tenants"], row["policy"])]
            assert row["epochs_per_hour"] == pytest.approx(cell["epochs_per_hour"])
            assert row["rejected_fraction"] == pytest.approx(
                cell["slo_rejected_fraction"]
            )

    def test_render_text_includes_tournament_section(self):
        result = run_tournament(TINY)
        registry = MetricsRegistry()
        publish_tournament(result, registry)
        report = {
            "counters": {},
            "gauges": dict(registry.gauges()),
            "histograms": {},
            "spans_by_category": {},
        }
        text = render_text(report)
        assert "tournament" in text
        assert "backpressure" in text
