"""End-to-end contention tests: EQC training on a multi-tenant cloud."""

import numpy as np
import pytest

from repro import EQCConfig, EQCEnsemble, EnergyObjective


DEVICES = ("x2", "Belem", "Bogota")


def run_eqc(vqe_problem, tenants, policy="fifo", num_epochs=2):
    config = EQCConfig(
        device_names=DEVICES,
        shots=128,
        seed=7,
        scheduling_policy=policy,
        background_tenants=tenants,
    )
    ensemble = EQCEnsemble(EnergyObjective(vqe_problem.estimator), config)
    theta = np.linspace(0.1, 1.6, 16)
    return ensemble.train(theta, num_epochs=num_epochs)


class TestSchedulerWiring:
    def test_policy_implies_scheduler(self, vqe_problem):
        config = EQCConfig(device_names=DEVICES, scheduling_policy="fifo")
        ensemble = EQCEnsemble(EnergyObjective(vqe_problem.estimator), config)
        assert ensemble.scheduler is not None
        assert ensemble.provider.scheduler is ensemble.scheduler
        assert ensemble.scheduler.policy.name == "fifo"

    def test_default_config_keeps_statistical_fallback(self, vqe_problem):
        config = EQCConfig(device_names=DEVICES)
        ensemble = EQCEnsemble(EnergyObjective(vqe_problem.estimator), config)
        assert not config.uses_scheduler
        assert ensemble.scheduler is None
        assert ensemble.provider.scheduler is None

    def test_history_carries_scheduler_metrics(self, vqe_problem):
        history = run_eqc(vqe_problem, tenants=50, num_epochs=1)
        metrics = history.metadata["scheduler"]
        assert metrics["policy"] == "fifo"
        assert metrics["events_processed"] > 0
        assert set(metrics["devices"]) == set(DEVICES)


class TestContentionDegradesThroughput:
    def test_epochs_per_hour_degrades_monotonically_with_tenant_load(
        self, vqe_problem
    ):
        """The tentpole property: background tenant storms slow EQC down."""
        rates = [
            run_eqc(vqe_problem, tenants).epochs_per_hour()
            for tenants in (0, 100, 1000)
        ]
        assert rates[0] > rates[1] > rates[2]
        # The 1000-tenant storm is not a marginal slowdown.
        assert rates[0] > 5 * rates[2]

    def test_contention_wait_shows_up_in_utilization(self, vqe_problem):
        quiet = run_eqc(vqe_problem, tenants=0, num_epochs=1)
        stormy = run_eqc(vqe_problem, tenants=1000, num_epochs=1)
        quiet_wait = sum(
            d["queued_seconds"] for d in quiet.metadata["utilization"].values()
        )
        stormy_wait = sum(
            d["queued_seconds"] for d in stormy.metadata["utilization"].values()
        )
        assert stormy_wait > quiet_wait

    def test_determinism_under_contention(self, vqe_problem):
        a = run_eqc(vqe_problem, tenants=100)
        b = run_eqc(vqe_problem, tenants=100)
        assert a.losses.tolist() == b.losses.tolist()
        assert a.times_hours.tolist() == b.times_hours.tolist()


class TestPolicySweep:
    @pytest.mark.parametrize(
        "policy", ["fifo", "priority", "fair_share", "least_loaded", "calibration_aware"]
    )
    def test_every_policy_trains_to_completion(self, vqe_problem, policy):
        history = run_eqc(vqe_problem, tenants=20, policy=policy, num_epochs=1)
        assert len(history.records) == 1
        assert np.isfinite(history.final_loss())
