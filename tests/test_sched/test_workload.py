"""Tests for the synthetic background tenant workload generator."""

import pytest

from repro.cloud.queueing import QueueModel, queue_model_for
from repro.devices.catalog import build_qpu
from repro.sched import CloudScheduler, WorkloadGenerator


def scheduler_with_traffic(num_tenants, devices=("Belem",), seed=0, **workload_kwargs):
    workload = WorkloadGenerator(num_tenants=num_tenants, **workload_kwargs)
    scheduler = CloudScheduler(
        policy="fifo", workload=workload, seed=seed, downtime_seconds=0.0
    )
    for name in devices:
        scheduler.register_device(build_qpu(name), queue_model_for(name))
    return scheduler, workload


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=-1)
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, jobs_per_tenant_hour=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, circuit_range=(0, 4))
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, circuit_range=(5, 4))


class TestArrivalRate:
    def test_scales_with_popularity_and_diurnal_curve(self):
        workload = WorkloadGenerator(num_tenants=100)
        quiet = QueueModel(popularity=0.1, diurnal_amplitude=0.0)
        busy = QueueModel(popularity=0.9, diurnal_amplitude=0.0)
        assert workload.arrival_rate(busy, 0.0) > workload.arrival_rate(quiet, 0.0)
        swing = QueueModel(popularity=0.5, diurnal_amplitude=0.5)
        rates = [workload.arrival_rate(swing, h * 3600.0) for h in range(24)]
        assert max(rates) > min(rates)

    def test_zero_tenants_means_zero_rate(self):
        workload = WorkloadGenerator(num_tenants=0)
        assert workload.arrival_rate(queue_model_for("Belem"), 0.0) == 0.0


class TestInjection:
    def test_traffic_reaches_the_queue(self):
        scheduler, workload = scheduler_with_traffic(num_tenants=200)
        scheduler.run_until_time(4 * 3600.0)
        assert workload.jobs_injected > 0
        queue = scheduler.queues["Belem"]
        assert len(queue.completed) > 0
        assert all(job.tenant.startswith("tenant") for job in queue.completed)

    def test_zero_tenants_inject_nothing(self):
        scheduler, workload = scheduler_with_traffic(num_tenants=0)
        scheduler.run_until_time(4 * 3600.0)
        assert workload.jobs_injected == 0
        assert scheduler.queues["Belem"].completed == []

    def test_deterministic_under_fixed_seed(self):
        def trace(seed):
            scheduler, _ = scheduler_with_traffic(num_tenants=150, seed=seed)
            scheduler.run_until_time(2 * 3600.0)
            return [
                (job.tenant, job.arrival_time, job.start_time, job.finish_time)
                for job in scheduler.queues["Belem"].completed
            ]

        first = trace(seed=9)
        assert first == trace(seed=9)
        assert first != trace(seed=10)

    def test_per_device_streams_are_independent_of_fleet(self):
        """Belem's traffic is identical whether or not Bogota is registered."""

        def belem_arrivals(devices):
            scheduler, _ = scheduler_with_traffic(num_tenants=100, devices=devices)
            scheduler.run_until_time(2 * 3600.0)
            return [job.arrival_time for job in scheduler.queues["Belem"].completed]

        assert belem_arrivals(("Belem",)) == belem_arrivals(("Belem", "Bogota"))

    def test_more_tenants_more_traffic(self):
        light_sched, _ = scheduler_with_traffic(num_tenants=50)
        heavy_sched, _ = scheduler_with_traffic(num_tenants=500)
        light_sched.run_until_time(3 * 3600.0)
        heavy_sched.run_until_time(3 * 3600.0)
        light = len(light_sched.queues["Belem"].completed)
        heavy = len(heavy_sched.queues["Belem"].completed)
        assert heavy > light

    def test_tenant_report_aggregates_latency(self):
        scheduler, _ = scheduler_with_traffic(num_tenants=5)
        scheduler.run_until_time(24 * 3600.0)
        report = scheduler.tenant_report()
        assert report
        for stats in report.values():
            assert stats["jobs_completed"] >= 1
            assert stats["mean_wait_seconds"] >= 0.0
            assert stats["mean_turnaround_seconds"] > 0.0
