"""Tests for the synthetic background tenant workload generator."""

import numpy as np
import pytest

from repro.cloud.queueing import QueueModel, queue_model_for
from repro.devices.catalog import build_qpu
from repro.sched import CloudScheduler, EventKernel, WorkloadGenerator


def scheduler_with_traffic(num_tenants, devices=("Belem",), seed=0, **workload_kwargs):
    workload = WorkloadGenerator(num_tenants=num_tenants, **workload_kwargs)
    scheduler = CloudScheduler(
        policy="fifo", workload=workload, seed=seed, downtime_seconds=0.0
    )
    for name in devices:
        scheduler.register_device(build_qpu(name), queue_model_for(name))
    return scheduler, workload


def record_arrivals(horizon, num_tenants=100, devices=("Belem", "Bogota"), **kwargs):
    """Every injected arrival as (device, time, tenant, circuits, priority)."""
    scheduler, _ = scheduler_with_traffic(num_tenants, devices=devices, **kwargs)
    records = []
    for name, queue in scheduler.queues.items():
        original = queue.on_arrival

        def recorder(job, now, name=name, original=original):
            records.append(
                (name, job.arrival_time, job.tenant, job.num_circuits, job.priority)
            )
            original(job, now)

        queue.on_arrival = recorder
    scheduler.run_until_time(horizon)
    return records


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=-1)
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, jobs_per_tenant_hour=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, circuit_range=(0, 4))
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, circuit_range=(5, 4))
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, chunk_refresh_seconds=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(num_tenants=1, max_chunk=0)


class TestBatchedSequentialEquivalence:
    """Batched and sequential admission must agree bit-for-bit.

    Both modes share the chunk generator (same RNG streams, same numpy
    calls), so every arrival timestamp, tenant, batch size and priority must
    be identical whether chunks enter the kernel through ``schedule_batch``
    or one event at a time.
    """

    def test_arrival_streams_agree_bit_for_bit(self):
        horizon = 6 * 3600.0
        batched = record_arrivals(horizon, batch_arrivals=True)
        sequential = record_arrivals(horizon, batch_arrivals=False)
        assert len(batched) > 20
        assert batched == sequential

    def test_golden_pin_of_the_chunk_rng_protocol(self):
        """Hex-pinned first arrivals for seed 0 — moves only if the chunked
        RNG protocol (stream labels, draw order, cumsum accumulation) moves.
        """
        records = record_arrivals(3600.0, devices=("Belem",))
        head = [(t.hex(), tenant, circuits) for _, t, tenant, circuits, _ in records[:4]]
        assert head == [
            ("0x1.f8b63a6437aa5p+7", "tenant42", 6),
            ("0x1.f142911cc0f84p+8", "tenant57", 8),
            ("0x1.40a808f14ab05p+9", "tenant23", 8),
            ("0x1.4f1163ae5da98p+9", "tenant79", 4),
        ]

    def test_vectorized_draws_match_scalar_reference(self):
        """The RNG contract the chunk protocol leans on: one ``size=K`` array
        call consumes the bit stream exactly like K scalar draws, and
        ``cumsum`` accumulates exactly like a sequential running sum."""
        workload = WorkloadGenerator(num_tenants=100)
        rate = workload.arrival_rate(queue_model_for("Belem"), 0.0)
        size = 64

        vec_rng = EventKernel(seed=0).rng_stream("workload/Belem")
        times_vec = 0.0 + np.cumsum(vec_rng.standard_exponential(size) / rate)

        scalar_rng = EventKernel(seed=0).rng_stream("workload/Belem")
        running = 0.0
        times_scalar = []
        for _ in range(size):
            running += float(scalar_rng.standard_exponential()) / rate
            times_scalar.append(0.0 + running)
        assert times_vec.tolist() == times_scalar

        vec_marks = EventKernel(seed=0).rng_stream("workload/Belem/marks")
        tenants_vec = vec_marks.integers(100, size=size).tolist()
        scalar_marks = EventKernel(seed=0).rng_stream("workload/Belem/marks")
        tenants_scalar = [int(scalar_marks.integers(100)) for _ in range(size)]
        assert tenants_vec == tenants_scalar


class TestSpreadLoad:
    def test_spread_load_dilutes_per_device_traffic(self):
        """With spread_load, a fixed community divides across the fleet, so
        one device of a two-device fleet sees less traffic than a lone one."""

        def belem_arrivals(devices):
            scheduler, workload = scheduler_with_traffic(
                num_tenants=400, devices=devices, spread_load=True
            )
            scheduler.run_until_time(4 * 3600.0)
            return sum(
                1 for job in scheduler.queues["Belem"].completed
            ) + scheduler.queues["Belem"].queue_length

        alone = belem_arrivals(("Belem",))
        shared = belem_arrivals(("Belem", "Bogota", "Casablanca", "Lagos"))
        assert shared < alone


class TestArrivalRate:
    def test_scales_with_popularity_and_diurnal_curve(self):
        workload = WorkloadGenerator(num_tenants=100)
        quiet = QueueModel(popularity=0.1, diurnal_amplitude=0.0)
        busy = QueueModel(popularity=0.9, diurnal_amplitude=0.0)
        assert workload.arrival_rate(busy, 0.0) > workload.arrival_rate(quiet, 0.0)
        swing = QueueModel(popularity=0.5, diurnal_amplitude=0.5)
        rates = [workload.arrival_rate(swing, h * 3600.0) for h in range(24)]
        assert max(rates) > min(rates)

    def test_zero_tenants_means_zero_rate(self):
        workload = WorkloadGenerator(num_tenants=0)
        assert workload.arrival_rate(queue_model_for("Belem"), 0.0) == 0.0


class TestInjection:
    def test_traffic_reaches_the_queue(self):
        scheduler, workload = scheduler_with_traffic(num_tenants=200)
        scheduler.run_until_time(4 * 3600.0)
        assert workload.jobs_injected > 0
        queue = scheduler.queues["Belem"]
        assert len(queue.completed) > 0
        assert all(job.tenant.startswith("tenant") for job in queue.completed)

    def test_zero_tenants_inject_nothing(self):
        scheduler, workload = scheduler_with_traffic(num_tenants=0)
        scheduler.run_until_time(4 * 3600.0)
        assert workload.jobs_injected == 0
        assert scheduler.queues["Belem"].completed == []

    def test_deterministic_under_fixed_seed(self):
        def trace(seed):
            scheduler, _ = scheduler_with_traffic(num_tenants=150, seed=seed)
            scheduler.run_until_time(2 * 3600.0)
            return [
                (job.tenant, job.arrival_time, job.start_time, job.finish_time)
                for job in scheduler.queues["Belem"].completed
            ]

        first = trace(seed=9)
        assert first == trace(seed=9)
        assert first != trace(seed=10)

    def test_per_device_streams_are_independent_of_fleet(self):
        """Belem's traffic is identical whether or not Bogota is registered."""

        def belem_arrivals(devices):
            scheduler, _ = scheduler_with_traffic(num_tenants=100, devices=devices)
            scheduler.run_until_time(2 * 3600.0)
            return [job.arrival_time for job in scheduler.queues["Belem"].completed]

        assert belem_arrivals(("Belem",)) == belem_arrivals(("Belem", "Bogota"))

    def test_more_tenants_more_traffic(self):
        light_sched, _ = scheduler_with_traffic(num_tenants=50)
        heavy_sched, _ = scheduler_with_traffic(num_tenants=500)
        light_sched.run_until_time(3 * 3600.0)
        heavy_sched.run_until_time(3 * 3600.0)
        light = len(light_sched.queues["Belem"].completed)
        heavy = len(heavy_sched.queues["Belem"].completed)
        assert heavy > light

    def test_tenant_report_aggregates_latency(self):
        scheduler, _ = scheduler_with_traffic(num_tenants=5)
        scheduler.run_until_time(24 * 3600.0)
        report = scheduler.tenant_report()
        assert report
        for stats in report.values():
            assert stats["jobs_completed"] >= 1
            assert stats["mean_wait_seconds"] >= 0.0
            assert stats["mean_turnaround_seconds"] > 0.0
