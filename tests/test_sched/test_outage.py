"""Tests for injected outages on the discrete-event scheduler path."""

import pytest

from repro.cloud.queueing import queue_model_for
from repro.devices.catalog import build_qpu
from repro.faults import FaultPlan, OutageWindow
from repro.sched import CloudScheduler


def make_scheduler(device="Belem", **kwargs):
    kwargs.setdefault("downtime_seconds", 0.0)
    scheduler = CloudScheduler(policy="fifo", **kwargs)
    scheduler.register_device(build_qpu(device), queue_model_for(device))
    return scheduler


class TestOutageWindows:
    def test_job_arriving_exactly_at_outage_start_waits(self):
        """Downtime events outrank arrivals at the same timestamp, so a job
        landing exactly when the window opens must wait out the outage."""
        scheduler = make_scheduler()
        scheduler.inject_outage("Belem", start=100.0, duration=50.0)
        job = scheduler.submit(device_name="Belem", arrival=100.0, duration=10.0)
        scheduler.run_until_complete(job)
        assert job.start_time == pytest.approx(150.0)
        assert job.finish_time == pytest.approx(160.0)

    def test_job_before_outage_unaffected(self):
        scheduler = make_scheduler()
        scheduler.inject_outage("Belem", start=100.0, duration=50.0)
        job = scheduler.submit(device_name="Belem", arrival=0.0, duration=10.0)
        scheduler.run_until_complete(job)
        assert job.start_time == pytest.approx(0.0)
        assert job.finish_time == pytest.approx(10.0)

    def test_in_service_job_preempted_and_requeued_at_head(self):
        scheduler = make_scheduler()
        scheduler.inject_outage("Belem", start=50.0, duration=100.0)
        first = scheduler.submit(device_name="Belem", arrival=0.0, duration=80.0)
        second = scheduler.submit(device_name="Belem", arrival=10.0, duration=20.0)
        scheduler.run_until_complete(second)
        # The preempted job restarts from scratch at window end, *before* the
        # job that was merely waiting.
        assert first.start_time == pytest.approx(150.0)
        assert first.finish_time == pytest.approx(230.0)
        assert second.start_time == pytest.approx(230.0)
        assert second.finish_time == pytest.approx(250.0)

    def test_preempted_service_is_not_double_counted(self):
        scheduler = make_scheduler()
        scheduler.inject_outage("Belem", start=50.0, duration=100.0)
        job = scheduler.submit(device_name="Belem", arrival=0.0, duration=80.0)
        scheduler.run_until_complete(job)
        assert job.service_seconds == pytest.approx(80.0)

    def test_outage_overlapping_calibration_window_extends_downtime(self):
        # The injected outage opens inside the first calibration window and
        # outlasts it, so the device stays down until the *outage* end.
        from repro.cloud.clock import SECONDS_PER_HOUR

        scheduler = make_scheduler(downtime_seconds=600.0)
        queue = scheduler.queues["Belem"]
        period = queue.qpu.spec.calibration_period_hours * SECONDS_PER_HOUR
        outage_start = period + 60.0
        outage_end = outage_start + 50_000.0
        scheduler.inject_outage("Belem", outage_start, duration=50_000.0)
        job = scheduler.submit(
            device_name="Belem", arrival=period + 30.0, duration=10.0
        )
        scheduler.run_until_complete(job)
        assert queue.downtime_windows[0].start == pytest.approx(period)
        assert queue.outage_windows[0].start == pytest.approx(outage_start)
        # Calibration alone would have released the device much earlier.
        calibration_end = period + queue.downtime_windows[0].duration
        assert outage_end > calibration_end
        assert job.start_time == pytest.approx(outage_end)

    def test_permanent_outage_blocks_forever_without_spinning(self):
        scheduler = make_scheduler()
        scheduler.inject_outage("Belem", start=0.0, permanent=True)
        job = scheduler.submit(device_name="Belem", arrival=10.0, duration=5.0)
        # The kernel must drain (no infinite wakeups) with the job unstarted.
        scheduler.run_until_time(1e9)
        assert not job.done
        assert job.start_time is None
        assert scheduler.queues["Belem"].downtime_until == float("inf")

    def test_validation(self):
        scheduler = make_scheduler()
        with pytest.raises(KeyError):
            scheduler.inject_outage("nope", start=0.0)
        with pytest.raises(ValueError):
            scheduler.inject_outage("Belem", start=-1.0)
        with pytest.raises(ValueError):
            scheduler.inject_outage("Belem", start=0.0, duration=0.0)


class TestFaultPlanIntegration:
    def test_apply_fault_plan_arms_all_outages(self):
        scheduler = CloudScheduler(policy="fifo", downtime_seconds=0.0)
        for device in ("Belem", "Bogota"):
            scheduler.register_device(build_qpu(device), queue_model_for(device))
        plan = FaultPlan(
            outages=(
                OutageWindow(device="Belem", start=50.0, duration=100.0),
                OutageWindow(device="Bogota", start=0.0, duration=25.0),
            )
        )
        scheduler.apply_fault_plan(plan)
        belem = scheduler.submit(device_name="Belem", arrival=60.0, duration=10.0)
        bogota = scheduler.submit(device_name="Bogota", arrival=0.0, duration=10.0)
        scheduler.run_until_complete(belem)
        scheduler.run_until_complete(bogota)
        assert belem.start_time == pytest.approx(150.0)
        assert bogota.start_time == pytest.approx(25.0)

    def test_metrics_report_outage_windows(self):
        scheduler = make_scheduler()
        scheduler.inject_outage("Belem", start=5.0, duration=10.0)
        job = scheduler.submit(device_name="Belem", arrival=20.0, duration=1.0)
        scheduler.run_until_complete(job)
        assert scheduler.metrics()["devices"]["Belem"]["outage_windows"] == 1
