"""Tests for device service queues: capacity-1 service and downtime windows."""

import pytest

from repro.cloud.clock import SECONDS_PER_HOUR
from repro.cloud.queueing import queue_model_for
from repro.devices.catalog import build_qpu
from repro.sched import CloudScheduler


def make_scheduler(device="Belem", **kwargs):
    kwargs.setdefault("downtime_seconds", 0.0)
    scheduler = CloudScheduler(policy="fifo", **kwargs)
    scheduler.register_device(build_qpu(device), queue_model_for(device))
    return scheduler


class TestCapacityOneService:
    def test_serial_jobs_do_not_overlap(self):
        scheduler = make_scheduler()
        first = scheduler.submit(device_name="Belem", arrival=0.0, duration=100.0)
        second = scheduler.submit(device_name="Belem", arrival=10.0, duration=100.0)
        scheduler.run_until_complete(second)
        assert first.start_time == pytest.approx(0.0)
        assert first.finish_time == pytest.approx(100.0)
        assert second.start_time == pytest.approx(100.0)
        assert second.finish_time == pytest.approx(200.0)

    def test_idle_device_starts_immediately(self):
        scheduler = make_scheduler()
        job = scheduler.submit(device_name="Belem", arrival=500.0, duration=30.0)
        scheduler.run_until_complete(job)
        assert job.start_time == pytest.approx(500.0)
        assert job.wait_seconds == pytest.approx(0.0)

    def test_late_replayed_submission_queues_behind_committed_work(self):
        """An arrival behind the device's local timeline cannot rewind it."""
        scheduler = make_scheduler()
        first = scheduler.submit(device_name="Belem", arrival=0.0, duration=100.0)
        scheduler.run_until_complete(first)
        late = scheduler.submit(device_name="Belem", arrival=20.0, duration=10.0)
        scheduler.run_until_complete(late)
        assert late.start_time == pytest.approx(100.0)

    def test_default_service_duration_uses_device_clock(self):
        scheduler = make_scheduler()
        job = scheduler.submit(device_name="Belem", arrival=0.0, num_circuits=4)
        scheduler.run_until_complete(job)
        qpu = scheduler.queues["Belem"].qpu
        expected = qpu.job_duration_seconds(0.0) / 2.0 * 4
        assert job.service_seconds == pytest.approx(expected)

    def test_unknown_device_rejected(self):
        scheduler = make_scheduler()
        with pytest.raises(KeyError):
            scheduler.submit(device_name="nope", arrival=0.0, duration=1.0)


class TestAdmissionControl:
    def test_background_jobs_rejected_at_cap(self):
        scheduler = make_scheduler(max_queue_length=2)
        blocker = scheduler.submit(device_name="Belem", arrival=0.0, duration=1000.0)
        admitted = [
            scheduler.submit(
                device_name="Belem", arrival=1.0, duration=10.0,
                tenant="t", foreground=False,
            )
            for _ in range(4)
        ]
        scheduler.run_until_complete(blocker)
        queue = scheduler.queues["Belem"]
        assert queue.jobs_rejected == 2
        assert sum(job.rejected for job in admitted) == 2

    def test_foreground_jobs_always_admitted(self):
        scheduler = make_scheduler(max_queue_length=1)
        scheduler.submit(device_name="Belem", arrival=0.0, duration=50.0)
        jobs = [
            scheduler.submit(device_name="Belem", arrival=1.0, duration=10.0)
            for _ in range(5)
        ]
        scheduler.run_until_complete(jobs[-1])
        assert scheduler.queues["Belem"].jobs_rejected == 0
        assert all(job.done for job in jobs)


class TestCalibrationDowntime:
    def test_downtime_blocks_dispatch_until_window_closes(self):
        """A job arriving inside a calibration window waits for it to close."""
        scheduler = make_scheduler(downtime_seconds=600.0)
        boundary = scheduler.queues["Belem"].qpu.spec.calibration_period_hours * SECONDS_PER_HOUR
        job = scheduler.submit(device_name="Belem", arrival=boundary + 1.0, duration=30.0)
        scheduler.run_until_complete(job)
        queue = scheduler.queues["Belem"]
        assert len(queue.downtime_windows) == 1
        window = queue.downtime_windows[0]
        assert window.start == pytest.approx(boundary)
        # Drift scaling makes the outage at least the base duration.
        assert window.duration >= 600.0
        assert job.start_time == pytest.approx(window.end)
        assert job.wait_seconds >= 599.0

    def test_in_flight_job_is_not_preempted(self):
        scheduler = make_scheduler(downtime_seconds=600.0)
        boundary = scheduler.queues["Belem"].qpu.spec.calibration_period_hours * SECONDS_PER_HOUR
        job = scheduler.submit(
            device_name="Belem", arrival=boundary - 10.0, duration=100.0
        )
        scheduler.run_until_complete(job)
        assert job.start_time == pytest.approx(boundary - 10.0)
        assert job.finish_time == pytest.approx(boundary + 90.0)

    def test_downtime_recurs_every_calibration_period(self):
        scheduler = make_scheduler(downtime_seconds=60.0)
        period = scheduler.queues["Belem"].qpu.spec.calibration_period_hours * SECONDS_PER_HOUR
        scheduler.run_until_time(3.5 * period)
        starts = [w.start for w in scheduler.queues["Belem"].downtime_windows]
        assert starts == pytest.approx([period, 2 * period, 3 * period])

    def test_zero_downtime_schedules_no_windows(self):
        scheduler = make_scheduler(downtime_seconds=0.0)
        period = scheduler.queues["Belem"].qpu.spec.calibration_period_hours * SECONDS_PER_HOUR
        scheduler.run_until_time(2.5 * period)
        assert scheduler.queues["Belem"].downtime_windows == []
