"""Golden-history regression: the scheduler PR must not move the fallback.

The values below were captured from the pre-scheduler code (PR 1 state).
With no scheduler attached, ``CloudProvider`` prices queue waits through
``StatisticalQueuePolicy`` with the exact RNG consumption of the code it
replaced, so these seeded histories must stay bit-exact forever.
"""

import numpy as np

from repro.baselines.single_device import SingleDeviceTrainer
from repro.cloud.queueing import StatisticalQueuePolicy
from repro.core.objective import EnergyObjective
from repro.vqa import heisenberg_vqe_problem

#: SingleDeviceTrainer on Belem, shots=256, seed=11,
#: theta = linspace(0.05, 1.55, 16), 2 epochs — captured from the
#: pre-sched code.
GOLDEN_SINGLE_LOSSES_HEX = [
    "0x1.1dabefc66599ap+2",
    "0x1.b11179c5c95fcp+1",
]
GOLDEN_SINGLE_HOURS_HEX = [
    "0x1.0d2d9d3f25668p-1",
    "0x1.0cf6119941ddep+0",
]


class TestStatisticalFallbackRegression:
    def test_default_provider_uses_statistical_policy(self):
        problem = heisenberg_vqe_problem()
        trainer = SingleDeviceTrainer(
            EnergyObjective(problem.estimator), "Belem", shots=256, seed=11
        )
        assert trainer.provider.scheduler is None
        assert isinstance(trainer.provider._queue_policy, StatisticalQueuePolicy)

    def test_single_device_history_bit_exact(self):
        problem = heisenberg_vqe_problem()
        trainer = SingleDeviceTrainer(
            EnergyObjective(problem.estimator),
            "Belem",
            shots=256,
            seed=11,
            max_wall_hours=1e9,
        )
        theta = np.linspace(0.05, 1.55, 16)
        history = trainer.train(theta, num_epochs=2)
        assert [float(l).hex() for l in history.losses] == GOLDEN_SINGLE_LOSSES_HEX
        assert [
            float(r.sim_time_hours).hex() for r in history.records
        ] == GOLDEN_SINGLE_HOURS_HEX
