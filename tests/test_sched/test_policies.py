"""Tests for scheduling policies: ordering, placement, tenant fairness."""

import numpy as np
import pytest

from repro.cloud.queueing import QueueModel, StatisticalQueuePolicy, queue_model_for
from repro.devices.catalog import build_qpu
from repro.sched import (
    POLICY_REGISTRY,
    BackpressurePolicy,
    CalibrationAwarePolicy,
    CloudScheduler,
    DeadlinePolicy,
    FairSharePolicy,
    FifoPolicy,
    LeastLoadedPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    resolve_policy,
)
from repro.cloud.clock import SECONDS_PER_HOUR


def one_device_scheduler(policy, device="Belem"):
    scheduler = CloudScheduler(policy=policy, downtime_seconds=0.0)
    scheduler.register_device(build_qpu(device), queue_model_for(device))
    return scheduler


def fleet_scheduler(policy, devices=("Belem", "Bogota", "Casablanca")):
    scheduler = CloudScheduler(policy=policy, downtime_seconds=0.0)
    for name in devices:
        scheduler.register_device(build_qpu(name), queue_model_for(name))
    return scheduler


class TestResolvePolicy:
    def test_by_name(self):
        assert isinstance(resolve_policy("fair_share"), FairSharePolicy)

    def test_passthrough_instance(self):
        policy = PriorityPolicy()
        assert resolve_policy(policy) is policy

    def test_none_is_fifo(self):
        assert isinstance(resolve_policy(None), FifoPolicy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_policy("round_robin_deluxe")


class TestOrderingPolicies:
    def flood_then_probe(self, policy):
        """10 jobs of tenant A at t=0, then one of tenant B; return B's wait."""
        scheduler = one_device_scheduler(policy)
        flood = [
            scheduler.submit(
                device_name="Belem", arrival=0.0, duration=100.0, tenant="A"
            )
            for _ in range(10)
        ]
        probe = scheduler.submit(
            device_name="Belem", arrival=0.0, duration=100.0, tenant="B"
        )
        for job in (*flood, probe):
            scheduler.run_until_complete(job)
        return probe.wait_seconds

    def test_fifo_makes_sparse_tenant_wait_out_the_flood(self):
        assert self.flood_then_probe(FifoPolicy()) == pytest.approx(1000.0)

    def test_fair_share_bounds_sparse_tenant_latency(self):
        """The paper-motivating separation: under fair share, a light tenant
        overtakes a flooding tenant after one service instead of ten."""
        assert self.flood_then_probe(FairSharePolicy()) == pytest.approx(100.0)

    def test_priority_jobs_jump_the_queue(self):
        scheduler = one_device_scheduler(PriorityPolicy())
        low = [
            scheduler.submit(
                device_name="Belem", arrival=0.0, duration=50.0, priority=0
            )
            for _ in range(3)
        ]
        urgent = scheduler.submit(
            device_name="Belem", arrival=0.0, duration=50.0, priority=5
        )
        for job in (*low, urgent):
            scheduler.run_until_complete(job)
        # The urgent job runs right after the in-service job finishes.
        assert urgent.start_time == pytest.approx(50.0)

    def test_priority_ties_break_fifo(self):
        scheduler = one_device_scheduler(PriorityPolicy())
        jobs = [
            scheduler.submit(device_name="Belem", arrival=0.0, duration=10.0)
            for _ in range(4)
        ]
        scheduler.run_until_complete(jobs[-1])
        starts = [job.start_time for job in jobs]
        assert starts == sorted(starts)


class TestPlacementPolicies:
    def test_least_loaded_spreads_unpinned_jobs(self):
        scheduler = fleet_scheduler(LeastLoadedPolicy())
        jobs = [
            scheduler.submit(device_name=None, arrival=0.0, duration=100.0)
            for _ in range(3)
        ]
        for job in jobs:
            scheduler.run_until_complete(job)
        assert sorted(job.device_name for job in jobs) == [
            "Belem", "Bogota", "Casablanca",
        ]

    def test_least_loaded_avoids_the_busy_device(self):
        scheduler = fleet_scheduler(LeastLoadedPolicy())
        scheduler.submit(device_name="Belem", arrival=0.0, duration=10_000.0)
        probe = scheduler.submit(device_name=None, arrival=1.0, duration=10.0)
        scheduler.run_until_complete(probe)
        assert probe.device_name != "Belem"

    def test_calibration_aware_prefers_open_devices(self):
        import dataclasses

        from repro.devices.qpu import QPU

        scheduler = CloudScheduler(
            policy=CalibrationAwarePolicy(), downtime_seconds=3600.0
        )
        # Belem calibrates every 24h; give Casablanca a 10h cadence so at
        # t = 24h + 60s Belem is inside a calibration window and Casablanca
        # is open (last calibrated at 20h).
        scheduler.register_device(build_qpu("Belem"), queue_model_for("Belem"))
        fresh_spec = dataclasses.replace(
            build_qpu("Casablanca").spec, calibration_period_hours=10.0
        )
        scheduler.register_device(QPU(fresh_spec), queue_model_for("Casablanca"))
        boundary = 24.0 * SECONDS_PER_HOUR
        probe = scheduler.submit(
            device_name=None, arrival=boundary + 60.0, duration=10.0
        )
        scheduler.run_until_complete(probe)
        assert probe.device_name == "Casablanca"

    def test_pinned_jobs_ignore_placement(self):
        scheduler = fleet_scheduler(CalibrationAwarePolicy())
        job = scheduler.submit(device_name="Belem", arrival=0.0, duration=10.0)
        scheduler.run_until_complete(job)
        assert job.device_name == "Belem"


class TestBackpressurePolicy:
    def test_registered(self):
        assert "backpressure" in POLICY_REGISTRY
        assert isinstance(resolve_policy("backpressure"), BackpressurePolicy)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackpressurePolicy(low_watermark=5, high_watermark=5)
        with pytest.raises(ValueError):
            BackpressurePolicy(low_watermark=-1, high_watermark=4)

    def flood(self, scheduler, count, tenant="A"):
        jobs = [
            scheduler.submit(
                device_name="Belem",
                arrival=0.0,
                duration=500.0,
                tenant=tenant,
                foreground=False,
            )
            for _ in range(count)
        ]
        scheduler.run_until_time(1.0)
        return jobs

    def test_queue_depth_never_exceeds_high_watermark(self):
        policy = BackpressurePolicy(low_watermark=2, high_watermark=6)
        scheduler = one_device_scheduler(policy)
        self.flood(scheduler, 50)
        assert scheduler.queues["Belem"].queue_length <= 6

    def test_admits_everything_below_low_watermark(self):
        policy = BackpressurePolicy(low_watermark=3, high_watermark=6)
        scheduler = one_device_scheduler(policy)
        jobs = self.flood(scheduler, 3)
        assert not any(job.rejected for job in jobs)

    def test_sheds_fractionally_between_watermarks(self):
        policy = BackpressurePolicy(low_watermark=2, high_watermark=20)
        scheduler = one_device_scheduler(policy)
        jobs = self.flood(scheduler, 30)
        rejected = sum(job.rejected for job in jobs)
        # Partial shedding: some arrivals bounce, but not all of the
        # between-watermark band does.
        assert 0 < rejected < 28

    def test_shedding_is_deterministic(self):
        def rejected_ids():
            policy = BackpressurePolicy(low_watermark=2, high_watermark=8)
            scheduler = one_device_scheduler(policy)
            jobs = self.flood(scheduler, 40)
            return [job.job_id for job in jobs if job.rejected]

        first = rejected_ids()
        assert first and first == rejected_ids()

    def test_foreground_is_always_admitted(self):
        policy = BackpressurePolicy(low_watermark=1, high_watermark=2)
        scheduler = one_device_scheduler(policy)
        self.flood(scheduler, 20)
        probe = scheduler.submit(
            device_name="Belem", arrival=2.0, duration=10.0, foreground=True
        )
        scheduler.run_until_complete(probe)
        assert not probe.rejected and probe.done


class TestDeadlinePolicy:
    def test_registered(self):
        assert "deadline" in POLICY_REGISTRY
        assert isinstance(resolve_policy("deadline"), DeadlinePolicy)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(foreground_slack=0.0)
        with pytest.raises(ValueError):
            DeadlinePolicy(tier_slacks=(100.0, -1.0))

    @staticmethod
    def tenants_in_different_tiers():
        """Two tenant names hashing into the tightest and loosest tiers."""
        import zlib

        policy = DeadlinePolicy()
        found = {}
        i = 0
        while len(found) < len(policy.tier_slacks):
            name = f"t{i}"
            found.setdefault(zlib.crc32(name.encode()) % len(policy.tier_slacks), name)
            i += 1
        tight = found[min(found)]
        loose = found[max(found)]
        assert policy.slack_for(
            type("J", (), {"foreground": False, "tenant": tight})()
        ) < policy.slack_for(type("J", (), {"foreground": False, "tenant": loose})())
        return tight, loose

    def test_admission_stamps_deadlines(self):
        scheduler = one_device_scheduler(DeadlinePolicy(foreground_slack=600.0))
        job = scheduler.submit(device_name="Belem", arrival=5.0, duration=10.0)
        scheduler.run_until_complete(job)
        assert job.deadline == pytest.approx(605.0)

    def test_edf_lets_tight_tier_overtake_loose_tier(self):
        tight, loose = self.tenants_in_different_tiers()
        scheduler = one_device_scheduler(DeadlinePolicy())
        blocker = scheduler.submit(device_name="Belem", arrival=0.0, duration=100.0)
        late_bulk = scheduler.submit(
            device_name="Belem",
            arrival=0.0,
            duration=10.0,
            tenant=loose,
            foreground=False,
        )
        interactive = scheduler.submit(
            device_name="Belem",
            arrival=1.0,
            duration=10.0,
            tenant=tight,
            foreground=False,
        )
        for job in (blocker, late_bulk, interactive):
            scheduler.run_until_complete(job)
        # FIFO would start the bulk job first (it arrived earlier); EDF
        # starts the interactive tenant because its deadline is sooner.
        assert interactive.start_time == pytest.approx(100.0)
        assert late_bulk.start_time == pytest.approx(110.0)


class TestStatisticalQueuePolicy:
    class _Endpoint:
        def __init__(self):
            self.queue_model = QueueModel(mean_wait_seconds=60.0, sigma=0.3)
            self.rng = np.random.default_rng(5)
            self.free_at = 0.0

    def test_matches_closed_form_queue_math(self):
        policy = StatisticalQueuePolicy()
        endpoint = self._Endpoint()
        reference = self._Endpoint()
        expected = max(
            100.0 + reference.queue_model.sample_wait(100.0, reference.rng),
            reference.free_at,
        )
        assert policy.start_time(endpoint, 100.0) == expected

    def test_respects_device_backlog(self):
        policy = StatisticalQueuePolicy()
        endpoint = self._Endpoint()
        endpoint.free_at = 1e9
        assert policy.start_time(endpoint, 0.0) == 1e9


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run():
            scheduler = fleet_scheduler(SchedulingPolicy())
            jobs = [
                scheduler.submit(device_name=None, arrival=float(i), duration=30.0)
                for i in range(6)
            ]
            for job in jobs:
                scheduler.run_until_complete(job)
            return [(job.device_name, job.start_time, job.finish_time) for job in jobs]

        assert run() == run()
