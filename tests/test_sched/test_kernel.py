"""Tests for the discrete-event kernel: ordering, determinism, clock contract."""

import pytest

from repro.cloud.clock import VirtualClock
from repro.sched.kernel import EventKernel


def record_trace(kernel, entries):
    """Schedule events that append (time, tag) to ``entries`` when fired."""
    for time, priority, tag in (
        (5.0, 0, "a"),
        (1.0, 0, "b"),
        (5.0, -1, "c"),
        (5.0, 0, "d"),
        (2.0, 1, "e"),
    ):
        kernel.schedule(time, lambda t, tag=tag: entries.append((t, tag)), priority=priority)


class TestEventOrdering:
    def test_time_then_priority_then_sequence(self):
        kernel = EventKernel()
        trace = []
        record_trace(kernel, trace)
        while kernel.step() is not None:
            pass
        # b(t=1) first, then e(t=2); at t=5 priority -1 beats 0, and among
        # equal (time, priority) the earlier-scheduled event wins.
        assert trace == [(1.0, "b"), (2.0, "e"), (5.0, "c"), (5.0, "a"), (5.0, "d")]

    def test_identical_seeds_replay_identical_traces(self):
        traces = []
        for _ in range(2):
            kernel = EventKernel(seed=42)
            trace = []
            rng = kernel.rng_stream("device")
            for _ in range(50):
                kernel.schedule(
                    float(rng.uniform(0, 100)),
                    lambda t: trace.append(round(t, 9)),
                    priority=int(rng.integers(0, 3)),
                )
            while kernel.step() is not None:
                pass
            traces.append(trace)
        assert traces[0] == traces[1]

    def test_rng_streams_are_label_independent(self):
        kernel = EventKernel(seed=3)
        a1 = kernel.rng_stream("Belem").uniform(size=4).tolist()
        # Consuming another label's stream never perturbs Belem's.
        kernel.rng_stream("Bogota").uniform(size=100)
        a2 = kernel.rng_stream("Belem").uniform(size=4).tolist()
        assert a1 == a2

    def test_cancelled_events_are_skipped(self):
        kernel = EventKernel()
        fired = []
        event = kernel.schedule(1.0, lambda t: fired.append("cancelled"))
        kernel.schedule(2.0, lambda t: fired.append("kept"))
        event.cancel()
        while kernel.step() is not None:
            pass
        assert fired == ["kept"]


class TestClockIntegration:
    def test_clock_is_high_water_mark(self):
        clock = VirtualClock()
        kernel = EventKernel(clock=clock)
        kernel.schedule(100.0, lambda t: None)
        kernel.step()
        assert clock.now == pytest.approx(100.0)

    def test_past_events_execute_without_rewinding_the_clock(self):
        """A late-replayed submission fires with its own timestamp while the
        shared clock stays at its high-water mark (advance_to no-op)."""
        kernel = EventKernel()
        kernel.schedule(100.0, lambda t: None)
        kernel.step()
        seen = []
        kernel.schedule(10.0, lambda t: seen.append(t))
        kernel.step()
        assert seen == [10.0]
        assert kernel.now == pytest.approx(100.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventKernel().schedule(-1.0, lambda t: None)


class TestScheduleBatch:
    def test_batch_returns_count_and_tracks_pending(self):
        kernel = EventKernel()
        assert kernel.schedule_batch([1.0, 2.0, 3.0], lambda t: None) == 3
        assert kernel.pending == 3
        # The whole batch occupies a single heap slot (the run cursor).
        assert kernel.heap_size == 1

    def test_empty_batch_is_a_noop(self):
        kernel = EventKernel()
        assert kernel.schedule_batch([], lambda t: None) == 0
        assert kernel.pending == 0

    def test_batch_validation(self):
        kernel = EventKernel()
        with pytest.raises(ValueError):
            kernel.schedule_batch([1.0, -2.0], lambda t: None)
        with pytest.raises(ValueError):
            kernel.schedule_batch([1.0, float("nan")], lambda t: None)
        with pytest.raises(ValueError):
            kernel.schedule_batch([[1.0, 2.0]], lambda t: None)
        with pytest.raises(ValueError):
            kernel.schedule_batch([1.0], None)

    def test_unsorted_batch_fires_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_batch([5.0, 1.0, 3.0], lambda t: fired.append(t))
        while kernel.step() is not None:
            pass
        assert fired == [1.0, 3.0, 5.0]

    def test_batch_interleaves_with_singles(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_batch([1.0, 3.0, 5.0], lambda t: fired.append(("batch", t)))
        kernel.schedule(2.0, lambda t: fired.append(("single", t)))
        kernel.schedule(3.0, lambda t: fired.append(("single", t)))
        while kernel.step() is not None:
            pass
        # At the t=3.0 tie the batch element wins: it was scheduled first,
        # so its sequence number is lower — exactly as if the batch had been
        # admitted element by element.
        assert fired == [
            ("batch", 1.0),
            ("single", 2.0),
            ("batch", 3.0),
            ("single", 3.0),
            ("batch", 5.0),
        ]

    def test_event_scheduled_mid_run_preempts_the_inline_burst(self):
        """run_until_time fires consecutive run elements inline, but an
        action that schedules an earlier event must still be overtaken."""
        kernel = EventKernel()
        fired = []

        def on_arrival(t):
            fired.append(("run", t))
            if t == 1.0:
                kernel.schedule(1.5, lambda x: fired.append(("single", x)))

        kernel.schedule_batch([1.0, 2.0, 3.0], on_arrival)
        kernel.run_until_time(10.0)
        assert fired == [
            ("run", 1.0),
            ("single", 1.5),
            ("run", 2.0),
            ("run", 3.0),
        ]

    def test_run_until_time_leaves_late_run_elements_pending(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_batch(
            [float(t) for t in range(1, 11)], lambda t: fired.append(t)
        )
        assert kernel.run_until_time(5.5) == 5
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert kernel.pending == 5
        assert kernel.heap_size == 1
        kernel.run_until_time(100.0)
        assert len(fired) == 10 and kernel.pending == 0

    def test_batched_and_sequential_admission_fire_identically(self):
        times = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]

        def run(batched):
            kernel = EventKernel()
            fired = []
            if batched:
                kernel.schedule_batch(times, lambda t: fired.append(t))
            else:
                for t in sorted(times):
                    kernel.schedule(t, lambda now: fired.append(now))
            kernel.run_until_time(100.0)
            return fired

        assert run(batched=True) == run(batched=False)


class TestCompaction:
    def test_cancel_storm_sweeps_dead_heap_entries(self):
        kernel = EventKernel()
        events = [kernel.schedule(float(i + 1), lambda t: None) for i in range(256)]
        for event in events[:200]:
            event.cancel()
        assert kernel.pending == 56
        # Dead entries are swept once they dominate, not kept forever.
        assert kernel.heap_size < 128
        fired = 0
        while kernel.step() is not None:
            fired += 1
        assert fired == 56

    def test_cancel_is_idempotent_and_safe_after_firing(self):
        kernel = EventKernel()
        event = kernel.schedule(1.0, lambda t: None)
        kernel.step()
        event.cancel()
        event.cancel()
        assert kernel.pending == 0


class TestRunHelpers:
    def test_run_until_time_processes_due_events_only(self):
        kernel = EventKernel()
        fired = []
        for t in (1.0, 2.0, 3.0, 10.0):
            kernel.schedule(t, lambda now, t=t: fired.append(t))
        assert kernel.run_until_time(3.0) == 3
        assert fired == [1.0, 2.0, 3.0]
        assert kernel.pending == 1
        assert kernel.now == pytest.approx(3.0)

    def test_run_until_raises_on_drained_heap(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda t: None)
        with pytest.raises(RuntimeError):
            kernel.run_until(lambda: False)

    def test_run_until_counts_events(self):
        kernel = EventKernel()
        fired = []
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, lambda now: fired.append(now))
        assert kernel.run_until(lambda: len(fired) == 2) == 2
