"""Integration tests: the full stack, end to end, at reduced scale.

These tests exercise the same paths as the benchmark harness (device models,
cloud queues, transpilation, noisy execution, EQC master/client training) but
with small epoch counts, and assert the paper's *qualitative* claims rather
than absolute numbers.
"""

import numpy as np
import pytest

from repro.baselines.ideal import IdealTrainer
from repro.baselines.single_device import SingleDeviceTrainer
from repro.core.ensemble import EQCConfig, EQCEnsemble
from repro.core.objective import EnergyObjective, QnnObjective
from repro.core.weighting import BOUNDS_MODERATE
from repro.vqa.qnn import QNNProblem, make_synthetic_dataset
from repro.vqa.tasks import qnn_task_cycle


pytestmark = pytest.mark.integration


class TestVQEEndToEnd:
    def test_eqc_trains_and_is_faster_than_single_devices(self, vqe_problem):
        theta0 = vqe_problem.random_initial_parameters(seed=11)
        epochs = 8
        shots = 1024

        eqc = EQCEnsemble(
            EnergyObjective(vqe_problem.estimator),
            EQCConfig(
                device_names=("x2", "Belem", "Bogota", "Quito", "Casablanca"),
                shots=shots,
                weight_bounds=BOUNDS_MODERATE,
                seed=11,
            ),
        ).train(theta0, num_epochs=epochs)

        single = SingleDeviceTrainer(
            EnergyObjective(vqe_problem.estimator), "Bogota", shots=shots, seed=11
        ).train(theta0, num_epochs=epochs)

        initial_energy = vqe_problem.energy(theta0)
        # both learn
        assert eqc.losses[-1] < initial_energy
        assert single.losses[-1] < initial_energy
        # the ensemble is significantly faster in simulated wall-clock
        assert eqc.epochs_per_hour() > 2.0 * single.epochs_per_hour()
        # asynchrony really happened
        assert eqc.metadata["max_staleness"] >= 1

    def test_ideal_baseline_converges_fastest_per_epoch(self, vqe_problem):
        theta0 = vqe_problem.random_initial_parameters(seed=11)
        epochs = 8
        ideal = IdealTrainer(vqe_problem.estimator, exact=True).train(theta0, epochs)
        noisy = SingleDeviceTrainer(
            EnergyObjective(vqe_problem.estimator), "x2", shots=1024, seed=11
        ).train(theta0, num_epochs=epochs)
        # after the same number of epochs the noiseless run is at least as low
        assert ideal.losses[-1] <= noisy.losses[-1] + 0.3


class TestQAOAEndToEnd:
    def test_eqc_qaoa_improves_cut_cost(self, qaoa_problem):
        theta0 = qaoa_problem.random_initial_parameters(seed=2)
        history = EQCEnsemble(
            EnergyObjective(qaoa_problem.estimator),
            EQCConfig(
                device_names=("Belem", "Quito", "Bogota", "Manila"),
                shots=1024,
                seed=2,
                learning_rate=0.2,
            ),
        ).train(theta0, num_epochs=15)
        initial_cost = qaoa_problem.normalized_cost(qaoa_problem.energy(theta0))
        final_cost = qaoa_problem.normalized_cost(history.final_loss(5))
        assert final_cost < initial_cost
        assert -1.0 <= final_cost <= 0.0


class TestQnnEndToEnd:
    def test_eqc_trains_a_qnn(self):
        problem = QNNProblem("qnn", make_synthetic_dataset(4, seed=9), num_qubits=4)
        objective = QnnObjective(problem)
        theta0 = problem.random_initial_parameters(seed=9)
        queue = qnn_task_cycle(problem.num_parameters, len(problem.dataset))
        history = EQCEnsemble(
            objective,
            EQCConfig(device_names=("Belem", "Bogota"), shots=1024, seed=9, learning_rate=0.3),
        ).train(theta0, num_epochs=2, task_queue=queue)
        assert history.total_updates == 2 * queue.cycle_length
        assert history.losses[-1] <= problem.dataset_loss(theta0) + 0.05


class TestUtilizationClaim:
    def test_ensemble_spreads_load_across_devices(self, vqe_problem):
        """EQC keeps every ensemble member busy, unlike single-device training
        which leaves the rest of the fleet idle (the paper's utilization
        motivation)."""
        theta0 = vqe_problem.random_initial_parameters(seed=1)
        ensemble = EQCEnsemble(
            EnergyObjective(vqe_problem.estimator),
            EQCConfig(device_names=("x2", "Belem", "Bogota"), shots=512, seed=1),
        )
        history = ensemble.train(theta0, num_epochs=4)
        utilization = history.metadata["utilization"]
        busy = [stats["jobs_completed"] for stats in utilization.values()]
        assert all(jobs > 0 for jobs in busy)
