"""Tests for the EQCEnsemble facade."""

import numpy as np
import pytest

from repro.core.ensemble import EQCConfig, EQCEnsemble
from repro.core.objective import EnergyObjective
from repro.core.weighting import BOUNDS_MODERATE


class TestEQCConfig:
    def test_defaults(self):
        config = EQCConfig()
        assert len(config.device_names) == 10
        assert config.shots == 8192
        assert config.learning_rate == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EQCConfig(device_names=())
        with pytest.raises(ValueError):
            EQCConfig(shots=0)
        with pytest.raises(ValueError):
            EQCConfig(learning_rate=0.0)

    def test_describe(self):
        assert "unweighted" in EQCConfig(weight_bounds=None).describe()
        assert "3 devices" in EQCConfig(device_names=("x2", "Belem", "Quito")).describe()
        assert EQCConfig(label="custom").describe() == "custom"


class TestEQCEnsemble:
    @pytest.fixture()
    def small_config(self):
        return EQCConfig(
            device_names=("x2", "Belem", "Bogota"),
            shots=512,
            weight_bounds=BOUNDS_MODERATE,
            seed=1,
        )

    def test_construction(self, vqe_problem, small_config):
        ensemble = EQCEnsemble(EnergyObjective(vqe_problem.estimator), small_config)
        assert ensemble.device_names == ("x2", "Belem", "Bogota")
        assert len(ensemble.clients) == 3

    def test_for_estimator_constructor(self, vqe_problem, small_config):
        ensemble = EQCEnsemble.for_estimator(vqe_problem.estimator, small_config)
        assert isinstance(ensemble.objective, EnergyObjective)

    def test_train_returns_history_with_utilization(self, vqe_problem, small_config):
        ensemble = EQCEnsemble(EnergyObjective(vqe_problem.estimator), small_config)
        history = ensemble.train(
            vqe_problem.random_initial_parameters(), num_epochs=2
        )
        assert len(history) == 2
        assert set(history.metadata["utilization"].keys()) == {"x2", "Belem", "Bogota"}
        assert history.metadata["num_clients"] == 3

    def test_parallelism_beats_single_device_wall_clock(self, vqe_problem):
        """The 3-device ensemble must finish the same number of epochs in less
        simulated time than the same problem run on its slowest member."""
        from repro.baselines.single_device import SingleDeviceTrainer

        theta = vqe_problem.random_initial_parameters()
        ensemble = EQCEnsemble(
            EnergyObjective(vqe_problem.estimator),
            EQCConfig(device_names=("x2", "Belem", "Bogota"), shots=256, seed=2),
        )
        eqc_history = ensemble.train(theta, num_epochs=2)
        single = SingleDeviceTrainer(
            EnergyObjective(vqe_problem.estimator), "Bogota", shots=256, seed=2
        ).train(theta, num_epochs=2)
        assert eqc_history.total_hours() < single.total_hours()

    def test_deterministic_given_seed(self, vqe_problem, small_config):
        theta = vqe_problem.random_initial_parameters()
        a = EQCEnsemble(EnergyObjective(vqe_problem.estimator), small_config).train(theta, 2)
        b = EQCEnsemble(EnergyObjective(vqe_problem.estimator), small_config).train(theta, 2)
        assert np.allclose(a.losses, b.losses)
