"""Tests for the EQC client node (Algorithm 2)."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.core.client import EQCClientNode
from repro.core.objective import EnergyObjective
from repro.devices.catalog import build_qpu
from repro.vqa.tasks import GradientTask


@pytest.fixture()
def client(vqe_problem):
    qpu = build_qpu("Belem")
    provider = CloudProvider([qpu], seed=0, shots=512)
    return EQCClientNode(
        EnergyObjective(vqe_problem.estimator), qpu, provider, shots=512
    )


class TestClientExecution:
    def test_outcome_fields(self, client, vqe_problem):
        task = GradientTask(task_id=0, parameter_index=4)
        theta = vqe_problem.random_initial_parameters()
        outcome = client.execute_task(task, theta, submit_time=0.0, theta_version=3)
        assert outcome.device_name == "Belem"
        assert outcome.task is task
        assert outcome.finish_time > outcome.submit_time
        assert 0.0 < outcome.p_correct <= 1.0
        assert 0.0 <= outcome.success_probability_truth <= 1.0
        assert outcome.theta_version == 3
        assert outcome.num_circuits == 6
        assert outcome.turnaround_seconds > 0

    def test_gradient_is_finite(self, client, vqe_problem):
        task = GradientTask(task_id=1, parameter_index=0)
        outcome = client.execute_task(
            task, vqe_problem.random_initial_parameters(), submit_time=0.0
        )
        assert abs(outcome.gradient) < 50.0

    def test_transpilation_is_cached_across_tasks(self, client, vqe_problem):
        theta = vqe_problem.random_initial_parameters()
        client.execute_task(GradientTask(0, 0), theta, submit_time=0.0)
        cached = len(client._transpile_cache)
        client.execute_task(GradientTask(1, 1), theta, submit_time=100.0)
        assert len(client._transpile_cache) == cached == 3

    def test_jobs_completed_counter(self, client, vqe_problem):
        theta = vqe_problem.random_initial_parameters()
        for index in range(3):
            client.execute_task(GradientTask(index, index), theta, submit_time=0.0)
        assert client.jobs_completed == 3

    def test_representative_footprint_requires_templates(self, vqe_problem):
        qpu = build_qpu("Quito")
        provider = CloudProvider([qpu], seed=0)
        fresh = EQCClientNode(EnergyObjective(vqe_problem.estimator), qpu, provider)
        with pytest.raises(ValueError):
            fresh.representative_footprint()

    def test_p_correct_tracks_device_quality(self, vqe_problem):
        """The estimate on x2 must be lower than on Bogota for the same job."""
        outcomes = {}
        for name in ("x2", "Bogota"):
            qpu = build_qpu(name)
            provider = CloudProvider([qpu], seed=0, shots=256)
            client = EQCClientNode(
                EnergyObjective(vqe_problem.estimator), qpu, provider, shots=256
            )
            outcome = client.execute_task(
                GradientTask(0, 0), vqe_problem.random_initial_parameters(), submit_time=0.0
            )
            outcomes[name] = outcome.p_correct
        assert outcomes["x2"] < outcomes["Bogota"]

    def test_later_submissions_finish_later(self, client, vqe_problem):
        theta = vqe_problem.random_initial_parameters()
        first = client.execute_task(GradientTask(0, 0), theta, submit_time=0.0)
        second = client.execute_task(GradientTask(1, 1), theta, submit_time=first.finish_time)
        assert second.finish_time > first.finish_time
