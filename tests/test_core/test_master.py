"""Tests for the EQC master node (Algorithm 1)."""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.core.client import EQCClientNode
from repro.core.master import EQCMasterNode
from repro.core.objective import EnergyObjective
from repro.core.weighting import BOUNDS_MODERATE, WeightingConfig
from repro.devices.catalog import build_fleet
from repro.vqa.optimizer import AsgdRule
from repro.vqa.tasks import vqe_task_cycle


def build_master(problem, device_names=("x2", "Belem", "Bogota"), bounds=BOUNDS_MODERATE,
                 shots=512, seed=0, label="EQC-test"):
    objective = EnergyObjective(problem.estimator)
    fleet = build_fleet(device_names)
    provider = CloudProvider(fleet, seed=seed, shots=shots)
    clients = [EQCClientNode(objective, qpu, provider, shots=shots) for qpu in fleet]
    return EQCMasterNode(
        objective=objective,
        clients=clients,
        task_queue=vqe_task_cycle(problem.num_parameters),
        rule=AsgdRule(learning_rate=0.1),
        weighting=WeightingConfig(bounds=bounds),
        initial_parameters=problem.random_initial_parameters(seed=seed),
        label=label,
    )


class TestMasterTraining:
    def test_history_structure(self, vqe_problem):
        master = build_master(vqe_problem)
        history = master.train(num_epochs=3)
        assert len(history) == 3
        assert list(history.epochs) == [1, 2, 3]
        assert history.total_updates == 3 * 16
        assert history.device_names == ("x2", "Belem", "Bogota")
        assert history.metadata["weighting"].startswith("weights")

    def test_loss_decreases_from_start(self, vqe_problem):
        master = build_master(vqe_problem)
        initial_loss = vqe_problem.energy(master.state.snapshot())
        history = master.train(num_epochs=5)
        assert history.losses[-1] < initial_loss

    def test_record_every(self, vqe_problem):
        master = build_master(vqe_problem)
        history = master.train(num_epochs=4, record_every=2)
        assert list(history.epochs) == [2, 4]
        # throughput accounting uses the true epoch index, not the record count
        assert history.epochs_per_hour() == pytest.approx(4 / history.total_hours(), rel=1e-6)

    def test_weights_cover_all_clients(self, vqe_problem):
        master = build_master(vqe_problem)
        master.train(num_epochs=2)
        weights = master.current_weights
        assert set(weights.keys()) == {"client_x2", "client_Belem", "client_Bogota"}
        assert all(0.5 - 1e-9 <= w <= 1.5 + 1e-9 for w in weights.values())

    def test_unweighted_configuration(self, vqe_problem):
        master = build_master(vqe_problem, bounds=None)
        master.train(num_epochs=2)
        assert all(w == 1.0 for w in master.current_weights.values())

    def test_asynchrony_produces_staleness(self, vqe_problem):
        master = build_master(vqe_problem)
        history = master.train(num_epochs=3)
        assert history.metadata["max_staleness"] >= 1

    def test_telemetry_counts(self, vqe_problem):
        master = build_master(vqe_problem)
        master.train(num_epochs=2)
        telemetry = master.telemetry
        assert telemetry.updates_applied == 32
        assert telemetry.jobs_dispatched >= 32
        assert telemetry.circuits_executed == telemetry.jobs_dispatched * 6

    def test_epoch_time_monotone(self, vqe_problem):
        history = build_master(vqe_problem).train(num_epochs=4)
        times = history.times_hours
        assert all(times[i] < times[i + 1] for i in range(len(times) - 1))

    def test_invalid_epochs_rejected(self, vqe_problem):
        with pytest.raises(ValueError):
            build_master(vqe_problem).train(num_epochs=0)

    def test_duplicate_client_names_rejected(self, vqe_problem):
        objective = EnergyObjective(vqe_problem.estimator)
        fleet = build_fleet(["Belem"])
        provider = CloudProvider(fleet, seed=0)
        client = EQCClientNode(objective, fleet[0], provider)
        with pytest.raises(ValueError):
            EQCMasterNode(
                objective=objective,
                clients=[client, client],
                task_queue=vqe_task_cycle(16),
                rule=AsgdRule(0.1),
                weighting=WeightingConfig(),
                initial_parameters=np.zeros(16),
            )

    def test_no_clients_rejected(self, vqe_problem):
        with pytest.raises(ValueError):
            EQCMasterNode(
                objective=EnergyObjective(vqe_problem.estimator),
                clients=[],
                task_queue=vqe_task_cycle(16),
                rule=AsgdRule(0.1),
                weighting=WeightingConfig(),
                initial_parameters=np.zeros(16),
            )

    def test_target_updates_records_final_partial_epoch(self, vqe_problem):
        """A budget that is not a multiple of cycle_length keeps its tail:
        the trailing updates land in a final partial EpochRecord instead of
        being silently dropped from the history."""
        master = build_master(vqe_problem)
        target = master.cycle_length * 2 + 5
        history = master.train(target_updates=target)
        assert master.telemetry.updates_applied == target
        assert history.total_updates == target
        assert list(history.epochs) == [1, 2, 3]
        assert history.metadata["final_epoch_partial_updates"] == 5
        # The partial record reflects the post-tail parameters.
        assert history.records[-1].parameters == master.state.snapshot()
        # Throughput counts the tail as a fraction, not a full epoch.
        assert history.final_epoch_fraction == pytest.approx(5 / 16)
        expected_rate = (2 + 5 / 16) / history.total_hours()
        assert history.epochs_per_hour() == pytest.approx(expected_rate)

    def test_target_updates_multiple_of_cycle_has_no_partial_record(self, vqe_problem):
        master = build_master(vqe_problem)
        history = master.train(target_updates=master.cycle_length * 2)
        assert list(history.epochs) == [1, 2]
        assert "final_epoch_partial_updates" not in history.metadata

    def test_partial_tail_smaller_than_one_epoch(self, vqe_problem):
        master = build_master(vqe_problem)
        history = master.train(target_updates=3)
        assert list(history.epochs) == [1]
        assert history.metadata["final_epoch_partial_updates"] == 3
        assert history.total_updates == 3

    def test_invalid_target_updates_rejected(self, vqe_problem):
        with pytest.raises(ValueError):
            build_master(vqe_problem).train(target_updates=0)
        with pytest.raises(ValueError):
            build_master(vqe_problem).train()

    def test_deterministic_given_seed(self, vqe_problem):
        a = build_master(vqe_problem, seed=5).train(num_epochs=2)
        b = build_master(vqe_problem, seed=5).train(num_epochs=2)
        assert np.allclose(a.losses, b.losses)

    def test_different_seeds_differ(self, vqe_problem):
        a = build_master(vqe_problem, seed=1).train(num_epochs=2)
        b = build_master(vqe_problem, seed=2).train(num_epochs=2)
        assert not np.allclose(a.losses, b.losses)
