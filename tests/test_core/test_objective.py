"""Tests for the gradient objectives (EnergyObjective / QnnObjective)."""

import numpy as np
import pytest

from repro.core.objective import EnergyObjective, GradientJobSpec, QnnObjective
from repro.simulator.sampler import sample_circuit_ideal
from repro.vqa.gradient import exact_parameter_shift_gradient
from repro.vqa.qnn import QNNProblem, make_synthetic_dataset
from repro.vqa.tasks import GradientTask


class TestGradientJobSpec:
    def test_alignment_enforced(self):
        from repro.circuit import QuantumCircuit

        qc = QuantumCircuit(1).h(0)
        with pytest.raises(ValueError):
            GradientJobSpec(circuits=(qc,), template_keys=(), templates=())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GradientJobSpec(circuits=(), template_keys=(), templates=())


class TestEnergyObjective:
    def test_build_job_shapes(self, vqe_problem):
        objective = EnergyObjective(vqe_problem.estimator)
        task = GradientTask(task_id=0, parameter_index=3)
        job = objective.build_job(task, [0.1] * 16)
        # forward + backward circuits for each of the 3 measurement groups
        assert len(job.circuits) == 6
        assert all(circuit.is_bound for circuit in job.circuits)
        assert len(set(job.template_keys)) == 3

    def test_gradient_from_ideal_counts_matches_exact(self, vqe_problem, rng):
        objective = EnergyObjective(vqe_problem.estimator)
        theta = np.linspace(-0.4, 0.6, 16)
        task = GradientTask(task_id=0, parameter_index=7)
        job = objective.build_job(task, theta)
        counts = [sample_circuit_ideal(c, 40000, rng) for c in job.circuits]
        estimated = objective.gradient_from_counts(task, counts)
        exact = exact_parameter_shift_gradient(vqe_problem.estimator, theta, 7)
        assert estimated == pytest.approx(exact, abs=0.08)

    def test_gradient_count_mismatch_rejected(self, vqe_problem):
        objective = EnergyObjective(vqe_problem.estimator)
        task = GradientTask(task_id=0, parameter_index=0)
        with pytest.raises(ValueError):
            objective.gradient_from_counts(task, [])

    def test_exact_loss_delegates_to_estimator(self, vqe_problem):
        objective = EnergyObjective(vqe_problem.estimator)
        theta = [0.0] * 16
        assert objective.exact_loss(theta) == pytest.approx(vqe_problem.energy(theta))

    def test_num_parameters(self, qaoa_problem):
        assert EnergyObjective(qaoa_problem.estimator).num_parameters == 2


class TestQnnObjective:
    @pytest.fixture
    def qnn(self):
        return QNNProblem("qnn", make_synthetic_dataset(4, seed=3), num_qubits=4)

    def test_build_job_includes_centre_forward_backward(self, qnn):
        objective = QnnObjective(qnn)
        task = GradientTask(task_id=0, parameter_index=1, data_index=2)
        job = objective.build_job(task, [0.1] * qnn.num_parameters)
        groups = qnn.estimator_for(2).num_groups
        assert len(job.circuits) == 3 * groups

    def test_missing_data_index_rejected(self, qnn):
        objective = QnnObjective(qnn)
        task = GradientTask(task_id=0, parameter_index=0)
        with pytest.raises(ValueError):
            objective.build_job(task, [0.1] * qnn.num_parameters)

    def test_gradient_matches_exact_chain_rule(self, qnn, rng):
        objective = QnnObjective(qnn)
        theta = qnn.random_initial_parameters()
        task = GradientTask(task_id=0, parameter_index=2, data_index=1)
        job = objective.build_job(task, theta)
        counts = [sample_circuit_ideal(c, 30000, rng) for c in job.circuits]
        estimated = objective.gradient_from_counts(task, counts)
        exact = qnn.sample_gradient(theta, 2, 1)
        assert estimated == pytest.approx(exact, abs=0.1)

    def test_exact_loss_is_dataset_loss(self, qnn):
        objective = QnnObjective(qnn)
        theta = qnn.random_initial_parameters()
        assert objective.exact_loss(theta) == pytest.approx(qnn.dataset_loss(theta))
