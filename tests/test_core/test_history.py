"""Tests for training histories."""

import math

import pytest

from repro.core.history import EpochRecord, TrainingHistory


def make_history(losses, hours_per_epoch=0.1, label="run"):
    history = TrainingHistory(label=label)
    for index, loss in enumerate(losses, start=1):
        history.add(
            EpochRecord(
                epoch=index,
                sim_time_hours=index * hours_per_epoch,
                loss=loss,
                parameters=(0.0,),
            )
        )
    return history


class TestTrainingHistory:
    def test_epoch_order_enforced(self):
        history = make_history([1.0, 0.5])
        with pytest.raises(ValueError):
            history.add(EpochRecord(epoch=1, sim_time_hours=1.0, loss=0.1, parameters=()))

    def test_array_accessors(self):
        history = make_history([3.0, 2.0, 1.0])
        assert list(history.epochs) == [1, 2, 3]
        assert list(history.losses) == [3.0, 2.0, 1.0]
        assert history.final_parameters == (0.0,)

    def test_final_loss_averages_tail(self):
        history = make_history([5.0, 1.0, 1.0, 1.0])
        assert history.final_loss(tail=3) == pytest.approx(1.0)
        assert history.final_loss(tail=100) == pytest.approx(2.0)

    def test_best_loss(self):
        assert make_history([3.0, -1.0, 0.5]).best_loss() == pytest.approx(-1.0)

    def test_empty_history_raises(self):
        history = TrainingHistory(label="empty")
        with pytest.raises(ValueError):
            history.final_loss()
        assert history.total_hours() == 0.0

    def test_epochs_per_hour_uses_epoch_index(self):
        history = TrainingHistory(label="sampled")
        history.add(EpochRecord(epoch=10, sim_time_hours=2.0, loss=0.0, parameters=()))
        assert history.epochs_per_hour() == pytest.approx(5.0)

    def test_error_vs_reference(self):
        history = make_history([-3.8] * 12)
        assert history.error_vs(-4.0) == pytest.approx(0.05)

    def test_error_vs_zero_reference(self):
        history = make_history([0.5] * 12)
        assert history.error_vs(0.0) == pytest.approx(0.5)

    def test_convergence_epoch_requires_patience(self):
        losses = [0.0, -3.9, 0.0, -3.9, -3.95, -3.92, -3.99, -3.97, -3.96]
        history = make_history(losses)
        # epochs 4,5,6 are the first three consecutive in-band records
        assert history.convergence_epoch(-4.0, tolerance=0.05, patience=3) == 4

    def test_convergence_epoch_none_when_never_converged(self):
        history = make_history([0.0] * 10)
        assert history.convergence_epoch(-4.0) is None

    def test_summary_keys(self):
        history = make_history([-3.9] * 12)
        summary = history.summary(reference=-4.0)
        assert summary["label"] == "run"
        assert summary["convergence_epoch"] is not None
        assert not math.isnan(summary["final_loss"])
