"""Tests for the PCorrect estimate and weight normalization (paper Eq. 2/4)."""

import pytest

from repro.circuit import ghz_state, hardware_efficient_ansatz
from repro.core.weighting import (
    BOUNDS_MODERATE,
    BOUNDS_TIGHT,
    BOUNDS_WIDE,
    WeightBounds,
    WeightingConfig,
    estimate_p_correct,
    normalize_weights,
)
from repro.devices.catalog import build_qpu
from repro.transpiler import transpile


class TestEstimatePCorrect:
    def test_within_unit_interval(self):
        qpu = build_qpu("Belem")
        footprint = transpile(hardware_efficient_ansatz(4), qpu.topology).footprint
        p = estimate_p_correct(qpu.reported_calibration(0.0), footprint)
        assert 0.0 < p < 1.0

    def test_noisier_device_scores_lower(self):
        """x2's dense-but-noisy profile must score below Bogota for the same
        logical circuit, the driver of the Fig. 5 weight ordering."""
        ansatz = hardware_efficient_ansatz(4)
        scores = {}
        for name in ("x2", "Bogota"):
            qpu = build_qpu(name)
            footprint = transpile(ansatz, qpu.topology).footprint
            scores[name] = estimate_p_correct(qpu.reported_calibration(0.0), footprint)
        assert scores["x2"] < scores["Bogota"]

    def test_larger_circuit_scores_lower(self):
        qpu = build_qpu("Quito")
        small = transpile(ghz_state(3), qpu.topology).footprint
        large = transpile(hardware_efficient_ansatz(4), qpu.topology).footprint
        calibration = qpu.reported_calibration(0.0)
        assert estimate_p_correct(calibration, large) < estimate_p_correct(calibration, small)

    def test_estimate_excludes_latent_crosstalk(self):
        """The estimate (Eq. 2) must not be lower than the device's true
        success probability computed with the latent cross-talk term."""
        qpu = build_qpu("x2")
        footprint = transpile(hardware_efficient_ansatz(4), qpu.topology).footprint
        estimate = estimate_p_correct(qpu.reported_calibration(0.0), footprint)
        truth = qpu.true_success_probability(footprint, now=0.0)
        assert estimate >= truth - 1e-9


class TestWeightBounds:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightBounds(-0.1, 1.0)
        with pytest.raises(ValueError):
            WeightBounds(1.0, 0.5)

    def test_midpoint_and_width(self):
        bounds = WeightBounds(0.5, 1.5)
        assert bounds.midpoint == pytest.approx(1.0)
        assert bounds.width == pytest.approx(1.0)

    def test_paper_presets(self):
        assert (BOUNDS_TIGHT.low, BOUNDS_TIGHT.high) == (0.75, 1.25)
        assert (BOUNDS_MODERATE.low, BOUNDS_MODERATE.high) == (0.5, 1.5)
        assert (BOUNDS_WIDE.low, BOUNDS_WIDE.high) == (0.25, 1.75)


class TestNormalizeWeights:
    def test_unweighted_mode_gives_ones(self):
        weights = normalize_weights({"a": 0.3, "b": 0.9}, None)
        assert weights == {"a": 1.0, "b": 1.0}

    def test_extremes_map_to_bounds(self):
        weights = normalize_weights({"worst": 0.2, "mid": 0.5, "best": 0.8}, BOUNDS_MODERATE)
        assert weights["worst"] == pytest.approx(0.5)
        assert weights["best"] == pytest.approx(1.5)
        assert weights["mid"] == pytest.approx(1.0)

    def test_linear_interpolation(self):
        weights = normalize_weights({"a": 0.0, "b": 0.25, "c": 1.0}, WeightBounds(0.0, 2.0))
        assert weights["b"] == pytest.approx(0.5)

    def test_identical_values_map_to_midpoint(self):
        weights = normalize_weights({"a": 0.7, "b": 0.7}, BOUNDS_MODERATE)
        assert weights == {"a": pytest.approx(1.0), "b": pytest.approx(1.0)}

    def test_empty_input(self):
        assert normalize_weights({}, BOUNDS_MODERATE) == {}

    def test_out_of_range_p_correct_rejected(self):
        with pytest.raises(ValueError):
            normalize_weights({"a": 1.5}, BOUNDS_MODERATE)

    def test_weights_stay_within_bounds(self):
        values = {f"d{i}": v for i, v in enumerate([0.1, 0.4, 0.55, 0.62, 0.97])}
        for bounds in (BOUNDS_TIGHT, BOUNDS_MODERATE, BOUNDS_WIDE):
            weights = normalize_weights(values, bounds)
            assert all(bounds.low - 1e-12 <= w <= bounds.high + 1e-12 for w in weights.values())


class TestWeightingConfig:
    def test_enabled_flag(self):
        assert WeightingConfig(bounds=BOUNDS_MODERATE).enabled
        assert not WeightingConfig(bounds=None).enabled

    def test_describe(self):
        assert WeightingConfig(bounds=None).describe() == "unweighted"
        assert "0.5" in WeightingConfig(bounds=BOUNDS_MODERATE).describe()
