"""Tests for the VQE, QAOA and QNN problem definitions."""

import numpy as np
import pytest

from repro.vqa.qaoa import ring_maxcut_qaoa_problem
from repro.vqa.qnn import QNNDataset, QNNProblem, make_synthetic_dataset, two_moons_like_dataset
from repro.vqa.vqe import heisenberg_vqe_problem


class TestVQEProblem:
    def test_paper_dimensions(self, vqe_problem):
        assert vqe_problem.num_qubits == 4
        assert vqe_problem.num_parameters == 16

    def test_ground_energy(self, vqe_problem):
        assert vqe_problem.ground_energy == pytest.approx(-8.0, abs=1e-9)

    def test_energy_at_zero(self, vqe_problem):
        assert vqe_problem.energy([0.0] * 16) == pytest.approx(8.0)

    def test_error_vs_ground(self, vqe_problem):
        assert vqe_problem.error_vs_ground(-8.0) == pytest.approx(0.0)
        assert vqe_problem.error_vs_ground(-7.2) == pytest.approx(0.1)

    def test_initial_parameters_reproducible(self, vqe_problem):
        a = vqe_problem.random_initial_parameters(seed=5)
        b = vqe_problem.random_initial_parameters(seed=5)
        assert np.allclose(a, b)
        assert a.shape == (16,)

    def test_layers_scale_parameters(self):
        problem = heisenberg_vqe_problem(num_layers=2)
        assert problem.num_parameters == 32


class TestQAOAProblem:
    def test_paper_dimensions(self, qaoa_problem):
        assert qaoa_problem.num_qubits == 4
        assert qaoa_problem.num_parameters == 2
        assert qaoa_problem.num_edges == 4

    def test_optimal_cut(self, qaoa_problem):
        assert qaoa_problem.optimal_cut_value == pytest.approx(4.0)
        assert qaoa_problem.ground_energy == pytest.approx(-4.0)

    def test_normalized_cost_range(self, qaoa_problem):
        rng = np.random.default_rng(2)
        for _ in range(5):
            theta = rng.uniform(-np.pi, np.pi, 2)
            cost = qaoa_problem.normalized_cost(qaoa_problem.energy(theta))
            assert -1.0 <= cost <= 0.0

    def test_qaoa_landscape_has_good_points(self, qaoa_problem):
        """A coarse grid over the 2-parameter landscape must reach at least
        ~0.7 approximation ratio (known p=1 behaviour on the ring)."""
        best = 0.0
        for beta in np.linspace(0, np.pi, 10):
            for alpha in np.linspace(0, np.pi, 10):
                ratio = qaoa_problem.approximation_ratio(qaoa_problem.energy([beta, alpha]))
                best = max(best, ratio)
        assert best > 0.7

    def test_cut_of_bitstring(self, qaoa_problem):
        assert qaoa_problem.cut_of_bitstring("0101") == pytest.approx(4.0)


class TestQNN:
    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            QNNDataset(((0.1,),), (2,))
        with pytest.raises(ValueError):
            QNNDataset(((0.1,), (0.2, 0.3)), (1, -1))
        with pytest.raises(ValueError):
            QNNDataset((), ())

    def test_synthetic_dataset(self):
        ds = make_synthetic_dataset(num_samples=10, feature_dimension=4, seed=1)
        assert len(ds) == 10
        assert ds.feature_dimension == 4
        assert set(ds.labels) <= {-1, 1}

    def test_two_moons_dataset(self):
        ds = two_moons_like_dataset(num_samples=12)
        assert len(ds) == 12
        assert ds.feature_dimension == 4

    def test_problem_dimensions(self):
        problem = QNNProblem("qnn", make_synthetic_dataset(8), num_qubits=4)
        assert problem.num_parameters == 4

    def test_prediction_in_range(self):
        problem = QNNProblem("qnn", make_synthetic_dataset(6), num_qubits=4)
        theta = problem.random_initial_parameters()
        for index in range(len(problem.dataset)):
            assert -1.0 <= problem.prediction(theta, index) <= 1.0

    def test_dataset_loss_is_mean_of_sample_losses(self):
        problem = QNNProblem("qnn", make_synthetic_dataset(5), num_qubits=4)
        theta = problem.random_initial_parameters()
        per_sample = [problem.sample_loss(theta, i) for i in range(5)]
        assert problem.dataset_loss(theta) == pytest.approx(np.mean(per_sample))

    def test_accuracy_bounds(self):
        problem = QNNProblem("qnn", make_synthetic_dataset(6), num_qubits=4)
        accuracy = problem.accuracy(problem.random_initial_parameters())
        assert 0.0 <= accuracy <= 1.0

    def test_sample_gradient_matches_finite_difference(self):
        problem = QNNProblem("qnn", make_synthetic_dataset(4), num_qubits=4)
        theta = problem.random_initial_parameters()
        index, data_index = 1, 2
        gradient = problem.sample_gradient(theta, index, data_index)
        eps = 1e-5
        plus, minus = theta.copy(), theta.copy()
        plus[index] += eps
        minus[index] -= eps
        fd = (problem.sample_loss(plus, data_index) - problem.sample_loss(minus, data_index)) / (
            2 * eps
        )
        assert gradient == pytest.approx(fd, abs=1e-4)

    def test_training_reduces_loss(self):
        """A few epochs of exact gradient descent must reduce the dataset loss."""
        problem = QNNProblem("qnn", make_synthetic_dataset(6, seed=2), num_qubits=4)
        theta = problem.random_initial_parameters().copy()
        initial = problem.dataset_loss(theta)
        for _ in range(10):
            for p in range(problem.num_parameters):
                gradient = np.mean(
                    [problem.sample_gradient(theta, p, d) for d in range(len(problem.dataset))]
                )
                theta[p] -= 0.2 * gradient
        assert problem.dataset_loss(theta) < initial
