"""Tests for the ASGD update rule and parameter state."""

import numpy as np
import pytest

from repro.vqa.optimizer import AsgdRule, ParameterVectorState, clip_gradient, initial_parameters


class TestClipGradient:
    def test_no_clipping_when_disabled(self):
        assert clip_gradient(100.0, 0.0) == pytest.approx(100.0)

    def test_clipping(self):
        assert clip_gradient(5.0, 2.0) == pytest.approx(2.0)
        assert clip_gradient(-5.0, 2.0) == pytest.approx(-2.0)
        assert clip_gradient(1.0, 2.0) == pytest.approx(1.0)


class TestAsgdRule:
    def test_basic_step(self):
        rule = AsgdRule(learning_rate=0.1)
        assert rule.step(1.0, gradient=2.0) == pytest.approx(0.8)

    def test_weighted_step_matches_eq4(self):
        """theta <- theta - w * alpha * g (paper Eq. 4)."""
        rule = AsgdRule(learning_rate=0.1)
        assert rule.step(0.0, gradient=1.0, weight=1.5) == pytest.approx(-0.15)
        assert rule.step(0.0, gradient=1.0, weight=0.5) == pytest.approx(-0.05)

    def test_zero_weight_freezes_parameter(self):
        rule = AsgdRule(learning_rate=0.1)
        assert rule.step(0.7, gradient=10.0, weight=0.0) == pytest.approx(0.7)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            AsgdRule().step(0.0, 1.0, weight=-1.0)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            AsgdRule(learning_rate=0.0)

    def test_gradient_bound_applied(self):
        rule = AsgdRule(learning_rate=1.0, gradient_bound=0.5)
        assert rule.step(0.0, gradient=10.0) == pytest.approx(-0.5)


class TestParameterVectorState:
    def test_snapshot_is_immutable_copy(self):
        state = ParameterVectorState(np.zeros(3))
        snap = state.snapshot()
        state.apply(0, 1.0, AsgdRule(0.1))
        assert snap == (0.0, 0.0, 0.0)

    def test_apply_updates_value_and_counters(self):
        state = ParameterVectorState(np.zeros(2))
        new_value = state.apply(1, gradient=1.0, rule=AsgdRule(0.1), weight=2.0)
        assert new_value == pytest.approx(-0.2)
        assert state.update_counts[1] == 1
        assert state.version == 1

    def test_out_of_range_index_rejected(self):
        state = ParameterVectorState(np.zeros(2))
        with pytest.raises(IndexError):
            state.apply(5, 1.0, AsgdRule(0.1))

    def test_min_updates(self):
        state = ParameterVectorState(np.zeros(2))
        state.apply(0, 1.0, AsgdRule(0.1))
        assert state.min_updates() == 0
        state.apply(1, 1.0, AsgdRule(0.1))
        assert state.min_updates() == 1


class TestInitialParameters:
    def test_shape_and_scale(self):
        rng = np.random.default_rng(0)
        theta = initial_parameters(16, rng, scale=0.1)
        assert theta.shape == (16,)
        assert np.all(np.abs(theta) <= 0.1)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            initial_parameters(0, np.random.default_rng(0))
