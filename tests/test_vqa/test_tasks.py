"""Tests for the cyclic task decomposition."""

import pytest

from repro.vqa.tasks import CyclicTaskQueue, GradientTask, qnn_task_cycle, vqe_task_cycle


class TestGradientTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            GradientTask(task_id=-1, parameter_index=0)
        with pytest.raises(ValueError):
            GradientTask(task_id=0, parameter_index=-1)
        with pytest.raises(ValueError):
            GradientTask(task_id=0, parameter_index=0, data_index=-2)


class TestCyclicTaskQueue:
    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            CyclicTaskQueue([])

    def test_cyclic_parameter_order(self):
        queue = vqe_task_cycle(3)
        indices = [queue.next_task().parameter_index for _ in range(7)]
        assert indices == [0, 1, 2, 0, 1, 2, 0]

    def test_task_ids_increase(self):
        queue = vqe_task_cycle(2)
        ids = [queue.next_task().task_id for _ in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_epoch_accounting(self):
        queue = vqe_task_cycle(4)
        assert queue.epochs_started == 0
        for _ in range(4):
            queue.next_task()
        assert queue.epochs_started == 1
        queue.next_task()
        assert queue.epochs_started == 2

    def test_epoch_of_task(self):
        queue = vqe_task_cycle(4)
        tasks = [queue.next_task() for _ in range(9)]
        assert queue.epoch_of_task(tasks[0]) == 0
        assert queue.epoch_of_task(tasks[3]) == 0
        assert queue.epoch_of_task(tasks[4]) == 1
        assert queue.epoch_of_task(tasks[8]) == 2

    def test_vqe_cycle_has_no_data_indices(self):
        queue = vqe_task_cycle(2)
        assert queue.next_task().data_index is None

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            vqe_task_cycle(0)
        with pytest.raises(ValueError):
            qnn_task_cycle(0, 5)


class TestQnnCycle:
    def test_cycle_length(self):
        queue = qnn_task_cycle(num_parameters=3, num_datapoints=4)
        assert queue.cycle_length == 12

    def test_covers_every_pair(self):
        queue = qnn_task_cycle(2, 3)
        pairs = {(t.parameter_index, t.data_index) for t in (queue.next_task() for _ in range(6))}
        assert pairs == {(p, d) for p in range(2) for d in range(3)}
