"""Tests for the parameter-shift rule."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, Parameter
from repro.hamiltonian.expectation import EnergyEstimator
from repro.hamiltonian.pauli import PauliSum
from repro.vqa.gradient import (
    PARAMETER_SHIFT,
    exact_full_gradient,
    exact_parameter_shift_gradient,
    gradient_from_energies,
    shifted_parameter_vectors,
)


@pytest.fixture
def single_ry_estimator():
    """<Z> of RY(theta)|0> = cos(theta): an analytically known landscape."""
    p = Parameter("theta")
    circuit = QuantumCircuit(1).ry(p, 0)
    return EnergyEstimator(circuit, PauliSum.from_dict({"Z": 1.0}))


class TestShiftedVectors:
    def test_shift_applied_to_target_only(self):
        pair = shifted_parameter_vectors([0.1, 0.2, 0.3], 1)
        assert pair.forward == (0.1, 0.2 + PARAMETER_SHIFT, 0.3)
        assert pair.backward == (0.1, 0.2 - PARAMETER_SHIFT, 0.3)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(IndexError):
            shifted_parameter_vectors([0.1], 3)

    def test_custom_shift(self):
        pair = shifted_parameter_vectors([0.0], 0, shift=0.1)
        assert pair.forward == (0.1,)

    def test_gradient_from_energies(self):
        assert gradient_from_energies(1.0, 0.0) == pytest.approx(0.5)


class TestParameterShiftCorrectness:
    @pytest.mark.parametrize("theta", [0.0, 0.3, 1.0, math.pi / 2, 2.5, -1.2])
    def test_matches_analytic_derivative(self, single_ry_estimator, theta):
        """d<Z>/dtheta = -sin(theta) for the RY test circuit."""
        gradient = exact_parameter_shift_gradient(single_ry_estimator, [theta], 0)
        assert gradient == pytest.approx(-math.sin(theta), abs=1e-9)

    def test_matches_finite_differences_on_vqe_ansatz(self, vqe_problem):
        estimator = vqe_problem.estimator
        rng = np.random.default_rng(3)
        theta = rng.uniform(-1, 1, estimator.num_parameters)
        index = 5
        shift_gradient = exact_parameter_shift_gradient(estimator, theta, index)
        eps = 1e-5
        plus = list(theta)
        minus = list(theta)
        plus[index] += eps
        minus[index] -= eps
        fd = (estimator.exact_energy(plus) - estimator.exact_energy(minus)) / (2 * eps)
        assert shift_gradient == pytest.approx(fd, abs=1e-5)

    def test_full_gradient_shape(self, vqe_problem):
        theta = np.zeros(vqe_problem.num_parameters)
        gradient = exact_full_gradient(vqe_problem.estimator, theta)
        assert gradient.shape == (16,)

    def test_gradient_zero_at_minimum_of_ry(self, single_ry_estimator):
        gradient = exact_parameter_shift_gradient(single_ry_estimator, [math.pi], 0)
        assert gradient == pytest.approx(0.0, abs=1e-9)
