"""Tests for the ideal statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuit import Parameter, QuantumCircuit, ghz_state
from repro.simulator.statevector import Statevector, simulate_statevector


class TestStatevectorBasics:
    def test_initial_state_is_all_zeros(self):
        sv = Statevector(3)
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(1.0)
        assert probs[1:].sum() == pytest.approx(0.0)

    def test_custom_data_is_normalized(self):
        sv = Statevector(1, np.array([3.0, 4.0]))
        assert np.linalg.norm(sv.data) == pytest.approx(1.0)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            Statevector(1, np.zeros(2))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Statevector(0)

    def test_copy_is_independent(self):
        sv = Statevector(1)
        other = sv.copy()
        other.apply_gate("x", [0])
        assert sv.probabilities()[0] == pytest.approx(1.0)
        assert other.probabilities()[1] == pytest.approx(1.0)


class TestGateApplication:
    def test_x_flips_qubit(self):
        sv = Statevector(2)
        sv.apply_gate("x", [1])
        # qubit 0 is the most significant bit: |01>
        assert sv.probabilities()[0b01] == pytest.approx(1.0)

    def test_h_creates_superposition(self):
        sv = Statevector(1)
        sv.apply_gate("h", [0])
        assert np.allclose(sv.probabilities(), [0.5, 0.5])

    def test_cx_entangles(self):
        sv = Statevector(2)
        sv.apply_gate("h", [0])
        sv.apply_gate("cx", [0, 1])
        probs = sv.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)

    def test_cx_control_and_target_order_matters(self):
        sv = Statevector(2)
        sv.apply_gate("x", [1])       # |01>
        sv.apply_gate("cx", [1, 0])   # control = qubit 1 (set) -> flips qubit 0
        assert sv.probabilities()[0b11] == pytest.approx(1.0)

    def test_normalization_preserved(self):
        rng = np.random.default_rng(0)
        sv = Statevector(3)
        for _ in range(20):
            gate = rng.choice(["h", "x", "rz", "ry"])
            qubit = int(rng.integers(0, 3))
            params = [float(rng.uniform(0, 2 * math.pi))] if gate in ("rz", "ry") else []
            sv.apply_gate(gate, [qubit], params)
        assert np.sum(sv.probabilities()) == pytest.approx(1.0)

    def test_invalid_matrix_shape_rejected(self):
        sv = Statevector(2)
        with pytest.raises(ValueError):
            sv.apply_matrix(np.eye(2), [0, 1])

    def test_duplicate_qubits_rejected(self):
        sv = Statevector(2)
        with pytest.raises(ValueError):
            sv.apply_matrix(np.eye(4), [0, 0])

    def test_out_of_range_qubit_rejected(self):
        sv = Statevector(2)
        with pytest.raises(ValueError):
            sv.apply_gate("x", [5])


class TestProbabilities:
    def test_marginal_over_subset(self):
        sv = Statevector(2)
        sv.apply_gate("x", [0])
        # Marginal over qubit 1 only: qubit 1 is still |0>
        assert np.allclose(sv.probabilities([1]), [1.0, 0.0])

    def test_marginal_ordering(self):
        sv = Statevector(2)
        sv.apply_gate("x", [0])  # state |10>
        # asking for qubits in order (1, 0) should report bitstring "01"
        probs = sv.probabilities([1, 0])
        assert probs[0b01] == pytest.approx(1.0)

    def test_full_equals_default(self):
        sv = Statevector(2)
        sv.apply_gate("h", [0])
        assert np.allclose(sv.probabilities(), sv.probabilities([0, 1]))


class TestExpectationAndFidelity:
    def test_z_expectation_of_zero_state(self):
        sv = Statevector(2)
        assert sv.expectation_pauli("ZI") == pytest.approx(1.0)
        assert sv.expectation_pauli("IZ") == pytest.approx(1.0)

    def test_z_expectation_of_one_state(self):
        sv = Statevector(1)
        sv.apply_gate("x", [0])
        assert sv.expectation_pauli("Z") == pytest.approx(-1.0)

    def test_x_expectation_of_plus_state(self):
        sv = Statevector(1)
        sv.apply_gate("h", [0])
        assert sv.expectation_pauli("X") == pytest.approx(1.0)

    def test_ghz_parity(self):
        sv = Statevector(3)
        sv.apply_gate("h", [0])
        sv.apply_gate("cx", [0, 1])
        sv.apply_gate("cx", [1, 2])
        assert sv.expectation_pauli("ZZI") == pytest.approx(1.0)
        assert sv.expectation_pauli("XXX") == pytest.approx(1.0)
        assert sv.expectation_pauli("ZII") == pytest.approx(0.0)

    def test_invalid_label_length(self):
        with pytest.raises(ValueError):
            Statevector(2).expectation_pauli("Z")

    def test_invalid_label_character(self):
        with pytest.raises(ValueError):
            Statevector(1).expectation_pauli("Q")

    def test_fidelity_identical_states(self):
        a, b = Statevector(2), Statevector(2)
        assert a.fidelity(b) == pytest.approx(1.0)

    def test_fidelity_orthogonal_states(self):
        a = Statevector(1)
        b = Statevector(1)
        b.apply_gate("x", [0])
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_fidelity_width_mismatch(self):
        with pytest.raises(ValueError):
            Statevector(1).fidelity(Statevector(2))


class TestSimulateCircuit:
    def test_ghz_distribution(self):
        state = simulate_statevector(ghz_state(4, measure=False))
        probs = state.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_measurements_are_ignored(self):
        state = simulate_statevector(ghz_state(3, measure=True))
        assert state.probabilities()[0] == pytest.approx(0.5)

    def test_parameter_binding(self):
        p = Parameter("a")
        qc = QuantumCircuit(1).ry(p, 0)
        state = simulate_statevector(qc, {p: math.pi})
        assert state.probabilities()[1] == pytest.approx(1.0)

    def test_unbound_parameters_rejected(self):
        qc = QuantumCircuit(1).ry(Parameter("a"), 0)
        with pytest.raises(ValueError):
            simulate_statevector(qc)
