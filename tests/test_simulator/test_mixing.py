"""Tests for the analytic mixing (fast noisy) executor."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, ghz_state
from repro.simulator.mixing import (
    MixingNoiseSpec,
    apply_coherent_bias,
    execute_with_mixing,
    noisy_probabilities,
)


class TestMixingNoiseSpec:
    def test_valid_spec(self):
        spec = MixingNoiseSpec(success_probability=0.9, readout_p01=0.02, readout_p10=0.03)
        assert spec.success_probability == pytest.approx(0.9)

    def test_out_of_range_success_rejected(self):
        with pytest.raises(ValueError):
            MixingNoiseSpec(success_probability=1.2)

    def test_out_of_range_readout_rejected(self):
        with pytest.raises(ValueError):
            MixingNoiseSpec(success_probability=0.9, readout_p01=2.0)

    def test_per_qubit_readout_validated(self):
        with pytest.raises(ValueError):
            MixingNoiseSpec(success_probability=0.9, per_qubit_readout=((1.5, 0.0),))


class TestCoherentBias:
    def test_zero_bias_returns_same_circuit(self):
        qc = QuantumCircuit(1).ry(0.5, 0)
        assert apply_coherent_bias(qc, 0.0) is qc

    def test_rotation_angles_scaled(self):
        qc = QuantumCircuit(1).ry(1.0, 0).rz(2.0, 0)
        biased = apply_coherent_bias(qc, 0.1)
        assert biased.instructions[0].params == (pytest.approx(1.1),)
        assert biased.instructions[1].params == (pytest.approx(2.2),)

    def test_discrete_gates_untouched(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        biased = apply_coherent_bias(qc, 0.5)
        assert [i.name for i in biased] == ["h", "cx"]

    def test_unbound_circuit_rejected(self):
        from repro.circuit import Parameter

        qc = QuantumCircuit(1).ry(Parameter("a"), 0)
        with pytest.raises(ValueError):
            apply_coherent_bias(qc, 0.1)


class TestNoisyProbabilities:
    def test_perfect_execution_matches_ideal(self):
        circuit = ghz_state(3)
        probs = noisy_probabilities(circuit, MixingNoiseSpec(success_probability=1.0))
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_zero_success_gives_uniform(self):
        circuit = ghz_state(3)
        probs = noisy_probabilities(circuit, MixingNoiseSpec(success_probability=0.0))
        assert np.allclose(probs, 1.0 / 8.0)

    def test_mixing_interpolates(self):
        circuit = ghz_state(2)
        probs = noisy_probabilities(circuit, MixingNoiseSpec(success_probability=0.5))
        # 0.5 * [0.5, 0, 0, 0.5] + 0.5 * uniform(0.25)
        assert probs[0] == pytest.approx(0.375)
        assert probs[1] == pytest.approx(0.125)

    def test_readout_error_spreads_mass(self):
        circuit = QuantumCircuit(1).measure_all()
        probs = noisy_probabilities(
            circuit, MixingNoiseSpec(success_probability=1.0, readout_p01=0.1, readout_p10=0.0)
        )
        assert probs[1] == pytest.approx(0.1)

    def test_distribution_normalized(self):
        circuit = ghz_state(4)
        probs = noisy_probabilities(
            circuit,
            MixingNoiseSpec(success_probability=0.7, readout_p01=0.05, readout_p10=0.08),
        )
        assert probs.sum() == pytest.approx(1.0)

    def test_unbound_circuit_rejected(self):
        from repro.circuit import Parameter

        qc = QuantumCircuit(1).ry(Parameter("a"), 0).measure_all()
        with pytest.raises(ValueError):
            noisy_probabilities(qc, MixingNoiseSpec(success_probability=1.0))


class TestExecuteWithMixing:
    def test_counts_total(self, rng):
        counts = execute_with_mixing(
            ghz_state(3), MixingNoiseSpec(success_probability=0.8), 512, rng
        )
        assert counts.shots == 512
        assert sum(counts.values()) == 512

    def test_noise_introduces_non_ghz_outcomes(self, rng):
        counts = execute_with_mixing(
            ghz_state(3), MixingNoiseSpec(success_probability=0.3), 5000, rng
        )
        bad = {k for k in counts if k not in ("000", "111")}
        assert bad

    def test_zero_shots_rejected(self, rng):
        with pytest.raises(ValueError):
            execute_with_mixing(ghz_state(2), MixingNoiseSpec(success_probability=1.0), 0, rng)
