"""Tests for Counts and ExecutionResult."""

import numpy as np
import pytest

from repro.simulator.result import Counts, ExecutionResult


class TestCounts:
    def test_mapping_interface(self):
        counts = Counts({"00": 60, "11": 40})
        assert counts["00"] == 60
        assert len(counts) == 2
        assert set(counts) == {"00", "11"}

    def test_shots_inferred(self):
        assert Counts({"0": 30, "1": 70}).shots == 100

    def test_explicit_shots_allows_lost_shots(self):
        counts = Counts({"0": 30}, shots=50)
        assert counts.shots == 50

    def test_shots_smaller_than_counts_rejected(self):
        with pytest.raises(ValueError):
            Counts({"0": 30}, shots=10)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Counts({"0": -1})

    def test_zero_counts_dropped(self):
        counts = Counts({"0": 0, "1": 5})
        assert "0" not in counts

    def test_mixed_widths_rejected(self):
        with pytest.raises(ValueError):
            Counts({"0": 1, "00": 1})

    def test_probability(self):
        counts = Counts({"00": 25, "11": 75})
        assert counts.probability("11") == pytest.approx(0.75)
        assert counts.probability("01") == 0.0

    def test_probabilities_sum_to_one(self):
        counts = Counts({"00": 25, "01": 25, "10": 25, "11": 25})
        assert sum(counts.probabilities().values()) == pytest.approx(1.0)

    def test_to_array_indexing(self):
        counts = Counts({"10": 4, "01": 12})
        arr = counts.to_array()
        assert arr[0b10] == pytest.approx(0.25)
        assert arr[0b01] == pytest.approx(0.75)

    def test_most_frequent(self):
        assert Counts({"00": 10, "11": 90}).most_frequent() == "11"

    def test_most_frequent_tie_breaks_lexicographically(self):
        assert Counts({"11": 10, "00": 10}).most_frequent() == "00"

    def test_most_frequent_empty_rejected(self):
        with pytest.raises(ValueError):
            Counts({}).most_frequent()

    def test_merge(self):
        merged = Counts({"0": 10}).merge(Counts({"0": 5, "1": 5}))
        assert merged["0"] == 15
        assert merged.shots == 20

    def test_merge_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Counts({"0": 1}).merge(Counts({"00": 1}))

    def test_num_bits(self):
        assert Counts({"010": 3}).num_bits == 3
        assert Counts({}).num_bits == 0


class TestExecutionResult:
    def test_total_seconds(self):
        result = ExecutionResult(
            counts=Counts({"0": 1}),
            shots=1,
            duration_seconds=2.0,
            queue_seconds=3.0,
        )
        assert result.total_seconds == pytest.approx(5.0)

    def test_default_metadata_is_unique(self):
        a = ExecutionResult(counts=Counts({"0": 1}), shots=1)
        b = ExecutionResult(counts=Counts({"0": 1}), shots=1)
        a.metadata["x"] = 1
        assert "x" not in b.metadata
