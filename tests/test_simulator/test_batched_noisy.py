"""Tests for the vectorized noisy execution pipeline (PR 4).

Three contracts are pinned here:

1. **Batched-vs-sequential equivalence** — ``noisy_probabilities_batch`` (and
   the QPU batch/sweep entry points built on it) agree with the per-circuit
   sequential path to <= 1e-10 on probabilities, across randomized circuits,
   noise specs, and mixed-structure batches.
2. **Seeded sampling order** — the batched paths consume a shared RNG stream
   exactly like the sequential loop: identical counts, identical final
   generator state, golden-pinned draws.
3. **Trajectory correctness** — the batched ``(trajectories, 2**n)`` engine
   converges to the exact density-matrix evolution and matches the retained
   sequential reference statistically.
"""

import numpy as np
import pytest

from repro.backends.noisy import NoisyBackend
from repro.circuit import (
    Parameter,
    QuantumCircuit,
    ghz_state,
    hardware_efficient_ansatz,
)
from repro.devices.catalog import build_qpu
from repro.devices.qpu import CircuitFootprint, job_slot_circuit_seconds
from repro.simulator.mixing import (
    MixingNoiseSpec,
    noisy_probabilities,
    noisy_probabilities_batch,
    noisy_sweep_probabilities,
)
from repro.simulator.sampler import (
    apply_readout_error,
    apply_readout_error_batch,
    sample_distribution,
    sample_distribution_batch,
)
from repro.simulator.trajectory import (
    MonteCarloSimulator,
    TrajectoryNoiseSpec,
    density_matrix_probabilities,
)
from repro.vqa.gradient import shifted_parameter_vectors, shifted_theta_matrix

TOLERANCE = 1e-10


def _random_spec(rng: np.random.Generator, num_bits: int) -> MixingNoiseSpec:
    per_qubit = tuple(
        (float(rng.uniform(0.0, 0.08)), float(rng.uniform(0.0, 0.08)))
        for _ in range(num_bits)
    )
    return MixingNoiseSpec(
        success_probability=float(rng.uniform(0.4, 1.0)),
        per_qubit_readout=per_qubit,
        coherent_bias=float(rng.uniform(-0.05, 0.05)),
    )


def _shift_batch(num_qubits: int, num_params: int, seed: int) -> list[QuantumCircuit]:
    template = hardware_efficient_ansatz(num_qubits).measure_all()
    rng = np.random.default_rng(seed)
    theta = rng.uniform(-np.pi, np.pi, len(template.ordered_parameters()))
    circuits = []
    for index in range(num_params):
        pair = shifted_parameter_vectors(theta, index)
        circuits.append(template.assign_by_order(pair.forward))
        circuits.append(template.assign_by_order(pair.backward))
    return circuits


class TestNoisyProbabilitiesBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_sequential_on_random_batches(self, seed):
        rng = np.random.default_rng(seed)
        circuits = _shift_batch(4, 4, seed)
        specs = [_random_spec(rng, 4) for _ in circuits]
        batched = noisy_probabilities_batch(circuits, specs)
        for circuit, spec, probs in zip(circuits, specs, batched):
            reference = noisy_probabilities(circuit, spec)
            assert np.max(np.abs(probs - reference)) <= TOLERANCE

    def test_mixed_structure_batch_preserves_input_order(self):
        rng = np.random.default_rng(7)
        a = ghz_state(3)
        b = hardware_efficient_ansatz(3).measure_all()
        b = b.assign_by_order(
            list(rng.uniform(-1, 1, len(b.ordered_parameters())))
        )
        batch = [a, b, a, b]
        specs = [_random_spec(rng, 3) for _ in batch]
        batched = noisy_probabilities_batch(batch, specs)
        for circuit, spec, probs in zip(batch, specs, batched):
            reference = noisy_probabilities(circuit, spec)
            assert np.max(np.abs(probs - reference)) <= TOLERANCE

    def test_coherent_bias_rows_are_scaled_independently(self):
        rng = np.random.default_rng(11)
        circuits = _shift_batch(3, 2, 11)
        specs = [
            MixingNoiseSpec(success_probability=1.0, coherent_bias=bias)
            for bias in rng.uniform(-0.1, 0.1, len(circuits))
        ]
        batched = noisy_probabilities_batch(circuits, specs)
        for circuit, spec, probs in zip(circuits, specs, batched):
            reference = noisy_probabilities(circuit, spec)
            assert np.max(np.abs(probs - reference)) <= TOLERANCE

    def test_mixed_readout_presence_falls_back_row_wise(self):
        rng = np.random.default_rng(13)
        circuits = _shift_batch(3, 2, 13)
        specs = []
        for index in range(len(circuits)):
            if index % 2 == 0:
                specs.append(MixingNoiseSpec(success_probability=0.9))
            else:
                specs.append(_random_spec(rng, 3))
        batched = noisy_probabilities_batch(circuits, specs)
        for circuit, spec, probs in zip(circuits, specs, batched):
            reference = noisy_probabilities(circuit, spec)
            assert np.max(np.abs(probs - reference)) <= TOLERANCE

    def test_rejects_misaligned_specs(self):
        circuits = _shift_batch(3, 1, 0)
        with pytest.raises(ValueError):
            noisy_probabilities_batch(circuits, [MixingNoiseSpec(1.0)])

    def test_rejects_unbound_circuits(self):
        qc = QuantumCircuit(2).ry(Parameter("a"), 0).measure_all()
        with pytest.raises(ValueError):
            noisy_probabilities_batch([qc], [MixingNoiseSpec(1.0)])


class TestSweepProbabilities:
    def test_flat_order_matches_bound_batch(self):
        template = hardware_efficient_ansatz(4).measure_all()
        rng = np.random.default_rng(3)
        theta = rng.uniform(-np.pi, np.pi, len(template.ordered_parameters()))
        matrix = shifted_theta_matrix(theta)
        specs = [_random_spec(rng, 4) for _ in range(matrix.shape[0])]
        swept = noisy_sweep_probabilities([template], matrix, specs)
        bound = [template.assign_by_order(row) for row in matrix]
        batched = noisy_probabilities_batch(bound, specs)
        assert len(swept) == len(batched)
        for left, right in zip(swept, batched):
            assert np.max(np.abs(left - right)) <= TOLERANCE


class TestBatchedReadoutError:
    @pytest.mark.parametrize("num_bits", [1, 2, 4])
    def test_rows_match_sequential_application(self, num_bits):
        rng = np.random.default_rng(num_bits)
        batch = 6
        probs = rng.dirichlet(np.ones(1 << num_bits), size=batch)
        confusions = [
            [
                np.array(
                    [[1 - p01, p10], [p01, 1 - p10]]
                )
                for (p01, p10) in rng.uniform(0, 0.1, (num_bits, 2))
            ]
            for _ in range(batch)
        ]
        stacks = [
            np.stack([confusions[row][bit] for row in range(batch)])
            for bit in range(num_bits)
        ]
        batched = apply_readout_error_batch(probs, stacks)
        for row in range(batch):
            reference = apply_readout_error(probs[row], confusions[row])
            assert np.array_equal(batched[row], reference)


class TestSeededSamplingOrder:
    """The batched device paths must consume RNG streams bit-exactly."""

    def test_batched_multinomial_matches_sequential_draws(self):
        probs = np.random.default_rng(0).dirichlet(np.ones(16), size=8)
        seq_rng = np.random.default_rng(42)
        bat_rng = np.random.default_rng(42)
        sequential = [
            sample_distribution(row, 257, seq_rng, num_bits=4) for row in probs
        ]
        batched = sample_distribution_batch(probs, 257, bat_rng, num_bits=4)
        assert [dict(c) for c in sequential] == [dict(c) for c in batched]
        assert seq_rng.bit_generator.state == bat_rng.bit_generator.state

    def test_execute_batch_is_bit_exact_with_sequential_execution(self):
        circuits = _shift_batch(4, 4, 21)
        footprint = CircuitFootprint.from_circuit(circuits[0])
        batch_qpu = build_qpu("Belem")
        seq_qpu = build_qpu("Belem")

        batch_rng = np.random.default_rng(9)
        batched = batch_qpu.execute_batch(
            circuits, footprint, 256, now=5000.0, rng=batch_rng
        )

        seq_rng = np.random.default_rng(9)
        elapsed = 0.0
        sequential = []
        for circuit in circuits:
            result = seq_qpu.execute(
                circuit, footprint, 256, now=5000.0 + elapsed, rng=seq_rng
            )
            sequential.append(result)
            elapsed += job_slot_circuit_seconds(result.duration_seconds)

        for left, right in zip(batched, sequential):
            assert dict(left.counts) == dict(right.counts)
            assert left.duration_seconds == right.duration_seconds
            assert left.metadata == right.metadata
        assert batch_rng.bit_generator.state == seq_rng.bit_generator.state

    def test_run_sweep_matches_bound_submission(self):
        template = hardware_efficient_ansatz(4).measure_all()
        theta = np.random.default_rng(2).uniform(
            -np.pi, np.pi, len(template.ordered_parameters())
        )
        matrix = shifted_theta_matrix(theta, [0, 3])
        footprint = CircuitFootprint.from_circuit(template)

        sweep_backend = NoisyBackend(build_qpu("Bogota"))
        swept = sweep_backend.run_sweep(
            [template],
            matrix,
            shots=128,
            rng=np.random.default_rng(5),
            footprint=footprint,
            now=250.0,
        )

        run_backend = NoisyBackend(build_qpu("Bogota"))
        bound = [template.assign_by_order(row) for row in matrix]
        submitted = run_backend.run(
            bound,
            shots=128,
            rng=np.random.default_rng(5),
            footprint=footprint,
            now=250.0,
        )

        assert len(swept) == len(submitted) == matrix.shape[0]
        for left, right in zip(swept, submitted):
            assert dict(left.counts) == dict(right.counts)
            assert left.metadata == right.metadata

    def test_golden_rng_consumption_pin(self):
        """Golden draws for the seeded batched path (captured at PR 4)."""
        circuits = _shift_batch(3, 2, 1)
        footprint = CircuitFootprint.from_circuit(circuits[0])
        qpu = build_qpu("x2")
        results = qpu.execute_batch(
            circuits, footprint, 64, now=0.0, rng=np.random.default_rng(1234)
        )
        golden_first = {"000": 11, "001": 10, "010": 12, "011": 4, "100": 6, "101": 4, "110": 13, "111": 4}
        assert dict(results[0].counts) == golden_first
        total_shots = sum(sum(r.counts.values()) for r in results)
        assert total_shots == 64 * len(circuits)


class TestFastNoiseSpecPath:
    """execution_noise's average-based fast path must equal the snapshot math."""

    @pytest.mark.parametrize("device", ["Belem", "Bogota", "Toronto"])
    @pytest.mark.parametrize("now", [0.0, 3600.0, 43_200.0, 100_000.0])
    def test_success_probability_matches_snapshot_route(self, device, now):
        qpu = build_qpu(device)
        circuits = _shift_batch(4, 1, 5)
        footprint = CircuitFootprint.from_circuit(circuits[0])
        spec = qpu.execution_noise(footprint, now)
        assert spec.success_probability == qpu.true_success_probability(footprint, now)

    def test_per_qubit_readout_matches_scaled_snapshot(self):
        qpu = build_qpu("Belem")
        circuits = _shift_batch(4, 1, 5)
        footprint = CircuitFootprint.from_circuit(circuits[0])
        now = 7200.0
        spec = qpu.execution_noise(footprint, now)
        calibration = qpu.effective_calibration(now)
        expected = tuple(
            (q.readout_p01, q.readout_p10)
            for q in calibration.qubits[: max(1, footprint.num_measurements)]
        )
        assert spec.per_qubit_readout == expected


class TestBatchedTrajectories:
    def test_agrees_with_density_matrix_evolution(self):
        spec = TrajectoryNoiseSpec(single_qubit_error=0.01, two_qubit_error=0.05)
        sim = MonteCarloSimulator(spec, seed=17)
        circuit = ghz_state(3)
        exact = density_matrix_probabilities(circuit, spec)
        assert exact.sum() == pytest.approx(1.0, abs=1e-9)
        averaged = sim.average_probabilities(circuit, trajectories=3000)
        # 3000 trajectories: statistical error ~1/sqrt(3000) per outcome.
        assert np.max(np.abs(averaged - exact)) < 0.03

    def test_batched_and_sequential_engines_agree_statistically(self):
        spec = TrajectoryNoiseSpec(single_qubit_error=0.02, two_qubit_error=0.08)
        sim = MonteCarloSimulator(spec, seed=23)
        circuit = ghz_state(3)
        batched = sim.average_probabilities(circuit, trajectories=1500)
        sequential = sim.average_probabilities_sequential(circuit, trajectories=1500)
        assert np.max(np.abs(batched - sequential)) < 0.05

    def test_noiseless_spec_is_deterministic_and_ideal(self):
        spec = TrajectoryNoiseSpec(
            single_qubit_error=0.0,
            two_qubit_error=0.0,
            t1=1.0,
            t2=1.0,
            single_qubit_gate_time=0.0,
            two_qubit_gate_time=0.0,
            readout_p01=0.0,
            readout_p10=0.0,
        )
        sim = MonteCarloSimulator(spec, seed=0)
        states = sim.trajectory_states(ghz_state(2), trajectories=8)
        reference = np.zeros(4, dtype=complex)
        reference[0] = reference[-1] = 1 / np.sqrt(2)
        assert np.max(np.abs(states - reference)) < 1e-12

    def test_trajectory_states_are_normalized(self):
        sim = MonteCarloSimulator(TrajectoryNoiseSpec(), seed=3)
        states = sim.trajectory_states(ghz_state(3), trajectories=32)
        norms = np.linalg.norm(states, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_run_preserves_shot_totals(self):
        sim = MonteCarloSimulator(TrajectoryNoiseSpec(), seed=4)
        counts = sim.run(ghz_state(2), shots=123, trajectories=7)
        assert sum(counts.values()) == 123
