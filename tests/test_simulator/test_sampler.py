"""Tests for shot sampling and readout-error application."""

import numpy as np
import pytest

from repro.circuit import ghz_state
from repro.simulator.channels import readout_confusion_matrix
from repro.simulator.result import Counts
from repro.simulator.sampler import (
    apply_readout_error,
    distribution_to_counts,
    sample_circuit_ideal,
    sample_distribution,
    sample_statevector,
)
from repro.simulator.statevector import Statevector


class TestSampleDistribution:
    def test_total_shots_preserved(self, rng):
        counts = sample_distribution(np.array([0.25, 0.75]), 1000, rng)
        assert sum(counts.values()) == 1000
        assert counts.shots == 1000

    def test_deterministic_distribution(self, rng):
        counts = sample_distribution(np.array([0.0, 1.0]), 100, rng)
        assert counts["1"] == 100

    def test_zero_shots(self, rng):
        counts = sample_distribution(np.array([0.5, 0.5]), 0, rng)
        assert counts.shots == 0
        assert len(counts) == 0

    def test_negative_probabilities_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_distribution(np.array([-0.5, 1.5]), 10, rng)

    def test_zero_sum_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_distribution(np.zeros(4), 10, rng)

    def test_renormalizes_slightly_off_distributions(self, rng):
        counts = sample_distribution(np.array([0.5, 0.5000001]), 100, rng)
        assert sum(counts.values()) == 100

    def test_bitstring_width(self, rng):
        counts = sample_distribution(np.array([0.25] * 4), 100, rng)
        assert all(len(k) == 2 for k in counts)

    def test_mismatched_num_bits_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_distribution(np.array([0.5, 0.5]), 10, rng, num_bits=3)

    def test_law_of_large_numbers(self, rng):
        probs = np.array([0.1, 0.2, 0.3, 0.4])
        counts = sample_distribution(probs, 200_000, rng)
        empirical = counts.to_array()
        assert np.allclose(empirical, probs, atol=0.01)


class TestStatevectorSampling:
    def test_ghz_sampling_only_extremes(self, rng):
        sv = Statevector(3)
        sv.apply_gate("h", [0])
        sv.apply_gate("cx", [0, 1])
        sv.apply_gate("cx", [1, 2])
        counts = sample_statevector(sv, 500, rng)
        assert set(counts.keys()) <= {"000", "111"}

    def test_subset_sampling(self, rng):
        sv = Statevector(2)
        sv.apply_gate("x", [0])
        counts = sample_statevector(sv, 100, rng, qubits=[0])
        assert counts["1"] == 100

    def test_sample_circuit_ideal_respects_measured_qubits(self, rng):
        counts = sample_circuit_ideal(ghz_state(4), 200, rng)
        assert all(len(k) == 4 for k in counts)
        assert set(counts.keys()) <= {"0000", "1111"}


class TestReadoutError:
    def test_identity_confusion_is_noop(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        matrices = [readout_confusion_matrix(0.0, 0.0)] * 2
        assert np.allclose(apply_readout_error(probs, matrices), probs)

    def test_full_flip_swaps_outcomes(self):
        probs = np.array([1.0, 0.0])
        flipped = apply_readout_error(probs, [readout_confusion_matrix(1.0, 1.0)])
        assert flipped[1] == pytest.approx(1.0)

    def test_output_is_normalized(self):
        probs = np.array([0.7, 0.1, 0.1, 0.1])
        matrices = [readout_confusion_matrix(0.05, 0.1)] * 2
        out = apply_readout_error(probs, matrices)
        assert out.sum() == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_readout_error(np.array([0.5, 0.5]), [readout_confusion_matrix(0, 0)] * 2)


class TestDistributionToCounts:
    def test_exact_total(self):
        counts = distribution_to_counts(np.array([0.3, 0.3, 0.4]+ [0.0]*5) / 1.0, 1000)
        assert sum(counts.values()) == 1000

    def test_rounding_goes_to_largest_remainders(self):
        counts = distribution_to_counts(np.array([1.0, 1.0, 1.0, 0.0]) / 3.0, 10)
        assert sum(counts.values()) == 10
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_zero_distribution_rejected(self):
        with pytest.raises(ValueError):
            distribution_to_counts(np.zeros(4), 10)
