"""Tests for the Kraus noise channels."""

import math

import numpy as np
import pytest

from repro.simulator.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_damping_channel,
    readout_confusion_matrix,
    thermal_relaxation_channel,
    two_qubit_depolarizing_channel,
)


def _is_trace_preserving(channel: KrausChannel) -> bool:
    dim = channel.operators[0].shape[0]
    total = sum(op.conj().T @ op for op in channel.operators)
    return np.allclose(total, np.eye(dim), atol=1e-9)


class TestChannelConstruction:
    def test_non_trace_preserving_rejected(self):
        with pytest.raises(ValueError):
            KrausChannel("bad", (np.eye(2) * 0.5,))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            KrausChannel("bad", (np.eye(2), np.eye(4)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KrausChannel("bad", ())

    def test_num_qubits(self):
        assert depolarizing_channel(0.1).num_qubits == 1
        assert two_qubit_depolarizing_channel(0.1).num_qubits == 2

    def test_identity_detection(self):
        assert depolarizing_channel(0.0).is_identity()
        assert not depolarizing_channel(0.1).is_identity()


@pytest.mark.parametrize(
    "factory,args",
    [
        (depolarizing_channel, (0.05,)),
        (two_qubit_depolarizing_channel, (0.1,)),
        (amplitude_damping_channel, (0.2,)),
        (phase_damping_channel, (0.3,)),
        (bit_flip_channel, (0.25,)),
        (thermal_relaxation_channel, (100e-6, 80e-6, 300e-9)),
    ],
)
def test_channels_are_trace_preserving(factory, args):
    assert _is_trace_preserving(factory(*args))


class TestSpecificChannels:
    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            depolarizing_channel(1.5)
        with pytest.raises(ValueError):
            amplitude_damping_channel(-0.1)

    def test_amplitude_damping_decays_excited_state(self):
        gamma = 0.3
        channel = amplitude_damping_channel(gamma)
        excited = np.array([0.0, 1.0], dtype=complex)
        population = sum(
            abs((op @ excited)[1]) ** 2 for op in channel.operators
        )
        assert population == pytest.approx(1 - gamma)

    def test_thermal_relaxation_unphysical_rejected(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(10e-6, 50e-6, 100e-9)  # T2 > 2*T1

    def test_thermal_relaxation_zero_duration_is_identity_like(self):
        channel = thermal_relaxation_channel(100e-6, 80e-6, 0.0)
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = sum(op @ rho @ op.conj().T for op in channel.operators)
        assert np.allclose(out, rho, atol=1e-12)

    def test_thermal_relaxation_shrinks_coherence(self):
        t1, t2, dt = 100e-6, 60e-6, 50e-6
        channel = thermal_relaxation_channel(t1, t2, dt)
        rho = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        out = sum(op @ rho @ op.conj().T for op in channel.operators)
        assert abs(out[0, 1]) == pytest.approx(0.5 * math.exp(-dt / t2), rel=1e-6)

    def test_two_qubit_depolarizing_operator_count(self):
        assert len(two_qubit_depolarizing_channel(0.1).operators) == 16


class TestReadoutConfusion:
    def test_columns_are_stochastic(self):
        conf = readout_confusion_matrix(0.03, 0.07)
        assert np.allclose(conf.sum(axis=0), [1.0, 1.0])

    def test_perfect_readout_is_identity(self):
        assert np.allclose(readout_confusion_matrix(0.0, 0.0), np.eye(2))

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            readout_confusion_matrix(1.2, 0.0)

    def test_asymmetric_entries(self):
        conf = readout_confusion_matrix(0.1, 0.2)
        assert conf[1, 0] == pytest.approx(0.1)  # read 1 given true 0
        assert conf[0, 1] == pytest.approx(0.2)  # read 0 given true 1
