"""Tests for the Monte-Carlo trajectory simulator."""

import numpy as np
import pytest

from repro.circuit import Parameter, QuantumCircuit, ghz_state
from repro.simulator.trajectory import MonteCarloSimulator, TrajectoryNoiseSpec


class TestTrajectoryNoiseSpec:
    def test_defaults_are_physical(self):
        spec = TrajectoryNoiseSpec()
        assert 0 <= spec.two_qubit_error <= 1
        assert spec.t2 <= 2 * spec.t1

    def test_unphysical_t2_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryNoiseSpec(t1=10e-6, t2=50e-6)

    def test_error_range_validated(self):
        with pytest.raises(ValueError):
            TrajectoryNoiseSpec(single_qubit_error=1.5)


class TestMonteCarloSimulator:
    def test_noiseless_spec_reproduces_ideal(self):
        spec = TrajectoryNoiseSpec(
            single_qubit_error=0.0,
            two_qubit_error=0.0,
            t1=1.0,
            t2=1.0,
            readout_p01=0.0,
            readout_p10=0.0,
        )
        sim = MonteCarloSimulator(spec, seed=1)
        counts = sim.run(ghz_state(3), shots=300, trajectories=10)
        assert set(counts.keys()) == {"000", "111"}

    def test_noise_produces_errors(self):
        spec = TrajectoryNoiseSpec(single_qubit_error=0.05, two_qubit_error=0.15)
        sim = MonteCarloSimulator(spec, seed=2)
        counts = sim.run(ghz_state(3), shots=600, trajectories=60)
        bad = sum(v for k, v in counts.items() if k not in ("000", "111"))
        assert bad > 0

    def test_shot_count_preserved(self):
        sim = MonteCarloSimulator(TrajectoryNoiseSpec(), seed=3)
        counts = sim.run(ghz_state(2), shots=123, trajectories=7)
        assert sum(counts.values()) == 123

    def test_unbound_circuit_rejected(self):
        sim = MonteCarloSimulator(TrajectoryNoiseSpec(), seed=0)
        qc = QuantumCircuit(1).ry(Parameter("a"), 0).measure_all()
        with pytest.raises(ValueError):
            sim.run(qc)

    def test_invalid_shots_rejected(self):
        sim = MonteCarloSimulator(TrajectoryNoiseSpec(), seed=0)
        with pytest.raises(ValueError):
            sim.run(ghz_state(2), shots=0)

    def test_average_probabilities_normalized(self):
        sim = MonteCarloSimulator(TrajectoryNoiseSpec(), seed=4)
        probs = sim.average_probabilities(ghz_state(2), trajectories=32)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)

    def test_agrees_with_mixing_on_error_scale(self):
        """Trajectory and mixing models should both show a few-percent GHZ error
        for typical calibration numbers (coarse agreement, not equality)."""
        spec = TrajectoryNoiseSpec(single_qubit_error=0.001, two_qubit_error=0.02)
        sim = MonteCarloSimulator(spec, seed=5)
        probs = sim.average_probabilities(ghz_state(3), trajectories=200)
        error = 1.0 - probs[0] - probs[-1]
        assert 0.0 < error < 0.25
