"""Shared fixtures for the telemetry tests."""

from __future__ import annotations

import pytest

from repro.telemetry import TELEMETRY


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts from (and restores) a disabled, empty TELEMETRY."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
    TELEMETRY.set_process(0, "main")
