"""Run reports and the SLO arithmetic (percentile, Jain's fairness index)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    jains_index,
    percentile,
    render_text,
    run_report,
    write_report,
)


class TestPercentile:
    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(9)
        values = list(rng.uniform(0, 100, size=57))
        for q in (0, 10, 50, 90, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_edge_cases(self):
        assert percentile([], 50) == 0.0
        assert percentile([4.2], 99) == 4.2


class TestJainsIndex:
    def test_equal_shares_give_one(self):
        assert jains_index([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_gives_one_over_n(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_report_one(self):
        assert jains_index([]) == 1.0
        assert jains_index([0.0, 0.0]) == 1.0


class TestRunReport:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("engine.executions").inc(4)
        registry.gauge("sched.queue_depth", device="a").set(2)
        registry.histogram("wait").observe(0.5)
        tracer = Tracer()
        tracer.add_span("x", "engine", 0, 2_000_000)
        tracer.add_sim_span("job", "sched", "a", 0.0, 3.0)
        return registry, tracer

    def test_report_structure(self):
        registry, tracer = self._populated()
        report = run_report(registry, tracer)
        assert report["counters"]["engine.executions"] == 4.0
        assert report["gauges"]["sched.queue_depth{device=a}"] == 2.0
        wait = report["histograms"]["wait"]
        assert wait["count"] == 1 and "bounds" not in wait and "p99" in wait
        assert report["spans_by_category"]["engine"]["spans"] == 1
        assert report["spans_by_category"]["engine"]["total_seconds"] == pytest.approx(
            0.002
        )
        assert report["spans_by_category"]["sched"]["total_seconds"] == pytest.approx(
            3.0
        )
        assert report["dropped_trace_events"] == 0

    def test_render_text_mentions_every_section(self):
        registry, tracer = self._populated()
        text = render_text(run_report(registry, tracer))
        for token in ("counters:", "gauges:", "histograms", "spans:"):
            assert token in text
        assert "engine.executions" in text

    def test_write_report_round_trips(self, tmp_path):
        registry, tracer = self._populated()
        json_path = tmp_path / "report.json"
        text_path = tmp_path / "report.txt"
        report = write_report(json_path, text_path, registry, tracer)
        assert json.loads(json_path.read_text()) == report
        assert "telemetry report" in text_path.read_text()
