"""Cross-layer instrumentation: golden bit-exactness and real-run traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.cache import TranspileCache
from repro.backends.noisy import NoisyBackend
from repro.circuit import hardware_efficient_ansatz
from repro.core import EQCConfig, EQCEnsemble
from repro.devices import build_qpu
from repro.engine import ProgramCache
from repro.hamiltonian.expectation import EnergyEstimator
from repro.telemetry import TELEMETRY, run_report, telemetry_session, validate_chrome_trace


def _train(problem, **overrides):
    estimator = EnergyEstimator(problem.ansatz, problem.hamiltonian)
    config = EQCConfig(
        device_names=("x2", "Belem"), shots=128, seed=5, **overrides
    )
    ensemble = EQCEnsemble.for_estimator(estimator, config)
    theta0 = np.zeros(estimator.num_parameters)
    return ensemble.train(theta0, num_epochs=1)


def _assert_identical(reference, candidate):
    assert len(candidate.records) == len(reference.records)
    for expected, actual in zip(reference.records, candidate.records):
        assert actual.loss == expected.loss
        assert np.array_equal(actual.parameters, expected.parameters)
        assert actual.sim_time_hours == expected.sim_time_hours


class TestGoldenBitExactness:
    """Telemetry consumes no RNG: seeded histories are identical on or off."""

    def test_statistical_path(self, vqe_problem):
        reference = _train(vqe_problem)
        with telemetry_session():
            traced = _train(vqe_problem)
        _assert_identical(reference, traced)

    def test_scheduler_path(self, vqe_problem):
        kwargs = {"scheduling_policy": "fifo", "background_tenants": 15}
        reference = _train(vqe_problem, **kwargs)
        with telemetry_session():
            traced = _train(vqe_problem, **kwargs)
        _assert_identical(reference, traced)

    def test_noisy_backend_counts(self):
        """Seeded measurement counts are bit-exact with telemetry on."""
        qpu = build_qpu("Belem")
        circuit = hardware_efficient_ansatz(4).assign_by_order([0.3] * 16)

        def sample():
            return NoisyBackend(qpu).run([circuit], shots=512, seed=77)[0].counts

        reference = sample()
        with telemetry_session():
            traced = sample()
        assert traced == reference


class TestInstrumentedRun:
    def test_trace_covers_engine_sched_and_eqc(self, vqe_problem):
        with telemetry_session():
            history = _train(
                vqe_problem, scheduling_policy="fifo", background_tenants=15
            )
            trace = TELEMETRY.tracer.to_chrome()
            report = run_report()
        summary = validate_chrome_trace(trace)
        assert {"engine", "sched", "eqc"} <= set(summary["categories"])
        # Per-device sim lanes plus the EQC epoch lane.
        assert summary["tracks"] >= 3
        counters = report["counters"]
        assert counters["engine.executions"] > 0
        # The process-wide program cache may already be warm from earlier
        # tests, so assert on lookups (hits + misses) rather than misses.
        cache_lookups = sum(
            value
            for key, value in counters.items()
            if key.startswith("engine.program_cache.")
        )
        assert cache_lookups > 0
        assert any(key.startswith("sched.jobs_completed") for key in counters)
        assert any(key.startswith("qpu.jobs") for key in counters)
        assert report["histograms"]["sched.queue_wait_seconds"]["count"] > 0
        # The run also published SLO gauges at collection time.
        assert "sched.slo.tenant_fairness_jain" in report["gauges"]
        assert history.metadata["scheduler"]["slo"]["jobs_completed"] > 0

    def test_disabled_mode_records_nothing(self, vqe_problem):
        assert not TELEMETRY.enabled
        _train(vqe_problem)
        assert len(TELEMETRY.registry) == 0
        assert len(TELEMETRY.tracer) == 0

    def test_direct_gradient_api_counts_sweeps(self, vqe_problem):
        from repro.backends import StatevectorBackend
        from repro.vqa.gradient import sampled_parameter_shift_gradient

        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        theta = np.zeros(estimator.num_parameters)
        with telemetry_session():
            sampled_parameter_shift_gradient(
                estimator, theta, StatevectorBackend(), shots=64, seed=1,
                parameter_indices=[0, 3],
            )
            counters = dict(TELEMETRY.registry.counters())
        assert counters["vqa.gradient_sweeps"] == 1.0
        assert counters["vqa.gradient_parameters"] == 2.0


class TestSchedulerSlo:
    def test_metrics_carries_slo_section(self, vqe_problem):
        history = _train(
            vqe_problem, scheduling_policy="fifo", background_tenants=15
        )
        slo = history.metadata["scheduler"]["slo"]
        for field in (
            "queue_wait_mean",
            "queue_wait_p50",
            "queue_wait_p99",
            "rejected_fraction",
            "tenant_fairness_jain",
        ):
            assert field in slo
        assert slo["queue_wait_p99"] >= slo["queue_wait_p50"] >= 0.0
        assert 0.0 < slo["tenant_fairness_jain"] <= 1.0 + 1e-12
        assert 0.0 <= slo["rejected_fraction"] <= 1.0


class TestCacheStats:
    def test_program_cache_stats(self):
        cache = ProgramCache()
        circuit = hardware_efficient_ansatz(3)
        cache.get_or_compile(circuit)
        cache.get_or_compile(circuit)
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "size": 1, "hit_rate": 0.5}

    def test_transpile_cache_stats_and_publish(self):
        cache = TranspileCache()
        topology = build_qpu("Belem").topology
        template = hardware_efficient_ansatz(4)
        cache.get_or_transpile(template, topology)
        cache.get_or_transpile(template, topology)
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1, "hit_rate": 0.5}
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cache.publish(registry)
        gauges = dict(registry.gauges())
        assert gauges["backends.transpile_cache.hits"] == 1.0
        assert gauges["backends.transpile_cache.hit_rate"] == 0.5

    def test_cache_counters_land_in_registry_when_enabled(self):
        with telemetry_session():
            cache = ProgramCache()
            circuit = hardware_efficient_ansatz(3)
            cache.get_or_compile(circuit)
            cache.get_or_compile(circuit)
            counters = dict(TELEMETRY.registry.counters())
        assert counters["engine.program_cache.misses"] == 1.0
        assert counters["engine.program_cache.hits"] == 1.0
