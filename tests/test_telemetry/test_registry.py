"""Metrics registry: counters, gauges, histograms, and merge determinism."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    default_time_buckets,
    metric_key,
)


class TestMetricKey:
    def test_plain_name(self):
        assert metric_key("engine.executions") == "engine.executions"

    def test_labels_are_sorted(self):
        assert (
            metric_key("qpu.jobs", {"tenant": "eqc", "device": "Belem"})
            == "qpu.jobs{device=Belem,tenant=eqc}"
        )
        assert metric_key("x", {"b": 1, "a": 2}) == metric_key("x", {"a": 2, "b": 1})


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(4)
        assert dict(registry.counters()) == {"jobs": 5.0}

    def test_labelled_counters_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("jobs", device="a").inc()
        registry.counter("jobs", device="b").inc(2)
        assert dict(registry.counters()) == {
            "jobs{device=a}": 1.0,
            "jobs{device=b}": 2.0,
        }

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert dict(registry.gauges()) == {"depth": 7.0}
        assert registry.gauge("depth").updates == 2


class TestHistogram:
    def test_default_bounds_are_strictly_increasing(self):
        bounds = default_time_buckets()
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([1.0, 1.0, 2.0])

    def test_single_sample_quantiles_are_exact(self):
        h = Histogram()
        h.observe(0.25)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 0.25

    def test_quantiles_track_numpy_within_bucket_resolution(self):
        rng = np.random.default_rng(5)
        samples = rng.lognormal(mean=-4.0, sigma=1.0, size=4000)
        h = Histogram()
        for value in samples:
            h.observe(value)
        for q in (0.5, 0.95, 0.99):
            estimate = h.quantile(q)
            exact = float(np.quantile(samples, q))
            assert estimate == pytest.approx(exact, rel=0.35)

    def test_exact_sidecars(self):
        h = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 10.0):
            h.observe(value)
        data = h.to_dict()
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(12.0)
        assert data["min"] == 0.5
        assert data["max"] == 10.0
        assert data["counts"] == [1, 1, 1]

    def test_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="other bounds"):
            registry.histogram("lat", bounds=(1.0, 3.0))

    def test_merge_requires_identical_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0)).to_dict()
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge_dict(b)


class TestSnapshotAndMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs", device="a").inc(3)
        registry.gauge("depth").set(2)
        h = registry.histogram("wait")
        for value in (0.001, 0.01, 0.1):
            h.observe(value)
        return registry

    def test_snapshot_is_plain_and_picklable(self):
        snapshot = self._populated().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot
        # Only plain builtin containers and scalars, all the way down.
        def check(node):
            assert isinstance(node, (dict, list, str, int, float))
            if isinstance(node, dict):
                for key, value in node.items():
                    assert isinstance(key, str)
                    check(value)
            elif isinstance(node, list):
                for value in node:
                    check(value)
        check(snapshot)

    def test_merge_doubles_counters_and_histograms(self):
        registry = self._populated()
        registry.merge_snapshot(self._populated().snapshot())
        assert dict(registry.counters())["jobs{device=a}"] == 6.0
        merged = registry.histogram("wait")
        assert merged.count == 6
        assert merged.total == pytest.approx(2 * 0.111)

    def test_gauge_merge_overwrites_only_if_set(self):
        registry = self._populated()
        incoming = MetricsRegistry()
        incoming.gauge("depth")  # created but never set
        registry.merge_snapshot(incoming.snapshot())
        assert dict(registry.gauges())["depth"] == 2.0
        incoming.gauge("depth").set(9)
        registry.merge_snapshot(incoming.snapshot())
        assert dict(registry.gauges())["depth"] == 9.0

    def test_merge_order_determinism(self):
        """Merging the same snapshots in fleet order is reproducible."""
        snapshots = []
        for worker in range(3):
            registry = MetricsRegistry()
            registry.counter("n").inc(worker + 1)
            registry.gauge("g").set(worker)
            registry.histogram("h", bounds=(1.0,)).observe(worker)
            snapshots.append(registry.snapshot())
        merged_a = MetricsRegistry()
        merged_b = MetricsRegistry()
        for snapshot in snapshots:
            merged_a.merge_snapshot(snapshot)
            merged_b.merge_snapshot(snapshot)
        assert merged_a.snapshot() == merged_b.snapshot()
        assert dict(merged_a.counters())["n"] == 6.0
        assert dict(merged_a.gauges())["g"] == 2.0  # last worker wins

    def test_reset_empties_the_registry(self):
        registry = self._populated()
        registry.reset()
        assert len(registry) == 0
