"""Worker telemetry shipping: fork/spawn merge determinism and coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EQCConfig, EQCEnsemble
from repro.hamiltonian.expectation import EnergyEstimator
from repro.telemetry import TELEMETRY, run_report, telemetry_session, validate_chrome_trace

#: Counters whose fleet-wide totals must not depend on where the work ran.
MERGED_COUNTERS = (
    "engine.executions",
    "engine.points_executed",
    "engine.matrix_ops_applied",
)


def _train(problem, *, workers, start_method=None):
    estimator = EnergyEstimator(problem.ansatz, problem.hamiltonian)
    config = EQCConfig(
        device_names=("x2", "Belem", "Bogota"),
        shots=128,
        seed=2,
        parallel_workers=workers,
        parallel_start_method=start_method,
    )
    ensemble = EQCEnsemble.for_estimator(estimator, config)
    theta0 = np.zeros(estimator.num_parameters)
    return ensemble.train(theta0, num_epochs=1)


@pytest.fixture(scope="module")
def sequential_counters(vqe_problem):
    with telemetry_session():
        _train(vqe_problem, workers=0)
        counters = dict(TELEMETRY.registry.counters())
    TELEMETRY.reset()
    return counters


class TestWorkerMerge:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_merged_counters_match_sequential(
        self, vqe_problem, sequential_counters, start_method
    ):
        with telemetry_session():
            _train(vqe_problem, workers=2, start_method=start_method)
            merged = dict(TELEMETRY.registry.counters())
        for name in MERGED_COUNTERS:
            assert merged[name] == sequential_counters[name], name
        # Per-device QPU counters are owned by exactly one worker each and
        # must survive the merge untouched.
        for key, value in sequential_counters.items():
            if key.startswith("qpu."):
                assert merged[key] == value, key

    def test_worker_spans_carry_worker_pids(self, vqe_problem):
        with telemetry_session():
            _train(vqe_problem, workers=2, start_method="fork")
            trace = TELEMETRY.tracer.to_chrome()
        summary = validate_chrome_trace(trace)
        wall_pids = {
            e["pid"]
            for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["pid"] != 9999
        }
        # Engine spans recorded inside worker processes use pid worker_id+1.
        assert {1, 2} <= wall_pids
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert {"worker 0", "worker 1"} <= names
        assert summary["events"] > 0

    def test_fork_workers_do_not_duplicate_parent_events(self, vqe_problem):
        """Events recorded before the pool forks must merge back exactly once."""
        with telemetry_session():
            TELEMETRY.tracer.add_span("pre-fork", "test", 0, 10)
            TELEMETRY.registry.counter("pre.fork").inc()
            _train(vqe_problem, workers=2, start_method="fork")
            report = run_report()
        assert report["counters"]["pre.fork"] == 1.0
        pre_fork_spans = [
            1
            for e in TELEMETRY.tracer.export_payload()["events"]
            if e["name"] == "pre-fork"
        ]
        assert len(pre_fork_spans) == 1

    def test_telemetry_off_ships_nothing(self, vqe_problem):
        assert not TELEMETRY.enabled
        _train(vqe_problem, workers=2, start_method="fork")
        assert len(TELEMETRY.registry) == 0
        assert len(TELEMETRY.tracer) == 0
