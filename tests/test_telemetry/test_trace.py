"""Tracer: Chrome trace-event export, schema validation, span nesting."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import SIM_PID, Tracer, validate_chrome_trace


def _chrome(tracer: Tracer) -> dict:
    trace = tracer.to_chrome()
    # Round-trip through JSON: the export must be fully serializable.
    return json.loads(json.dumps(trace))


class TestTracerExport:
    def test_wall_spans_normalize_to_zero_origin(self):
        tracer = Tracer()
        tracer.add_span("outer", "test", 1_000_000, 5_000_000)
        tracer.add_span("inner", "test", 2_000_000, 3_000_000)
        trace = _chrome(tracer)
        body = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in body) == 0.0
        outer = next(e for e in body if e["name"] == "outer")
        assert outer["dur"] == pytest.approx(4000.0)  # ns -> us

    def test_sim_spans_get_named_lanes_under_sim_pid(self):
        tracer = Tracer()
        tracer.add_sim_span("job", "sched", "Belem", 10.0, 5.0)
        tracer.add_sim_span("job", "sched", "Quito", 0.0, 2.0)
        trace = _chrome(tracer)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["pid"] == SIM_PID for e in spans)
        lane_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"Belem", "Quito"} <= lane_names

    def test_span_context_manager_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("work", "test", args={"k": 1}):
            pass
        assert len(tracer) == 1
        trace = _chrome(tracer)
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert span["name"] == "work" and span["args"] == {"k": 1}

    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            tracer.add_span(f"s{index}", "test", 0, 1)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert _chrome(tracer)["otherData"]["dropped_events"] == 3

    def test_ingest_merges_worker_payloads(self):
        worker = Tracer()
        worker.pid = 2
        worker.process_name = "worker 1"
        worker.add_span("w", "test", 100, 200)
        master = Tracer()
        master.add_span("m", "test", 0, 300)
        master.ingest(worker.export_payload())
        trace = _chrome(master)
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[0] == "main" and names[2] == "worker 1"
        assert len([e for e in trace["traceEvents"] if e["ph"] == "X"]) == 2

    def test_write_produces_loadable_json(self, tmp_path):
        tracer = Tracer()
        tracer.add_span("a", "test", 0, 10)
        path = tmp_path / "trace.json"
        tracer.write(path)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded)["events"] >= 1


class TestValidateChromeTrace:
    def test_accepts_properly_nested_spans(self):
        tracer = Tracer()
        tracer.add_span("outer", "a", 0, 100)
        tracer.add_span("inner", "a", 10, 60)
        tracer.add_span("sibling", "b", 60, 90)
        summary = validate_chrome_trace(_chrome(tracer))
        assert summary["categories"]["a"]["spans"] == 2
        assert summary["categories"]["b"]["spans"] == 1

    def test_rejects_partially_overlapping_spans(self):
        trace = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": 50.0},
                {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 25.0, "dur": 50.0},
            ]
        }
        with pytest.raises(ValueError, match="outside its enclosing span"):
            validate_chrome_trace(trace)

    def test_overlap_on_distinct_tracks_is_fine(self):
        trace = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": 50.0},
                {"name": "b", "ph": "X", "pid": 0, "tid": 1, "ts": 25.0, "dur": 50.0},
            ]
        }
        assert validate_chrome_trace(trace)["tracks"] == 2

    def test_rejects_missing_fields_and_bad_phases(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="missing 'pid'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "a", "ph": "X", "tid": 0}]}
            )
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "a", "ph": "B", "pid": 0, "tid": 0}]}
            )
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0}
                    ]
                }
            )
