"""Tests for the retry/backoff policy."""

import numpy as np
import pytest

from repro.faults import RetryPolicy


class TestValidation:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_seconds=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_seconds=100.0, max_backoff_seconds=50.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_seconds=0.0)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_backoff_seconds=10.0, backoff_multiplier=2.0, jitter_fraction=0.0
        )
        rng = np.random.default_rng(0)
        assert policy.backoff_seconds(1, rng) == 10.0
        assert policy.backoff_seconds(2, rng) == 20.0
        assert policy.backoff_seconds(3, rng) == 40.0

    def test_backoff_capped(self):
        policy = RetryPolicy(
            base_backoff_seconds=10.0,
            backoff_multiplier=10.0,
            max_backoff_seconds=50.0,
            jitter_fraction=0.0,
        )
        rng = np.random.default_rng(0)
        assert policy.backoff_seconds(5, rng) == 50.0

    def test_jitter_band_and_determinism(self):
        policy = RetryPolicy(base_backoff_seconds=100.0, jitter_fraction=0.1)
        values = [
            policy.backoff_seconds(1, np.random.default_rng(seed))
            for seed in range(50)
        ]
        assert all(90.0 <= v <= 110.0 for v in values)
        assert len(set(round(v, 9) for v in values)) > 1
        # Same rng state, same jitter.
        assert policy.backoff_seconds(
            1, np.random.default_rng(3)
        ) == policy.backoff_seconds(1, np.random.default_rng(3))

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0, np.random.default_rng(0))
