"""End-to-end graceful-degradation tests for the fault-tolerant ensemble."""

import numpy as np
import pytest

from repro.core.ensemble import EQCConfig, EQCEnsemble
from repro.core.objective import EnergyObjective
from repro.core.weighting import BOUNDS_MODERATE
from repro.faults import (
    FaultPlan,
    FleetExhaustedError,
    OutageWindow,
    RetryPolicy,
    WorkerCrash,
)

DEVICES = ("x2", "Belem", "Bogota")


def make_config(**kwargs):
    kwargs.setdefault("device_names", DEVICES)
    kwargs.setdefault("shots", 256)
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("weight_bounds", BOUNDS_MODERATE)
    return EQCConfig(**kwargs)


def train(vqe_problem, config, epochs=2):
    ensemble = EQCEnsemble(EnergyObjective(vqe_problem.estimator), config)
    theta = vqe_problem.random_initial_parameters()
    return ensemble.train(theta, num_epochs=epochs)


def assert_histories_identical(reference, candidate):
    assert len(candidate.records) == len(reference.records)
    for expected, actual in zip(reference.records, candidate.records):
        assert actual.loss == expected.loss
        assert np.array_equal(actual.parameters, expected.parameters)
        assert actual.sim_time_hours == expected.sim_time_hours
        assert actual.weights == expected.weights


CHAOS_PLAN = FaultPlan(
    seed=11,
    transient_failure_rate=0.3,
    outages=(OutageWindow(device="Bogota", start=0.0, permanent=True),),
)


class TestConfigValidation:
    def test_device_faults_with_scheduler_rejected(self):
        with pytest.raises(ValueError, match="inject_outage"):
            make_config(
                fault_plan=FaultPlan(transient_failure_rate=0.1),
                scheduling_policy="fifo",
            )

    def test_device_faults_with_parallel_workers_rejected(self):
        with pytest.raises(ValueError, match="worker_crashes"):
            make_config(
                fault_plan=FaultPlan(transient_failure_rate=0.1), parallel_workers=2
            )

    def test_worker_crashes_require_parallel_workers(self):
        with pytest.raises(ValueError, match="parallel_workers"):
            make_config(fault_plan=FaultPlan(worker_crashes=(WorkerCrash(0, 3),)))

    def test_retry_policy_requires_fault_plan(self):
        with pytest.raises(ValueError, match="retry_policy"):
            make_config(retry_policy=RetryPolicy())

    def test_dispatch_deadline_positive(self):
        with pytest.raises(ValueError):
            make_config(dispatch_deadline=0.0)

    def test_min_live_devices_bounds(self):
        with pytest.raises(ValueError):
            make_config(min_live_devices=0)
        with pytest.raises(ValueError):
            make_config(min_live_devices=len(DEVICES) + 1)

    def test_fault_tolerant_property(self):
        assert not make_config().fault_tolerant
        assert make_config(fault_plan=CHAOS_PLAN).fault_tolerant
        assert make_config(dispatch_deadline=3600.0).fault_tolerant
        assert not make_config(fault_plan=FaultPlan()).fault_tolerant


class TestBitExactWhenDisabled:
    def test_disabled_plan_matches_no_plan(self, vqe_problem):
        baseline = train(vqe_problem, make_config())
        gated = train(vqe_problem, make_config(fault_plan=FaultPlan()))
        assert_histories_identical(baseline, gated)
        # Disabled faults leave the metadata footprint untouched too.
        assert "fleet_events" not in gated.metadata
        assert "provider_faults" not in gated.metadata


class TestGracefulDegradation:
    @pytest.fixture(scope="class")
    def chaos_history(self, vqe_problem):
        return train(vqe_problem, make_config(fault_plan=CHAOS_PLAN))

    def test_training_completes_on_survivors(self, chaos_history):
        assert len(chaos_history.records) == 2
        assert np.isfinite(chaos_history.losses).all()
        assert chaos_history.metadata["live_devices"] == ["x2", "Belem"]

    def test_fleet_shrink_event_recorded(self, chaos_history):
        kinds = [event["kind"] for event in chaos_history.metadata["fleet_events"]]
        assert "job_failure" in kinds
        assert "fleet_shrink" in kinds
        shrink = next(
            event
            for event in chaos_history.metadata["fleet_events"]
            if event["kind"] == "fleet_shrink"
        )
        assert shrink["device"] == "Bogota"
        assert chaos_history.metadata["fault_stats"]["retired_devices"] == 1

    def test_weights_renormalized_over_survivors(self, chaos_history):
        final_weights = chaos_history.records[-1].weights
        assert set(final_weights) == {"client_x2", "client_Belem"}
        # PCorrect weights are normalized to mean 1 over the live fleet.
        assert sum(final_weights.values()) == pytest.approx(len(final_weights))

    def test_fault_metadata_published(self, chaos_history):
        assert chaos_history.metadata["fault_plan"]["transient_failure_rate"] == 0.3
        provider_faults = chaos_history.metadata["provider_faults"]
        assert provider_faults["job_failures"] >= 1
        assert provider_faults["transient_failures"] >= 1

    def test_chaos_run_deterministic(self, vqe_problem, chaos_history):
        repeat = train(vqe_problem, make_config(fault_plan=CHAOS_PLAN))
        assert_histories_identical(chaos_history, repeat)
        assert repeat.metadata["provider_faults"] == (
            chaos_history.metadata["provider_faults"]
        )
        assert repeat.metadata["fleet_events"] == (
            chaos_history.metadata["fleet_events"]
        )
        assert repeat.metadata["breakers"] == chaos_history.metadata["breakers"]

    def test_loss_stays_close_to_fault_free_run(self, vqe_problem, chaos_history):
        baseline = train(vqe_problem, make_config())
        gap = abs(chaos_history.records[-1].loss - baseline.records[-1].loss)
        assert gap < 0.5


class TestFleetExhaustion:
    def test_all_devices_dead_raises(self, vqe_problem):
        plan = FaultPlan(
            outages=tuple(
                OutageWindow(device=name, start=0.0, permanent=True)
                for name in DEVICES
            )
        )
        with pytest.raises(FleetExhaustedError):
            train(vqe_problem, make_config(fault_plan=plan))

    def test_min_live_devices_floor_enforced(self, vqe_problem):
        plan = FaultPlan(
            outages=(OutageWindow(device="Bogota", start=0.0, permanent=True),)
        )
        with pytest.raises(FleetExhaustedError):
            train(vqe_problem, make_config(fault_plan=plan, min_live_devices=3))
