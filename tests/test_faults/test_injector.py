"""Tests for the deterministic fault injector's seeded streams."""

from repro.faults import FaultInjector, FaultPlan, OutageWindow


def make_injector(seed=0, **plan_kwargs):
    plan_kwargs.setdefault("transient_failure_rate", 0.5)
    return FaultInjector(FaultPlan(**plan_kwargs), seed=seed)


class TestStreams:
    def test_same_label_same_stream_instance(self):
        injector = make_injector()
        assert injector.stream("a") is injector.stream("a")

    def test_streams_reproducible_across_injectors(self):
        a = make_injector(seed=7)
        b = make_injector(seed=7)
        assert [a.stream("x").uniform() for _ in range(5)] == [
            b.stream("x").uniform() for _ in range(5)
        ]

    def test_streams_independent_per_label(self):
        injector = make_injector()
        first = [injector.stream("x").uniform() for _ in range(5)]
        # Consuming another label's stream must not shift this one.
        fresh = make_injector()
        for _ in range(100):
            fresh.stream("y").uniform()
        second = [fresh.stream("x").uniform() for _ in range(5)]
        assert first == second

    def test_seed_and_plan_seed_both_matter(self):
        base = make_injector(seed=1).stream("x").uniform()
        assert make_injector(seed=2).stream("x").uniform() != base
        other_plan = FaultInjector(
            FaultPlan(seed=9, transient_failure_rate=0.5), seed=1
        )
        assert other_plan.stream("x").uniform() != base


class TestDecisionDraws:
    def test_zero_rate_never_draws(self):
        injector = FaultInjector(
            FaultPlan(outages=(OutageWindow(device="Belem"),)), seed=0
        )
        for _ in range(10):
            assert not injector.transient_failure("Belem")
            assert injector.result_delay("Belem") == 0.0
        # No decision stream was ever created.
        assert not any("transient" in label for label in injector._streams)
        assert not any("timeout" in label for label in injector._streams)

    def test_transient_rate_approximately_respected(self):
        injector = make_injector(transient_failure_rate=0.3)
        draws = [injector.transient_failure("Belem") for _ in range(2000)]
        assert 0.2 < sum(draws) / len(draws) < 0.4

    def test_per_device_draws_independent(self):
        a = make_injector()
        b = make_injector()
        first = [a.transient_failure("x") for _ in range(20)]
        for _ in range(100):
            b.transient_failure("other")
        second = [b.transient_failure("x") for _ in range(20)]
        assert first == second

    def test_result_delay_size(self):
        injector = FaultInjector(
            FaultPlan(result_timeout_rate=0.999, result_delay_seconds=123.0), seed=0
        )
        assert injector.result_delay("Belem") == 123.0


class TestWindowLookups:
    def test_outage_at(self):
        plan = FaultPlan(
            outages=(OutageWindow(device="Belem", start=10.0, duration=20.0),)
        )
        injector = FaultInjector(plan)
        assert injector.outage_at("Belem", 15.0) is plan.outages[0]
        assert injector.outage_at("Belem", 35.0) is None
        assert injector.outage_at("Bogota", 15.0) is None

    def test_device_dead_only_after_permanent_start(self):
        plan = FaultPlan(
            outages=(OutageWindow(device="Belem", start=100.0, permanent=True),)
        )
        injector = FaultInjector(plan)
        assert not injector.device_dead("Belem", 99.0)
        assert injector.device_dead("Belem", 100.0)
        assert injector.device_dead("Belem", 1e9)

    def test_calibration_blackout_at(self):
        plan = FaultPlan(
            calibration_blackouts=(
                OutageWindow(device="Belem", start=50.0, duration=10.0),
            )
        )
        injector = FaultInjector(plan)
        assert injector.calibration_blackout_at("Belem", 55.0) is not None
        assert injector.calibration_blackout_at("Belem", 65.0) is None
