"""Tests for fault injection on the provider's statistical submit path."""

import numpy as np
import pytest

from repro.circuit import ghz_state
from repro.cloud.provider import CloudProvider
from repro.devices.catalog import build_qpu
from repro.faults import (
    DeviceOutageError,
    FaultInjector,
    FaultPlan,
    JobDeadlineExceeded,
    JobRetriesExhausted,
    OutageWindow,
    RetryPolicy,
)
from repro.transpiler import transpile


@pytest.fixture()
def belem_job_inputs():
    qpu = build_qpu("Belem")
    circuit = ghz_state(4)
    footprint = transpile(circuit, qpu.topology).footprint
    return circuit, footprint


def make_provider(plan=None, retry_policy=None, seed=1):
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    return CloudProvider(
        [build_qpu("Belem"), build_qpu("Bogota")],
        seed=seed,
        shots=256,
        fault_injector=injector,
        retry_policy=retry_policy,
    )


def submit_one(provider, inputs, now=0.0):
    circuit, footprint = inputs
    return provider.submit("Belem", [circuit, circuit], footprint, now=now)


class TestBitExactWhenDisabled:
    def test_disabled_plan_matches_no_plan(self, belem_job_inputs):
        plain = make_provider()
        gated = make_provider(plan=FaultPlan())
        for now in (0.0, 100.0, 5000.0):
            a = submit_one(plain, belem_job_inputs, now=now)
            b = submit_one(gated, belem_job_inputs, now=now)
            assert a.start_time == b.start_time
            assert a.finish_time == b.finish_time
            assert [dict(r.counts) for r in a.results] == [
                dict(r.counts) for r in b.results
            ]

    def test_recovered_job_still_produces_full_results(self, belem_job_inputs):
        # Rate chosen so the Belem transient stream fails at least once but
        # recovers within the retry budget (verified by the retries counter).
        chaotic = make_provider(
            plan=FaultPlan(seed=5, transient_failure_rate=0.45),
            retry_policy=RetryPolicy(max_attempts=10, jitter_fraction=0.0),
        )
        job = submit_one(chaotic, belem_job_inputs)
        assert chaotic.fault_counters["transient_failures"] >= 1
        assert job.attempts > 1
        assert job.status.value == "done"
        assert len(job.results) == 2
        assert all(sum(r.counts.values()) == 256 for r in job.results)


class TestTransientFailures:
    def test_retries_exhausted(self, belem_job_inputs):
        provider = make_provider(
            plan=FaultPlan(transient_failure_rate=0.999),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(JobRetriesExhausted) as excinfo:
            submit_one(provider, belem_job_inputs)
        assert excinfo.value.attempts == 3
        assert excinfo.value.device_name == "Belem"
        assert excinfo.value.detect_time > 0.0
        assert provider.fault_counters["transient_failures"] == 3
        assert provider.fault_counters["retries"] == 2
        assert provider.fault_counters["job_failures"] == 1

    def test_backoff_advances_virtual_time(self, belem_job_inputs):
        policy = RetryPolicy(
            max_attempts=5, base_backoff_seconds=100.0, jitter_fraction=0.0
        )
        provider = make_provider(
            plan=FaultPlan(seed=5, transient_failure_rate=0.45), retry_policy=policy
        )
        job = submit_one(provider, belem_job_inputs)
        retries = provider.fault_counters["retries"]
        assert retries >= 1
        # Every retry pushes the eventual start past at least its backoff.
        assert job.start_time >= 100.0 * retries

    def test_deadline_exceeded_during_backoff(self, belem_job_inputs):
        provider = make_provider(
            plan=FaultPlan(transient_failure_rate=0.999),
            retry_policy=RetryPolicy(
                max_attempts=50, base_backoff_seconds=500.0, deadline_seconds=600.0
            ),
        )
        with pytest.raises(JobDeadlineExceeded) as excinfo:
            submit_one(provider, belem_job_inputs)
        assert excinfo.value.detect_time == 600.0


class TestOutages:
    def test_transient_outage_defers_start(self, belem_job_inputs):
        window = OutageWindow(device="Belem", start=0.0, duration=10_000.0)
        provider = make_provider(plan=FaultPlan(outages=(window,)))
        job = submit_one(provider, belem_job_inputs)
        assert job.start_time >= 10_000.0
        assert provider.fault_counters["outage_deferrals"] == 1
        assert job.status.value == "done"

    def test_permanent_outage_kills_device(self, belem_job_inputs):
        provider = make_provider(
            plan=FaultPlan(
                outages=(OutageWindow(device="Belem", start=0.0, permanent=True),)
            )
        )
        with pytest.raises(DeviceOutageError) as excinfo:
            submit_one(provider, belem_job_inputs)
        assert excinfo.value.permanent
        assert "Belem" in provider.dead_devices
        # Subsequent submissions fast-fail without touching the queue model.
        with pytest.raises(DeviceOutageError):
            submit_one(provider, belem_job_inputs, now=99.0)
        assert provider.fault_counters["job_failures"] == 2

    def test_other_devices_unaffected(self, belem_job_inputs):
        provider = make_provider(
            plan=FaultPlan(
                outages=(OutageWindow(device="Belem", start=0.0, permanent=True),)
            )
        )
        circuit, _ = belem_job_inputs
        qpu = build_qpu("Bogota")
        footprint = transpile(circuit, qpu.topology).footprint
        job = provider.submit("Bogota", [circuit], footprint, now=0.0)
        assert job.status.value == "done"


class TestResultDelays:
    def test_delay_pushes_finish_not_device_clock(self, belem_job_inputs):
        plan = FaultPlan(result_timeout_rate=0.999, result_delay_seconds=1234.0)
        baseline = submit_one(make_provider(), belem_job_inputs)
        provider = make_provider(plan=plan)
        job = submit_one(provider, belem_job_inputs)
        assert job.finish_time == pytest.approx(baseline.finish_time + 1234.0)
        # The hardware freed up when execution ended, not when results landed.
        assert provider._endpoint("Belem").free_at == pytest.approx(
            baseline.finish_time
        )
        assert provider.fault_counters["result_delays"] == 1

    def test_delay_can_blow_results_deadline(self, belem_job_inputs):
        plan = FaultPlan(result_timeout_rate=0.999, result_delay_seconds=50_000.0)
        provider = make_provider(
            plan=plan, retry_policy=RetryPolicy(deadline_seconds=10_000.0)
        )
        with pytest.raises(JobDeadlineExceeded):
            submit_one(provider, belem_job_inputs)
        # The batch still executed: hardware time was spent.
        assert provider._endpoint("Belem").record.jobs_completed == 1


class TestCalibrationBlackouts:
    def test_view_time_freezes_inside_window(self):
        plan = FaultPlan(
            calibration_blackouts=(
                OutageWindow(device="Belem", start=100.0, duration=500.0),
            )
        )
        provider = make_provider(plan=plan)
        assert provider.properties_view_time("Belem", 50.0) == 50.0
        assert provider.properties_view_time("Belem", 300.0) == 100.0
        assert provider.properties_view_time("Belem", 700.0) == 700.0
        assert provider.properties_view_time("Bogota", 300.0) == 300.0
        assert provider.fault_counters["calibration_blackouts"] == 1

    def test_view_time_identity_without_faults(self):
        provider = make_provider()
        assert provider.properties_view_time("Belem", 42.5) == 42.5


class TestConstructionGuards:
    def test_injector_plus_scheduler_rejected(self):
        from repro.sched import CloudScheduler

        plan = FaultPlan(transient_failure_rate=0.1)
        with pytest.raises(ValueError, match="scheduler"):
            CloudProvider(
                [build_qpu("Belem")],
                seed=1,
                scheduler=CloudScheduler(policy="fifo"),
                fault_injector=FaultInjector(plan, seed=1),
            )
