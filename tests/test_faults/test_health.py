"""Tests for the per-device circuit breaker."""

import math

import pytest

from repro.faults import BreakerState, DeviceHealthTracker


def make_tracker(**kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("recovery_seconds", 100.0)
    kwargs.setdefault("probe_successes", 1)
    kwargs.setdefault("max_reopens", 2)
    return DeviceHealthTracker(**kwargs)


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DeviceHealthTracker(failure_threshold=0)
        with pytest.raises(ValueError):
            DeviceHealthTracker(recovery_seconds=0.0)
        with pytest.raises(ValueError):
            DeviceHealthTracker(probe_successes=0)
        with pytest.raises(ValueError):
            DeviceHealthTracker(max_reopens=0)


class TestStateMachine:
    def test_closed_until_threshold(self):
        tracker = make_tracker()
        tracker.record_failure("Belem", 1.0)
        tracker.record_failure("Belem", 2.0)
        assert tracker.state("Belem") is BreakerState.CLOSED
        assert tracker.allow("Belem", 3.0)
        tracker.record_failure("Belem", 3.0)
        assert tracker.state("Belem") is BreakerState.OPEN
        assert not tracker.allow("Belem", 3.0)

    def test_success_resets_consecutive_failures(self):
        tracker = make_tracker()
        tracker.record_failure("Belem", 1.0)
        tracker.record_failure("Belem", 2.0)
        tracker.record_success("Belem", 3.0)
        tracker.record_failure("Belem", 4.0)
        tracker.record_failure("Belem", 5.0)
        assert tracker.state("Belem") is BreakerState.CLOSED

    def test_open_to_half_open_after_recovery(self):
        tracker = make_tracker()
        for t in (1.0, 2.0, 3.0):
            tracker.record_failure("Belem", t)
        assert tracker.retry_at("Belem") == 103.0
        assert not tracker.allow("Belem", 50.0)
        assert tracker.allow("Belem", 103.0)  # the probe
        assert tracker.state("Belem") is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        tracker = make_tracker()
        for t in (1.0, 2.0, 3.0):
            tracker.record_failure("Belem", t)
        tracker.allow("Belem", 200.0)
        tracker.record_success("Belem", 210.0)
        assert tracker.state("Belem") is BreakerState.CLOSED
        assert tracker.allow("Belem", 211.0)

    def test_probe_failure_reopens(self):
        tracker = make_tracker()
        for t in (1.0, 2.0, 3.0):
            tracker.record_failure("Belem", t)
        tracker.allow("Belem", 200.0)
        tracker.record_failure("Belem", 210.0)
        assert tracker.state("Belem") is BreakerState.OPEN
        assert tracker.retry_at("Belem") == 310.0

    def test_max_reopens_marks_dead(self):
        tracker = make_tracker(max_reopens=2)
        for t in (1.0, 2.0, 3.0):
            tracker.record_failure("Belem", t)
        # Two probe failures exhaust max_reopens.
        tracker.allow("Belem", 200.0)
        tracker.record_failure("Belem", 210.0)
        assert not tracker.is_dead("Belem")
        tracker.allow("Belem", 400.0)
        tracker.record_failure("Belem", 410.0)
        assert tracker.is_dead("Belem")
        assert not tracker.allow("Belem", 1e9)
        assert math.isinf(tracker.retry_at("Belem"))

    def test_mark_dead_direct(self):
        tracker = make_tracker()
        tracker.mark_dead("Belem", 5.0, reason="permanent outage")
        assert tracker.is_dead("Belem")
        assert not tracker.allow("Belem", 1e9)
        assert tracker.live_devices(["Belem", "Bogota"]) == ["Bogota"]


class TestTransitionLog:
    def test_full_sequence_recorded(self):
        tracker = make_tracker()
        for t in (1.0, 2.0, 3.0):
            tracker.record_failure("Belem", t)
        tracker.allow("Belem", 150.0)
        tracker.record_success("Belem", 160.0)
        sequence = [(t.from_state, t.to_state) for t in tracker.transitions]
        assert sequence == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert tracker.transitions[0].time == 3.0

    def test_summary_is_json_friendly(self):
        import json

        tracker = make_tracker()
        tracker.record_failure("Belem", 1.0)
        tracker.mark_dead("Bogota", 2.0)
        summary = tracker.summary()
        json.dumps(summary)
        assert summary["devices"]["Bogota"]["dead"]
        assert summary["devices"]["Belem"]["failures_total"] == 1
