"""Tests for the declarative fault-plan data model."""

import math

import pytest

from repro.faults import FaultPlan, OutageWindow, WorkerCrash


class TestOutageWindow:
    def test_permanent_normalizes_to_infinite_duration(self):
        window = OutageWindow(device="Belem", start=10.0, duration=50.0, permanent=True)
        assert math.isinf(window.duration)
        assert math.isinf(window.end)

    def test_infinite_duration_normalizes_to_permanent(self):
        window = OutageWindow(device="Belem", start=0.0)
        assert window.permanent

    def test_covers_is_half_open(self):
        window = OutageWindow(device="Belem", start=10.0, duration=20.0)
        assert not window.covers(9.99)
        assert window.covers(10.0)
        assert window.covers(29.99)
        assert not window.covers(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(device="")
        with pytest.raises(ValueError):
            OutageWindow(device="Belem", start=-1.0)
        with pytest.raises(ValueError):
            OutageWindow(device="Belem", duration=0.0)


class TestWorkerCrash:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerCrash(worker_id=-1, after_jobs=1)
        with pytest.raises(ValueError):
            WorkerCrash(worker_id=0, after_jobs=0)


class TestFaultPlan:
    def test_empty_plan_is_disabled(self):
        plan = FaultPlan()
        assert not plan.enabled
        assert not plan.has_device_faults

    def test_any_device_fault_enables(self):
        assert FaultPlan(transient_failure_rate=0.1).enabled
        assert FaultPlan(result_timeout_rate=0.1).enabled
        assert FaultPlan(outages=(OutageWindow(device="Belem"),)).enabled
        assert FaultPlan(
            calibration_blackouts=(OutageWindow(device="Belem", duration=10.0),)
        ).enabled

    def test_worker_crashes_enable_without_device_faults(self):
        plan = FaultPlan(worker_crashes=(WorkerCrash(0, 3),))
        assert plan.enabled
        assert not plan.has_device_faults

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(result_timeout_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(result_delay_seconds=0.0)

    def test_duplicate_crash_points_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(worker_crashes=(WorkerCrash(0, 3), WorkerCrash(0, 3)))

    def test_crash_points_for_sorted_per_worker(self):
        plan = FaultPlan(
            worker_crashes=(WorkerCrash(1, 7), WorkerCrash(0, 5), WorkerCrash(1, 2))
        )
        assert plan.crash_points_for(0) == (5,)
        assert plan.crash_points_for(1) == (2, 7)
        assert plan.crash_points_for(2) == ()

    def test_describe_round_trips_to_json_types(self):
        import json

        plan = FaultPlan(
            seed=3,
            outages=(OutageWindow(device="Belem", start=5.0, duration=10.0),),
            transient_failure_rate=0.2,
            worker_crashes=(WorkerCrash(0, 3),),
        )
        described = plan.describe()
        assert described["transient_failure_rate"] == 0.2
        assert described["outages"][0]["device"] == "Belem"
        json.dumps(described)  # must be JSON-serializable

    def test_collections_accept_lists(self):
        plan = FaultPlan(outages=[OutageWindow(device="Belem")])
        assert isinstance(plan.outages, tuple)
