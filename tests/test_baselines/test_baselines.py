"""Tests for the ideal-simulator and single-device baselines."""

import numpy as np
import pytest

from repro.baselines.ideal import IdealTrainer
from repro.baselines.single_device import DEFAULT_TERMINATION_HOURS, SingleDeviceTrainer
from repro.cloud.queueing import QueueModel
from repro.core.objective import EnergyObjective


class TestIdealTrainer:
    def test_history_structure(self, vqe_problem):
        trainer = IdealTrainer(vqe_problem.estimator, shots=256, seed=0)
        history = trainer.train(vqe_problem.random_initial_parameters(), num_epochs=3)
        assert len(history) == 3
        assert history.label == "ideal_simulator"
        assert history.total_updates == 3 * 16

    def test_exact_mode_decreases_loss_monotonically_early(self, vqe_problem):
        trainer = IdealTrainer(vqe_problem.estimator, exact=True)
        history = trainer.train(vqe_problem.random_initial_parameters(), num_epochs=6)
        assert history.losses[-1] < history.losses[0]

    def test_sampled_mode_close_to_exact_mode(self, vqe_problem):
        theta = vqe_problem.random_initial_parameters()
        exact = IdealTrainer(vqe_problem.estimator, exact=True).train(theta, num_epochs=4)
        sampled = IdealTrainer(vqe_problem.estimator, shots=8192, seed=1).train(theta, num_epochs=4)
        assert sampled.losses[-1] == pytest.approx(exact.losses[-1], abs=0.5)

    def test_record_every(self, vqe_problem):
        trainer = IdealTrainer(vqe_problem.estimator, exact=True)
        history = trainer.train(vqe_problem.random_initial_parameters(), 4, record_every=2)
        assert list(history.epochs) == [2, 4]

    def test_invalid_epochs(self, vqe_problem):
        with pytest.raises(ValueError):
            IdealTrainer(vqe_problem.estimator).train([0.0] * 16, num_epochs=0)

    def test_qaoa_training_improves_cost(self, qaoa_problem):
        trainer = IdealTrainer(qaoa_problem.estimator, exact=True, learning_rate=0.2)
        theta = qaoa_problem.random_initial_parameters()
        history = trainer.train(theta, num_epochs=20)
        assert history.losses[-1] < qaoa_problem.energy(theta)


class TestSingleDeviceTrainer:
    def test_history_records_device(self, vqe_problem):
        trainer = SingleDeviceTrainer(
            EnergyObjective(vqe_problem.estimator), "Belem", shots=256, seed=0
        )
        history = trainer.train(vqe_problem.random_initial_parameters(), num_epochs=2)
        assert history.device_names == ("Belem",)
        assert history.label == "single[Belem]"
        assert len(history) == 2
        assert history.total_hours() > 0

    def test_termination_after_wall_clock_budget(self, vqe_problem):
        """A crawling device must be cut off like the paper's 2-week rule."""
        slow_queue = QueueModel(mean_wait_seconds=30000.0, sigma=0.1, popularity=0.9)
        trainer = SingleDeviceTrainer(
            EnergyObjective(vqe_problem.estimator),
            "Belem",
            shots=128,
            seed=0,
            max_wall_hours=20.0,
            queue_model=slow_queue,
        )
        history = trainer.train(vqe_problem.random_initial_parameters(), num_epochs=50)
        assert history.terminated_early
        assert len(history) < 50
        assert "20" in history.termination_reason

    def test_default_termination_matches_paper(self):
        assert DEFAULT_TERMINATION_HOURS == pytest.approx(336.0)

    def test_loss_improves_on_clean_device(self, vqe_problem):
        trainer = SingleDeviceTrainer(
            EnergyObjective(vqe_problem.estimator), "Bogota", shots=512, seed=3
        )
        theta = vqe_problem.random_initial_parameters()
        history = trainer.train(theta, num_epochs=4)
        assert history.losses[-1] < vqe_problem.energy(theta)

    def test_invalid_epochs(self, vqe_problem):
        trainer = SingleDeviceTrainer(EnergyObjective(vqe_problem.estimator), "Belem")
        with pytest.raises(ValueError):
            trainer.train([0.0] * 16, num_epochs=0)
