"""Multiprocess ensemble execution: spawn-safety and bit-exactness.

Two pillars keep ``parallel_workers`` honest:

* every payload that crosses the process boundary (QPU specs, compiled
  programs, program caches, circuits with symbolic parameters, the worker
  context itself) must survive a pickle round-trip unchanged, and
* a parallel training run must reproduce the sequential run *bit for bit* —
  same losses, parameters, simulated timeline, weights, and utilization —
  because workers replay each device's seeded streams exactly.
"""

import pickle

import numpy as np
import pytest

from repro.circuit import hardware_efficient_ansatz
from repro.circuit.parameters import Parameter
from repro.core import EQCConfig, EQCEnsemble
from repro.core.objective import EnergyObjective
from repro.devices import build_qpu
from repro.engine import ProgramCache, compile_circuit, execute_program
from repro.execution import ParallelEnsembleExecutor, WorkerContext
from repro.hamiltonian.expectation import EnergyEstimator
from repro.simulator.statevector import simulate_statevector


class TestSpawnSafety:
    """Pickle round-trips for everything shipped to worker processes."""

    def test_qpu_round_trip(self):
        qpu = build_qpu("Belem")
        # Advance the drift stream and warm the memo caches so the round
        # trip has real state to preserve (and caches to drop).
        qpu.reported_calibration(3600.0)
        qpu.job_duration_seconds(7200.0)
        assert qpu._reported_cache or qpu._cycle_stats

        clone = pickle.loads(pickle.dumps(qpu))
        assert clone.spec == qpu.spec
        assert clone.name == qpu.name
        # Memo caches are dropped (they rebuild identically on demand)...
        assert clone._reported_cache == {}
        assert clone._cycle_stats == {}
        # ...but the RNG stream transfers exactly, so both devices produce
        # the same calibrations and durations from here on.
        assert clone._rng.bit_generator.state == qpu._rng.bit_generator.state
        t = 3 * 86400.0
        assert clone.job_duration_seconds(t) == qpu.job_duration_seconds(t)
        assert clone.reported_calibration(t) == qpu.reported_calibration(t)

    def test_gate_program_round_trip(self):
        circuit = hardware_efficient_ansatz(4)
        program = compile_circuit(circuit)
        clone = pickle.loads(pickle.dumps(program))
        assert clone.num_qubits == program.num_qubits
        assert clone.num_slots == program.num_slots
        thetas = np.random.default_rng(5).uniform(
            -np.pi, np.pi, (3, program.num_slots)
        )
        assert np.array_equal(
            execute_program(program, thetas), execute_program(clone, thetas)
        )

    def test_program_cache_round_trip(self):
        cache = ProgramCache()
        circuit = hardware_efficient_ansatz(3)
        program = cache.get_or_compile(circuit)
        cache.plan_for(circuit, program)  # populate the identity-keyed plans
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == len(cache) == 1
        assert (clone.hits, clone.misses) == (cache.hits, cache.misses)
        # Compiled entries transferred: same structure hits the cache.
        before = clone.hits
        clone.get_or_compile(hardware_efficient_ansatz(3))
        assert clone.hits == before + 1
        # Plans were identity-keyed and re-memoize from scratch.
        assert clone.plan_for(circuit) is not None

    def test_parameterized_circuit_round_trip(self):
        circuit = hardware_efficient_ansatz(3)
        clone = pickle.loads(pickle.dumps(circuit))
        names = [p.name for p in circuit.ordered_parameters()]
        assert [p.name for p in clone.ordered_parameters()] == names
        values = np.random.default_rng(2).uniform(-1, 1, len(names))
        state = simulate_statevector(
            circuit, dict(zip(circuit.ordered_parameters(), values))
        )
        clone_state = simulate_statevector(
            clone, dict(zip(clone.ordered_parameters(), values))
        )
        assert np.array_equal(state.data, clone_state.data)

    def test_parameter_identity_survives_within_one_pickle(self):
        p = Parameter("theta")
        a, b = pickle.loads(pickle.dumps((p, p)))
        assert a is b

    def test_worker_context_round_trip(self, vqe_problem):
        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        context = WorkerContext(
            objective=EnergyObjective(estimator),
            qpu_specs=(build_qpu("x2").spec, build_qpu("Belem").spec),
            client_names=("client_x2", "client_Belem"),
            queue_models=None,
            seed=3,
            shots=128,
            worker_id=0,
        )
        clone = pickle.loads(pickle.dumps(context))
        assert clone.qpu_specs == context.qpu_specs
        assert clone.client_names == context.client_names
        assert clone.shots == 128


class TestCircuitsPerJob:
    """The timing preview relies on ``circuits_per_job`` matching reality."""

    def test_energy_objective(self, vqe_problem):
        from repro.vqa.tasks import GradientTask

        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        objective = EnergyObjective(estimator)
        task = GradientTask(task_id=0, parameter_index=1)
        job = objective.build_job(task, np.zeros(estimator.num_parameters))
        assert objective.circuits_per_job(task) == len(job.circuits)

    def test_qnn_objective(self):
        from repro.core.objective import QnnObjective
        from repro.vqa.qnn import QNNProblem, make_synthetic_dataset
        from repro.vqa.tasks import GradientTask

        problem = QNNProblem("qnn", make_synthetic_dataset(4, seed=3), num_qubits=4)
        objective = QnnObjective(problem)
        task = GradientTask(task_id=0, parameter_index=0, data_index=2)
        job = objective.build_job(task, [0.1] * problem.num_parameters)
        assert objective.circuits_per_job(task) == len(job.circuits)


def _train(problem, *, workers, start_method=None, epochs=2):
    estimator = EnergyEstimator(problem.ansatz, problem.hamiltonian)
    config = EQCConfig(
        device_names=("x2", "Belem", "Bogota"),
        shots=256,
        seed=1,
        parallel_workers=workers,
        parallel_start_method=start_method,
    )
    ensemble = EQCEnsemble.for_estimator(estimator, config)
    theta0 = np.zeros(estimator.num_parameters)
    return ensemble.train(theta0, num_epochs=epochs)


def _assert_histories_identical(reference, candidate):
    assert len(candidate.records) == len(reference.records)
    for expected, actual in zip(reference.records, candidate.records):
        assert actual.loss == expected.loss
        assert np.array_equal(actual.parameters, expected.parameters)
        assert actual.sim_time_hours == expected.sim_time_hours
        assert actual.weights == expected.weights
    assert candidate.total_updates == reference.total_updates
    assert candidate.total_jobs == reference.total_jobs
    assert candidate.metadata["utilization"] == reference.metadata["utilization"]
    assert (
        candidate.metadata["circuits_executed"]
        == reference.metadata["circuits_executed"]
    )
    assert candidate.metadata["mean_staleness"] == reference.metadata["mean_staleness"]


class TestParallelBitExactness:
    @pytest.fixture(scope="class")
    def sequential_history(self, vqe_problem):
        return _train(vqe_problem, workers=0)

    def test_two_workers_match_sequential(self, vqe_problem, sequential_history):
        parallel = _train(vqe_problem, workers=2)
        _assert_histories_identical(sequential_history, parallel)
        assert parallel.metadata["parallel_workers"] == 2

    def test_spawn_start_method_matches_sequential(
        self, vqe_problem, sequential_history
    ):
        parallel = _train(vqe_problem, workers=2, start_method="spawn")
        _assert_histories_identical(sequential_history, parallel)

    def test_single_worker_pool_matches_sequential(
        self, vqe_problem, sequential_history
    ):
        # parallel_workers=2 with more workers than devices would also clamp;
        # here every device lands in one worker process.
        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        config = EQCConfig(
            device_names=("x2", "Belem", "Bogota"),
            shots=256,
            seed=1,
            parallel_workers=3,
        )
        ensemble = EQCEnsemble.for_estimator(estimator, config)
        history = ensemble.train(
            np.zeros(estimator.num_parameters), num_epochs=2
        )
        _assert_histories_identical(sequential_history, history)


class TestExecutorMechanics:
    def test_worker_count_clamped_to_fleet(self, vqe_problem):
        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        qpus = [build_qpu("x2"), build_qpu("Belem")]
        with ParallelEnsembleExecutor(
            EnergyObjective(estimator), qpus, num_workers=8, shots=64, seed=0
        ) as executor:
            assert executor.num_workers == 2
            report = executor.utilization_report()
        assert list(report.keys()) == ["x2", "Belem"]

    def test_unknown_device_rejected(self, vqe_problem):
        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        with ParallelEnsembleExecutor(
            EnergyObjective(estimator),
            [build_qpu("x2")],
            num_workers=1,
            shots=64,
        ) as executor:
            with pytest.raises(KeyError):
                executor.submit("nope", None, np.zeros(1), 0.0, 0)

    def test_shutdown_is_idempotent(self, vqe_problem):
        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        executor = ParallelEnsembleExecutor(
            EnergyObjective(estimator), [build_qpu("x2")], num_workers=1, shots=64
        )
        executor.shutdown()
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.collect(0)


class TestConfigValidation:
    def test_tenant_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="tenant_jobs_per_hour"):
            EQCConfig(tenant_jobs_per_hour=0.0)
        with pytest.raises(ValueError, match="tenant_jobs_per_hour"):
            EQCConfig(tenant_jobs_per_hour=-2.0)

    def test_parallel_workers_must_be_non_negative(self):
        with pytest.raises(ValueError, match="parallel_workers"):
            EQCConfig(parallel_workers=-1)

    def test_start_method_validated(self):
        with pytest.raises(ValueError, match="parallel_start_method"):
            EQCConfig(parallel_start_method="threads")
        EQCConfig(parallel_start_method="spawn")  # accepted

    def test_parallel_rejected_with_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            EQCConfig(parallel_workers=2, background_tenants=4)
        # Sequential execution with the scheduler stays allowed.
        EQCConfig(parallel_workers=1, background_tenants=4)

    def test_record_every_validated_in_train(self, vqe_problem):
        estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
        ensemble = EQCEnsemble.for_estimator(
            estimator,
            EQCConfig(device_names=("x2",), shots=64, seed=0),
        )
        with pytest.raises(ValueError, match="record_every"):
            ensemble.train(
                np.zeros(estimator.num_parameters), num_epochs=1, record_every=0
            )
