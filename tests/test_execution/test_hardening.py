"""Hardening of the parallel executor: structured errors, timeouts, crashes."""

import os
import signal

import numpy as np
import pytest

from repro.core import EQCConfig, EQCEnsemble
from repro.core.objective import EnergyObjective
from repro.devices import build_qpu
from repro.execution import ParallelEnsembleExecutor, WorkerJobError
from repro.faults import FaultPlan, WorkerCrash
from repro.hamiltonian.expectation import EnergyEstimator
from repro.vqa.tasks import GradientTask


def make_executor(vqe_problem, **kwargs):
    estimator = EnergyEstimator(vqe_problem.ansatz, vqe_problem.hamiltonian)
    kwargs.setdefault("num_workers", 1)
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("shots", 128)
    return ParallelEnsembleExecutor(
        EnergyObjective(estimator), [build_qpu("x2")], **kwargs
    )


def num_parameters(vqe_problem):
    return EnergyEstimator(
        vqe_problem.ansatz, vqe_problem.hamiltonian
    ).num_parameters


class TestConstructionGuards:
    def test_response_timeout_must_be_positive(self, vqe_problem):
        with pytest.raises(ValueError, match="response_timeout_seconds"):
            make_executor(vqe_problem, response_timeout_seconds=0.0)

    def test_crash_target_must_be_in_pool(self, vqe_problem):
        with pytest.raises(ValueError, match="crash targets worker"):
            make_executor(
                vqe_problem,
                fault_plan=FaultPlan(worker_crashes=(WorkerCrash(5, 1),)),
            )


class TestStructuredJobErrors:
    def test_worker_exception_reraised_with_coordinates(self, vqe_problem):
        executor = make_executor(vqe_problem)
        theta = np.zeros(num_parameters(vqe_problem))
        bad_task = GradientTask(task_id=0, parameter_index=10_000)
        try:
            with pytest.raises(WorkerJobError) as excinfo:
                job_id, _, _ = executor.submit("x2", bad_task, theta, 0.0, 0)
                executor.collect(job_id)
            assert excinfo.value.worker_id == 0
            assert excinfo.value.job_id >= 0
            assert excinfo.value.exc_type
            # The worker-side traceback rides along in the message.
            assert "Traceback" in str(excinfo.value)
        finally:
            executor.shutdown()

    def test_healthy_job_unaffected(self, vqe_problem):
        executor = make_executor(vqe_problem)
        theta = np.zeros(num_parameters(vqe_problem))
        task = GradientTask(task_id=0, parameter_index=0)
        try:
            job_id, finish_time, num_circuits = executor.submit(
                "x2", task, theta, 0.0, 0
            )
            outcome = executor.collect(job_id)
            assert finish_time > 0.0
            assert num_circuits >= 1
            assert outcome.finish_time == finish_time
        finally:
            executor.shutdown()


class TestUnresponsiveWorkers:
    def test_timeout_names_what_the_master_waited_for(self, vqe_problem):
        executor = make_executor(vqe_problem, response_timeout_seconds=1.0)
        theta = np.zeros(num_parameters(vqe_problem))
        task = GradientTask(task_id=0, parameter_index=0)
        process = executor._processes[0]
        try:
            os.kill(process.pid, signal.SIGSTOP)
            with pytest.raises(RuntimeError, match="worker unresponsive"):
                executor.submit("x2", task, theta, 0.0, 0)
            with pytest.raises(RuntimeError, match="timing preview from worker 0"):
                executor.submit("x2", task, theta, 1.0, 0)
        finally:
            os.kill(process.pid, signal.SIGCONT)
            executor.shutdown()

    def test_uninjected_death_is_fatal_and_named(self, vqe_problem):
        executor = make_executor(vqe_problem)
        theta = np.zeros(num_parameters(vqe_problem))
        task = GradientTask(task_id=0, parameter_index=0)
        try:
            process = executor._processes[0]
            process.kill()
            process.join(timeout=10.0)
            with pytest.raises(RuntimeError, match="parallel worker 0 died"):
                executor.submit("x2", task, theta, 0.0, 0)
        finally:
            executor.shutdown()


class TestCrashRecovery:
    def _train(self, problem, *, workers, fault_plan=None, epochs=2):
        estimator = EnergyEstimator(problem.ansatz, problem.hamiltonian)
        config = EQCConfig(
            device_names=("x2", "Belem", "Bogota"),
            shots=256,
            seed=1,
            parallel_workers=workers,
            fault_plan=fault_plan,
        )
        ensemble = EQCEnsemble.for_estimator(estimator, config)
        theta0 = np.zeros(estimator.num_parameters)
        return ensemble.train(theta0, num_epochs=epochs)

    def test_injected_crash_respawns_and_stays_bit_exact(self, vqe_problem):
        reference = self._train(vqe_problem, workers=0)
        plan = FaultPlan(worker_crashes=(WorkerCrash(0, 3),))
        recovered = self._train(vqe_problem, workers=2, fault_plan=plan)
        assert recovered.metadata["worker_crashes"] == [
            {"worker_id": 0, "after_jobs": 3}
        ]
        assert len(recovered.records) == len(reference.records)
        for expected, actual in zip(reference.records, recovered.records):
            assert actual.loss == expected.loss
            assert np.array_equal(actual.parameters, expected.parameters)
            assert actual.sim_time_hours == expected.sim_time_hours
            assert actual.weights == expected.weights
        assert (
            recovered.metadata["utilization"] == reference.metadata["utilization"]
        )
