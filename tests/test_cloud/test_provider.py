"""Tests for the cloud provider's queueing and execution behaviour."""

import numpy as np
import pytest

from repro.circuit import ghz_state
from repro.cloud.provider import CloudProvider
from repro.cloud.queueing import QueueModel
from repro.devices.catalog import build_qpu
from repro.transpiler import transpile


@pytest.fixture()
def provider():
    return CloudProvider([build_qpu("Belem"), build_qpu("Bogota")], seed=1, shots=256)


@pytest.fixture()
def belem_job_inputs():
    qpu = build_qpu("Belem")
    circuit = ghz_state(4)
    footprint = transpile(circuit, qpu.topology).footprint
    return circuit, footprint


class TestProviderConstruction:
    def test_requires_devices(self):
        with pytest.raises(ValueError):
            CloudProvider([])

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError):
            CloudProvider([build_qpu("Belem"), build_qpu("Belem")])

    def test_device_names(self, provider):
        assert provider.device_names == ("Belem", "Bogota")

    def test_qpu_lookup(self, provider):
        assert provider.qpu("Bogota").name == "Bogota"
        with pytest.raises(KeyError):
            provider.qpu("nope")


class TestSubmission:
    def test_job_lifecycle(self, provider, belem_job_inputs):
        circuit, footprint = belem_job_inputs
        job = provider.submit("Belem", [circuit, circuit], footprint, now=0.0)
        assert job.status.value == "done"
        assert len(job.results) == 2
        assert job.finish_time > job.start_time >= job.submit_time
        assert job.results[0].counts.shots == 256

    def test_empty_job_rejected(self, provider, belem_job_inputs):
        _, footprint = belem_job_inputs
        with pytest.raises(ValueError):
            provider.submit("Belem", [], footprint, now=0.0)

    def test_serial_queue_orders_jobs(self, provider, belem_job_inputs):
        circuit, footprint = belem_job_inputs
        first = provider.submit("Belem", [circuit], footprint, now=0.0)
        second = provider.submit("Belem", [circuit], footprint, now=0.0)
        assert second.start_time >= first.finish_time

    def test_devices_queue_independently(self, provider, belem_job_inputs):
        circuit, _ = belem_job_inputs
        belem_fp = transpile(circuit, build_qpu("Belem").topology).footprint
        bogota_fp = transpile(circuit, build_qpu("Bogota").topology).footprint
        a = provider.submit("Belem", [circuit], belem_fp, now=0.0)
        b = provider.submit("Bogota", [circuit], bogota_fp, now=0.0)
        # Bogota's start is not pushed behind Belem's job
        assert b.start_time < a.finish_time + provider.qpu("Bogota").spec.base_job_seconds * 10

    def test_custom_shots(self, provider, belem_job_inputs):
        circuit, footprint = belem_job_inputs
        job = provider.submit("Belem", [circuit], footprint, now=0.0, shots=64)
        assert job.results[0].counts.shots == 64

    def test_queue_wait_reflected_in_job(self, belem_job_inputs):
        circuit, footprint = belem_job_inputs
        slow_queue = {"Belem": QueueModel(mean_wait_seconds=500.0, sigma=0.1, popularity=0.9)}
        provider = CloudProvider([build_qpu("Belem")], queue_models=slow_queue, seed=0)
        job = provider.submit("Belem", [circuit], footprint, now=0.0)
        assert job.queue_seconds > 100.0

    def test_unknown_device_rejected(self, provider, belem_job_inputs):
        circuit, footprint = belem_job_inputs
        with pytest.raises(KeyError):
            provider.submit("Quito", [circuit], footprint, now=0.0)


class TestUtilization:
    def test_report_tracks_jobs(self, provider, belem_job_inputs):
        circuit, footprint = belem_job_inputs
        for _ in range(3):
            provider.submit("Belem", [circuit], footprint, now=0.0)
        report = provider.utilization_report()
        assert report["Belem"]["jobs_completed"] == 3.0
        assert report["Belem"]["busy_seconds"] > 0
        assert report["Bogota"]["jobs_completed"] == 0.0

    def test_utilization_fraction_bounded(self, provider, belem_job_inputs):
        circuit, footprint = belem_job_inputs
        provider.submit("Belem", [circuit], footprint, now=0.0)
        report = provider.utilization_report(horizon_seconds=1e9)
        assert 0.0 <= report["Belem"]["utilization"] <= 1.0

    def test_imbalance_is_visible(self, provider, belem_job_inputs):
        """Submitting everything to one device shows the utilization imbalance
        the paper motivates EQC with."""
        circuit, footprint = belem_job_inputs
        for _ in range(5):
            provider.submit("Belem", [circuit], footprint, now=0.0)
        report = provider.utilization_report()
        assert report["Belem"]["busy_seconds"] > report["Bogota"]["busy_seconds"]
