"""Tests for the queue/congestion models."""

import numpy as np
import pytest

from repro.cloud.queueing import DEFAULT_QUEUE_MODELS, QueueModel, queue_model_for


class TestQueueModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueueModel(mean_wait_seconds=-1.0)
        with pytest.raises(ValueError):
            QueueModel(popularity=1.5)
        with pytest.raises(ValueError):
            QueueModel(diurnal_amplitude=2.0)

    def test_congestion_factor_positive(self):
        model = QueueModel(popularity=0.9, diurnal_amplitude=0.5)
        for hour in range(0, 48, 3):
            assert model.congestion_factor(hour * 3600.0) > 0

    def test_popular_devices_are_more_congested(self):
        quiet = QueueModel(popularity=0.1, diurnal_amplitude=0.0)
        busy = QueueModel(popularity=0.9, diurnal_amplitude=0.0)
        assert busy.congestion_factor(0.0) > quiet.congestion_factor(0.0)

    def test_diurnal_variation(self):
        model = QueueModel(popularity=0.5, diurnal_amplitude=0.5)
        factors = [model.congestion_factor(h * 3600.0) for h in range(24)]
        assert max(factors) > min(factors)

    def test_sample_wait_zero_mean(self):
        model = QueueModel(mean_wait_seconds=0.0)
        assert model.sample_wait(0.0, np.random.default_rng(0)) == 0.0

    def test_sample_wait_scales_with_mean(self):
        rng = np.random.default_rng(1)
        short = QueueModel(mean_wait_seconds=10.0, sigma=0.3, popularity=0.5)
        long = QueueModel(mean_wait_seconds=1000.0, sigma=0.3, popularity=0.5)
        short_mean = np.mean([short.sample_wait(0.0, rng) for _ in range(200)])
        long_mean = np.mean([long.sample_wait(0.0, rng) for _ in range(200)])
        assert long_mean > 10 * short_mean

    def test_sample_wait_nonnegative(self):
        model = QueueModel()
        rng = np.random.default_rng(2)
        assert all(model.sample_wait(t, rng) >= 0 for t in range(0, 100000, 7919))

    def test_congestion_factor_bounds_over_full_day(self):
        """A fine-grained 24h sweep stays within the documented envelope:
        at least 0.25, at most (1 + amplitude) * (0.5 + popularity)."""
        for popularity in (0.0, 0.35, 0.95):
            for amplitude in (0.0, 0.4, 1.0):
                model = QueueModel(popularity=popularity, diurnal_amplitude=amplitude)
                ceiling = (1.0 + amplitude) * (0.5 + popularity)
                for minute in range(0, 24 * 60, 10):
                    factor = model.congestion_factor(minute * 60.0)
                    assert 0.25 <= factor <= ceiling + 1e-12

    def test_congestion_factor_is_24h_periodic(self):
        model = QueueModel(popularity=0.6, diurnal_amplitude=0.5)
        day = 24 * 3600.0
        for t in (0.0, 3 * 3600.0, 17.25 * 3600.0):
            assert model.congestion_factor(t) == pytest.approx(
                model.congestion_factor(t + day)
            )

    def test_sample_wait_deterministic_under_fixed_seed(self):
        model = QueueModel(mean_wait_seconds=120.0, sigma=0.7, popularity=0.6)
        times = [0.0, 3600.0, 40000.0, 90000.0]
        first = [model.sample_wait(t, np.random.default_rng(77)) for t in times]
        second = [model.sample_wait(t, np.random.default_rng(77)) for t in times]
        assert first == second
        # and the draw sequence matters: one shared generator advances state
        rng = np.random.default_rng(77)
        chained = [model.sample_wait(t, rng) for t in times]
        assert chained[0] == first[0]
        assert chained[1:] != first[1:]


class TestDefaultModels:
    def test_all_catalog_devices_have_models(self):
        from repro.devices.catalog import TABLE_I

        assert set(TABLE_I.keys()) <= set(DEFAULT_QUEUE_MODELS.keys())

    def test_unknown_device_gets_fallback(self):
        assert queue_model_for("nonexistent") is not None

    def test_fallback_is_the_shared_generic_model(self):
        fallback = queue_model_for("nonexistent")
        assert fallback == QueueModel()
        # the fallback is one shared instance, not re-built per lookup
        assert queue_model_for("also-unknown") is fallback
        # known devices never fall through to it
        assert queue_model_for("Belem") is DEFAULT_QUEUE_MODELS["Belem"]

    def test_congested_devices_wait_longer(self):
        assert (
            DEFAULT_QUEUE_MODELS["Manhattan"].mean_wait_seconds
            > DEFAULT_QUEUE_MODELS["Santiago"].mean_wait_seconds
            > DEFAULT_QUEUE_MODELS["Belem"].mean_wait_seconds
        )
