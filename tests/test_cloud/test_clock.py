"""Tests for the virtual clock."""

import pytest

from repro.cloud.clock import SECONDS_PER_HOUR, VirtualClock, hours, seconds_to_hours


class TestConversions:
    def test_hours_round_trip(self):
        assert hours(2.5) == pytest.approx(9000.0)
        assert seconds_to_hours(hours(2.5)) == pytest.approx(2.5)

    def test_constant(self):
        assert SECONDS_PER_HOUR == 3600.0


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(100.0).now == pytest.approx(100.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(10.0)
        clock.advance(5.0)
        assert clock.now == pytest.approx(15.0)

    def test_cannot_run_backwards(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(50.0)
        assert clock.now == pytest.approx(50.0)
        clock.advance_to(20.0)  # no-op when in the past
        assert clock.now == pytest.approx(50.0)

    def test_advance_to_past_is_documented_noop(self):
        """Sleep-until contract the event kernel depends on: a past (or
        equal) timestamp never raises, never rewinds, and returns the
        unchanged current time (see repro.sched.kernel — late-replayed EQC
        submissions carry timestamps the clock has already passed)."""
        clock = VirtualClock(100.0)
        for past in (0.0, 50.0, 99.999, 100.0):
            result = clock.advance_to(past)
            assert result == pytest.approx(100.0)
            assert clock.now == pytest.approx(100.0)
        # and forward motion still works afterwards
        assert clock.advance_to(101.0) == pytest.approx(101.0)

    def test_now_hours(self):
        clock = VirtualClock(7200.0)
        assert clock.now_hours == pytest.approx(2.0)
