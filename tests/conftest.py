"""Shared fixtures for the EQC reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import ghz_state, hardware_efficient_ansatz, qaoa_maxcut_ansatz
from repro.devices import build_qpu
from repro.hamiltonian import heisenberg_square_lattice, ring_maxcut_hamiltonian
from repro.vqa import heisenberg_vqe_problem, ring_maxcut_qaoa_problem


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for sampling tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def vqe_problem():
    """The paper's 4-qubit Heisenberg VQE problem (session-cached: exact
    diagonalization and ansatz construction are reused across tests)."""
    return heisenberg_vqe_problem()


@pytest.fixture(scope="session")
def qaoa_problem():
    """The paper's 4-node ring MaxCut QAOA problem."""
    return ring_maxcut_qaoa_problem()


@pytest.fixture(scope="session")
def heisenberg_h():
    return heisenberg_square_lattice()


@pytest.fixture(scope="session")
def maxcut_h():
    return ring_maxcut_hamiltonian()


@pytest.fixture
def ghz4():
    return ghz_state(4)


@pytest.fixture
def vqe_ansatz():
    return hardware_efficient_ansatz(4)


@pytest.fixture
def qaoa_ansatz():
    return qaoa_maxcut_ansatz(4, [(0, 1), (1, 2), (2, 3), (0, 3)])


@pytest.fixture(scope="session")
def belem_qpu():
    return build_qpu("Belem")


@pytest.fixture(scope="session")
def x2_qpu():
    return build_qpu("x2")
