"""Property-based tests (hypothesis) for simulator invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.simulator.channels import readout_confusion_matrix
from repro.simulator.mixing import MixingNoiseSpec, noisy_probabilities
from repro.simulator.sampler import apply_readout_error, sample_distribution
from repro.simulator.statevector import Statevector, simulate_statevector

angles = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def random_circuit(num_qubits: int, moves: list[tuple[int, int, float]]) -> QuantumCircuit:
    """Build a circuit from a list of (gate selector, qubit, angle) moves."""
    qc = QuantumCircuit(num_qubits)
    gates_1q = ["h", "x", "sx"]
    for selector, qubit, angle in moves:
        qubit_a = qubit % num_qubits
        kind = selector % 5
        if kind == 0:
            qc.add_gate(gates_1q[selector % 3], [qubit_a])
        elif kind == 1:
            qc.ry(angle, qubit_a)
        elif kind == 2:
            qc.rz(angle, qubit_a)
        elif kind == 3:
            qc.rx(angle, qubit_a)
        else:
            qubit_b = (qubit_a + 1) % num_qubits
            qc.cx(qubit_a, qubit_b)
    return qc


moves_strategy = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 3), angles), min_size=1, max_size=25
)


class TestStatevectorInvariants:
    @given(moves=moves_strategy)
    @settings(max_examples=40, deadline=None)
    def test_norm_preserved_by_any_circuit(self, moves):
        circuit = random_circuit(3, moves)
        state = simulate_statevector(circuit)
        assert np.isclose(np.sum(state.probabilities()), 1.0, atol=1e-9)

    @given(moves=moves_strategy)
    @settings(max_examples=30, deadline=None)
    def test_pauli_expectations_bounded(self, moves):
        circuit = random_circuit(3, moves)
        state = simulate_statevector(circuit)
        for label in ("ZII", "XXI", "ZZZ", "YIY"):
            value = state.expectation_pauli(label)
            assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(theta=angles)
    @settings(max_examples=40, deadline=None)
    def test_ry_probability_matches_analytic_form(self, theta):
        state = Statevector(1)
        state.apply_gate("ry", [0], [theta])
        probs = state.probabilities()
        assert np.isclose(probs[1], math.sin(theta / 2.0) ** 2, atol=1e-9)


class TestSamplingInvariants:
    @given(
        weights=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=8),
        shots=st.integers(min_value=1, max_value=2000),
    )
    @settings(max_examples=40, deadline=None)
    def test_sample_counts_sum_to_shots(self, weights, shots):
        size = 1 << max(1, (len(weights) - 1).bit_length())
        probs = np.zeros(size)
        probs[: len(weights)] = weights
        counts = sample_distribution(probs, shots, np.random.default_rng(0))
        assert sum(counts.values()) == shots

    @given(p01=probabilities, p10=probabilities)
    @settings(max_examples=40, deadline=None)
    def test_readout_error_preserves_total_probability(self, p01, p10):
        probs = np.array([0.4, 0.1, 0.2, 0.3])
        matrices = [readout_confusion_matrix(p01, p10)] * 2
        out = apply_readout_error(probs, matrices)
        assert np.isclose(out.sum(), 1.0, atol=1e-9)
        assert np.all(out >= -1e-12)


class TestMixingInvariants:
    @given(success=probabilities, p01=st.floats(0, 0.3), p10=st.floats(0, 0.3))
    @settings(max_examples=40, deadline=None)
    def test_noisy_distribution_is_a_distribution(self, success, p01, p10):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.measure_all()
        spec = MixingNoiseSpec(
            success_probability=success, readout_p01=p01, readout_p10=p10
        )
        probs = noisy_probabilities(circuit, spec)
        assert np.isclose(probs.sum(), 1.0, atol=1e-9)
        assert np.all(probs >= -1e-12)

    @given(success=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_ghz_error_mass_scales_with_success(self, success):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.measure_all()
        probs = noisy_probabilities(circuit, MixingNoiseSpec(success_probability=success))
        error_mass = 1.0 - probs[0] - probs[-1]
        expected = (1.0 - success) * (6.0 / 8.0)
        assert np.isclose(error_mass, expected, atol=1e-9)
