"""Property-based tests for Pauli algebra, weighting, routing and the ASGD rule."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.core.weighting import WeightBounds, normalize_weights
from repro.devices.topology import line_topology, t_shape_topology
from repro.hamiltonian.grouping import group_qubitwise_commuting
from repro.hamiltonian.pauli import PauliString, PauliSum
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.layout import select_layout
from repro.transpiler.routing import route_circuit
from repro.vqa.optimizer import AsgdRule

pauli_labels = st.text(alphabet="IXYZ", min_size=4, max_size=4)
coefficients = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


class TestPauliProperties:
    @given(label=pauli_labels, bits=st.integers(min_value=0, max_value=15))
    @settings(max_examples=60, deadline=None)
    def test_bitstring_eigenvalue_matches_diagonal_matrix(self, label, bits):
        """For diagonal strings the parity eigenvalue equals the matrix diagonal."""
        diagonal_label = label.replace("X", "Z").replace("Y", "Z")
        term = PauliString(diagonal_label)
        bitstring = format(bits, "04b")
        matrix = term.to_matrix()
        assert term.eigenvalue_of_bitstring(bitstring) == int(round(matrix[bits, bits].real))

    @given(entries=st.dictionaries(pauli_labels, coefficients, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_simplify_preserves_matrix(self, entries):
        h = PauliSum([PauliString(l, c) for l, c in entries.items()])
        assert np.allclose(h.to_matrix(), h.simplify().to_matrix(), atol=1e-9)

    @given(entries=st.dictionaries(pauli_labels, coefficients, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_grouping_is_a_partition(self, entries):
        h = PauliSum([PauliString(l, c) for l, c in entries.items()])
        groups = group_qubitwise_commuting(h)
        grouped_terms = [t for g in groups for t in g.terms]
        assert len(grouped_terms) == len(h)
        for group in groups:
            for term in group.terms:
                for qubit, char in enumerate(term.label):
                    assert char == "I" or group.basis[qubit] == char

    @given(entries=st.dictionaries(pauli_labels, coefficients, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_ground_energy_bounded_by_coefficient_sum(self, entries):
        h = PauliSum([PauliString(l, c) for l, c in entries.items()])
        bound = sum(abs(c) for c in entries.values())
        assert h.ground_state_energy() >= -bound - 1e-9


class TestWeightingProperties:
    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12),
        low=st.floats(min_value=0.0, max_value=1.0),
        width=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_weights_respect_bounds_and_ordering(self, values, low, width):
        bounds = WeightBounds(low, low + width)
        named = {f"d{i}": v for i, v in enumerate(values)}
        weights = normalize_weights(named, bounds)
        assert set(weights) == set(named)
        for weight in weights.values():
            assert bounds.low - 1e-9 <= weight <= bounds.high + 1e-9
        # monotone: better PCorrect never gets a lower weight
        ordered = sorted(named, key=named.get)
        for first, second in zip(ordered, ordered[1:]):
            assert weights[first] <= weights[second] + 1e-9


class TestAsgdProperties:
    @given(
        value=st.floats(-10, 10),
        gradient=st.floats(-10, 10),
        weight=st.floats(0, 2),
        lr=st.floats(0.001, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_step_moves_against_gradient(self, value, gradient, weight, lr):
        new_value = AsgdRule(learning_rate=lr).step(value, gradient, weight)
        assert math.isclose(new_value, value - weight * lr * gradient, rel_tol=1e-12, abs_tol=1e-12)


class TestRoutingProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=10
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_routing_only_uses_coupled_pairs(self, pairs):
        circuit = QuantumCircuit(4)
        for a, b in pairs:
            if a != b:
                circuit.cx(a, b)
        if len(circuit) == 0:
            return
        circuit.measure_all()
        for topology in (line_topology(5), t_shape_topology()):
            basis = decompose_to_basis(circuit)
            layout = select_layout(basis, topology)
            routed = route_circuit(basis, topology, layout)
            for inst in routed.circuit:
                if inst.name == "cx":
                    assert topology.are_connected(*inst.qubits)
            assert routed.circuit.num_measurements == 4
