"""Tests for Pauli-string algebra."""

import numpy as np
import pytest

from repro.hamiltonian.pauli import PauliString, PauliSum


class TestPauliString:
    def test_label_normalized_to_upper(self):
        assert PauliString("xz").label == "XZ"

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            PauliString("XA")
        with pytest.raises(ValueError):
            PauliString("")

    def test_support(self):
        assert PauliString("IXZI").support == (1, 2)
        assert PauliString("III").support == ()

    def test_identity_and_diagonal_flags(self):
        assert PauliString("II").is_identity
        assert PauliString("ZZ").is_diagonal
        assert not PauliString("XZ").is_diagonal

    def test_matrix_of_z(self):
        assert np.allclose(PauliString("Z").to_matrix(), np.diag([1, -1]))

    def test_matrix_includes_coefficient(self):
        assert np.allclose(PauliString("X", 2.0).to_matrix(), 2 * np.array([[0, 1], [1, 0]]))

    def test_matrix_tensor_order(self):
        zi = PauliString("ZI").to_matrix()
        assert np.allclose(np.diag(zi), [1, 1, -1, -1])

    def test_scalar_multiplication(self):
        assert (PauliString("X", 0.5) * 3.0).coefficient == pytest.approx(1.5)

    def test_pauli_multiplication(self):
        product = PauliString("X") * PauliString("X")
        assert product.label == "I"
        assert product.coefficient == pytest.approx(1.0)

    def test_pauli_multiplication_with_imaginary_phase_rejected(self):
        with pytest.raises(ValueError):
            PauliString("X") * PauliString("Y")

    def test_zz_product(self):
        product = PauliString("XX") * PauliString("YY")
        assert product.label == "ZZ"
        assert product.coefficient == pytest.approx(-1.0)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliString("X") * PauliString("XX")

    def test_qubitwise_commutation(self):
        assert PauliString("XI").commutes_qubitwise(PauliString("IX"))
        assert PauliString("XX").commutes_qubitwise(PauliString("XI"))
        assert not PauliString("XI").commutes_qubitwise(PauliString("ZI"))

    def test_eigenvalue_of_bitstring(self):
        term = PauliString("ZZI")
        assert term.eigenvalue_of_bitstring("000") == 1
        assert term.eigenvalue_of_bitstring("110") == 1
        assert term.eigenvalue_of_bitstring("100") == -1

    def test_expectation_from_probabilities_diagonal(self):
        term = PauliString("ZI", 2.0)
        probs = np.array([0.5, 0.0, 0.5, 0.0])  # |00> and |10> equally
        assert term.expectation_from_probabilities(probs) == pytest.approx(0.0)

    def test_expectation_from_probabilities_rejects_offdiagonal(self):
        with pytest.raises(ValueError):
            PauliString("XI").expectation_from_probabilities(np.ones(4) / 4)


class TestPauliSum:
    def test_width_consistency_enforced(self):
        with pytest.raises(ValueError):
            PauliSum([PauliString("X"), PauliString("XX")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PauliSum([])

    def test_from_dict(self):
        h = PauliSum.from_dict({"ZZ": 1.0, "XI": 0.5})
        assert len(h) == 2

    def test_simplify_merges_terms(self):
        h = PauliSum([PauliString("ZZ", 1.0), PauliString("ZZ", 2.0), PauliString("XI", 1e-15)])
        simplified = h.simplify()
        assert len(simplified) == 1
        assert simplified.terms[0].coefficient == pytest.approx(3.0)

    def test_addition(self):
        a = PauliSum([PauliString("ZZ", 1.0)])
        b = PauliSum([PauliString("ZZ", 1.0), PauliString("XX", 1.0)])
        total = a + b
        labels = {t.label: t.coefficient for t in total}
        assert labels["ZZ"] == pytest.approx(2.0)

    def test_scalar_multiplication(self):
        h = PauliSum([PauliString("Z", 2.0)]) * 0.5
        assert h.terms[0].coefficient == pytest.approx(1.0)

    def test_matrix_is_hermitian(self):
        h = PauliSum.from_dict({"XX": 1.0, "YY": 1.0, "ZZ": 1.0, "ZI": 1.0})
        matrix = h.to_matrix()
        assert np.allclose(matrix, matrix.conj().T)

    def test_ground_state_energy_of_single_z(self):
        h = PauliSum.from_dict({"Z": 1.0})
        assert h.ground_state_energy() == pytest.approx(-1.0)

    def test_expectation_from_statevector(self):
        h = PauliSum.from_dict({"ZI": 1.0, "IZ": 1.0})
        state = np.zeros(4)
        state[0b11] = 1.0
        assert h.expectation_from_statevector(state) == pytest.approx(-2.0)

    def test_is_diagonal(self):
        assert PauliSum.from_dict({"ZZ": 1.0, "IZ": 0.5}).is_diagonal
        assert not PauliSum.from_dict({"ZX": 1.0}).is_diagonal
