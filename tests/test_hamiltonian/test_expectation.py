"""Tests for expectation estimation and the EnergyEstimator."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, hardware_efficient_ansatz
from repro.hamiltonian.expectation import (
    EnergyEstimator,
    exact_expectation,
    expectation_from_group_counts,
)
from repro.hamiltonian.grouping import group_qubitwise_commuting
from repro.hamiltonian.heisenberg import heisenberg_square_lattice
from repro.hamiltonian.pauli import PauliSum
from repro.simulator.sampler import sample_circuit_ideal


class TestExactExpectation:
    def test_all_zero_state(self, heisenberg_h):
        circuit = QuantumCircuit(4)
        # |0000>: ZZ edge terms give +4, field gives +4, XX/YY give 0
        assert exact_expectation(circuit, heisenberg_h) == pytest.approx(8.0)

    def test_measurements_are_stripped(self, heisenberg_h):
        circuit = QuantumCircuit(4).measure_all()
        assert exact_expectation(circuit, heisenberg_h) == pytest.approx(8.0)

    def test_single_qubit_z(self):
        h = PauliSum.from_dict({"Z": 1.0})
        circuit = QuantumCircuit(1).x(0)
        assert exact_expectation(circuit, h) == pytest.approx(-1.0)


class TestEnergyEstimator:
    def test_width_mismatch_rejected(self, heisenberg_h):
        with pytest.raises(ValueError):
            EnergyEstimator(QuantumCircuit(3), heisenberg_h)

    def test_parameter_bookkeeping(self, heisenberg_h):
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        assert estimator.num_parameters == 16
        assert estimator.num_groups == 3

    def test_bindings_length_check(self, heisenberg_h):
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        with pytest.raises(ValueError):
            estimator.bindings([0.0] * 3)

    def test_measurement_circuits_are_bound_and_measured(self, heisenberg_h):
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        circuits = estimator.measurement_circuits([0.1] * 16)
        assert len(circuits) == 3
        for circuit in circuits:
            assert circuit.is_bound
            assert circuit.num_measurements == 4

    def test_template_circuits_stay_parameterized(self, heisenberg_h):
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        for circuit in estimator.template_circuits():
            assert len(circuit.parameters) == 16

    def test_ground_energy(self, heisenberg_h):
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        assert estimator.ground_energy() == pytest.approx(-8.0)

    def test_exact_energy_at_zero_parameters(self, heisenberg_h):
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        assert estimator.exact_energy([0.0] * 16) == pytest.approx(8.0)

    def test_sampled_energy_matches_exact(self, heisenberg_h, rng):
        """Sampling each measurement group with many shots reproduces the
        exact energy to within statistical error."""
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        theta = np.linspace(0.1, 1.5, 16)
        circuits = estimator.measurement_circuits(theta)
        counts = [sample_circuit_ideal(c, 30000, rng) for c in circuits]
        sampled = estimator.energy_from_counts(counts)
        exact = estimator.exact_energy(theta)
        assert sampled == pytest.approx(exact, abs=0.15)

    def test_energy_from_counts_group_mismatch(self, heisenberg_h):
        estimator = EnergyEstimator(hardware_efficient_ansatz(4), heisenberg_h)
        with pytest.raises(ValueError):
            expectation_from_group_counts(estimator.groups, [])
