"""Tests for the Heisenberg and MaxCut model Hamiltonians."""

import numpy as np
import pytest

from repro.hamiltonian.heisenberg import (
    SQUARE_LATTICE_EDGES,
    heisenberg_hamiltonian,
    heisenberg_square_lattice,
)
from repro.hamiltonian.maxcut import (
    RING_GRAPH_EDGES,
    best_cut,
    cut_value,
    maxcut_graph,
    maxcut_hamiltonian,
    ring_maxcut_hamiltonian,
)


class TestHeisenberg:
    def test_term_count(self):
        """4 edges x 3 axes + 4 field terms = 16 Pauli strings."""
        h = heisenberg_square_lattice()
        assert len(h) == 16

    def test_ground_energy_of_ring(self):
        """The 4-site Heisenberg ring (Pauli convention) has E0 = -8; the
        longitudinal field does not lower the Sz=0 ground state."""
        h = heisenberg_square_lattice()
        assert h.ground_state_energy() == pytest.approx(-8.0, abs=1e-9)

    def test_field_only_hamiltonian(self):
        h = heisenberg_hamiltonian(2, edges=[], coupling=1.0, field=1.0)
        assert h.ground_state_energy() == pytest.approx(-2.0)

    def test_coupling_scaling(self):
        weak = heisenberg_hamiltonian(4, SQUARE_LATTICE_EDGES, coupling=0.5, field=0.0)
        strong = heisenberg_hamiltonian(4, SQUARE_LATTICE_EDGES, coupling=1.0, field=0.0)
        assert strong.ground_state_energy() == pytest.approx(
            2 * weak.ground_state_energy(), rel=1e-9
        )

    def test_invalid_edge_rejected(self):
        with pytest.raises(ValueError):
            heisenberg_hamiltonian(3, [(0, 3)])

    def test_hermitian(self):
        matrix = heisenberg_square_lattice().to_matrix()
        assert np.allclose(matrix, matrix.conj().T)


class TestMaxCut:
    def test_graph_construction(self):
        graph = maxcut_graph(4, RING_GRAPH_EDGES)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            maxcut_graph(3, [(1, 1)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            maxcut_graph(2, [(0, 1)], weights={(0, 1): -1.0})

    def test_hamiltonian_is_diagonal(self):
        assert ring_maxcut_hamiltonian().is_diagonal

    def test_ground_energy_equals_minus_maxcut(self):
        """For the unweighted 4-ring the maximum cut is 4, so the Hamiltonian
        minimum is -4."""
        h = ring_maxcut_hamiltonian()
        assert h.ground_state_energy() == pytest.approx(-4.0)

    def test_cut_value(self):
        graph = maxcut_graph(4, RING_GRAPH_EDGES)
        assert cut_value(graph, "0101") == pytest.approx(4.0)
        assert cut_value(graph, "0000") == pytest.approx(0.0)
        assert cut_value(graph, "0011") == pytest.approx(2.0)

    def test_cut_value_length_mismatch(self):
        graph = maxcut_graph(4, RING_GRAPH_EDGES)
        with pytest.raises(ValueError):
            cut_value(graph, "01")

    def test_best_cut(self):
        graph = maxcut_graph(4, RING_GRAPH_EDGES)
        bits, value = best_cut(graph)
        assert value == pytest.approx(4.0)
        assert cut_value(graph, bits) == pytest.approx(4.0)

    def test_weighted_graph(self):
        graph = maxcut_graph(3, [(0, 1), (1, 2)], weights={(0, 1): 2.0, (1, 2): 3.0})
        _, value = best_cut(graph)
        assert value == pytest.approx(5.0)

    def test_hamiltonian_energy_matches_cut(self):
        """<bitstring|H|bitstring> = -cut(bitstring) for every bitstring."""
        graph = maxcut_graph(4, RING_GRAPH_EDGES)
        h = maxcut_hamiltonian(graph)
        matrix = h.to_matrix()
        for index in range(16):
            bits = format(index, "04b")
            energy = matrix[index, index].real
            assert energy == pytest.approx(-cut_value(graph, bits))

    def test_best_cut_size_limit(self):
        import networkx as nx

        big = nx.path_graph(25)
        with pytest.raises(ValueError):
            best_cut(big)
