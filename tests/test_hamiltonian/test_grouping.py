"""Tests for qubit-wise-commuting grouping and measurement circuits."""

import pytest

from repro.hamiltonian.grouping import (
    MeasurementGroup,
    group_qubitwise_commuting,
    measurement_basis_circuit,
)
from repro.hamiltonian.heisenberg import heisenberg_square_lattice
from repro.hamiltonian.maxcut import ring_maxcut_hamiltonian
from repro.hamiltonian.pauli import PauliString, PauliSum


class TestGrouping:
    def test_heisenberg_groups_into_three_bases(self):
        """XX / YY / (ZZ + Z) should fold into exactly three groups."""
        groups = group_qubitwise_commuting(heisenberg_square_lattice())
        assert len(groups) == 3
        bases = {g.basis for g in groups}
        assert bases == {"XXXX", "YYYY", "ZZZZ"}

    def test_maxcut_groups_into_single_basis(self):
        groups = group_qubitwise_commuting(ring_maxcut_hamiltonian())
        assert len(groups) == 1

    def test_every_term_is_assigned_exactly_once(self):
        hamiltonian = heisenberg_square_lattice()
        groups = group_qubitwise_commuting(hamiltonian)
        assigned = [t for g in groups for t in g.terms]
        assert len(assigned) == len(hamiltonian)

    def test_terms_commute_with_their_group_basis(self):
        groups = group_qubitwise_commuting(heisenberg_square_lattice())
        for group in groups:
            basis_term = PauliString(group.basis.replace("I", "Z") if False else group.basis)
            for term in group.terms:
                for qubit, char in enumerate(term.label):
                    if char != "I":
                        assert group.basis[qubit] == char

    def test_incompatible_terms_split(self):
        h = PauliSum.from_dict({"XZ": 1.0, "ZX": 1.0})
        assert len(group_qubitwise_commuting(h)) == 2


class TestMeasurementCircuits:
    def test_z_basis_needs_no_rotation(self):
        circuit = measurement_basis_circuit("ZZ")
        assert circuit.count_ops() == {"measure": 2}

    def test_x_basis_uses_hadamard(self):
        circuit = measurement_basis_circuit("XI")
        assert circuit.count_ops()["h"] == 1

    def test_y_basis_uses_sdg_h(self):
        circuit = measurement_basis_circuit("YY")
        ops = circuit.count_ops()
        assert ops["sdg"] == 2
        assert ops["h"] == 2

    def test_invalid_basis_rejected(self):
        with pytest.raises(ValueError):
            measurement_basis_circuit("ZQ")

    def test_all_qubits_measured(self):
        assert measurement_basis_circuit("XYZ").num_measurements == 3


class TestGroupExpectation:
    def test_zz_expectation_from_counts(self):
        group = MeasurementGroup(terms=(PauliString("ZZ", 1.0),), basis="ZZ")
        counts = {"00": 50, "11": 30, "01": 20}
        # parity +1 for 00/11 (80), -1 for 01 (20) -> 0.6
        assert group.expectation_from_counts(counts) == pytest.approx(0.6)

    def test_coefficient_applied(self):
        group = MeasurementGroup(terms=(PauliString("ZI", -2.0),), basis="ZZ")
        counts = {"00": 100}
        assert group.expectation_from_counts(counts) == pytest.approx(-2.0)

    def test_empty_counts_returns_zero(self):
        group = MeasurementGroup(terms=(PauliString("ZZ"),), basis="ZZ")
        assert group.expectation_from_counts({}) == 0.0

    def test_multi_term_group(self):
        group = MeasurementGroup(
            terms=(PauliString("ZI", 1.0), PauliString("IZ", 1.0)), basis="ZZ"
        )
        counts = {"00": 100}
        assert group.expectation_from_counts(counts) == pytest.approx(2.0)
