"""Tests for the symbolic parameter layer."""

import math

import pytest

from repro.circuit.parameters import (
    Parameter,
    ParameterExpression,
    ParameterVector,
    bind_value,
    free_parameters,
)


class TestParameter:
    def test_name_is_stored(self):
        assert Parameter("theta").name == "theta"

    def test_parameters_with_same_name_are_distinct(self):
        a, b = Parameter("theta"), Parameter("theta")
        assert a != b
        assert len({a, b}) == 2

    def test_parameter_equal_to_itself(self):
        p = Parameter("x")
        assert p == p
        assert hash(p) == hash(p)

    def test_bind_returns_value(self):
        p = Parameter("x")
        assert p.bind({p: 0.5}) == pytest.approx(0.5)

    def test_bind_missing_raises_keyerror(self):
        p = Parameter("x")
        with pytest.raises(KeyError):
            p.bind({})

    def test_parameters_property_is_singleton(self):
        p = Parameter("x")
        assert p.parameters == frozenset({p})

    def test_repr_contains_name(self):
        assert "theta" in repr(Parameter("theta"))


class TestParameterExpression:
    def test_addition_builds_expression(self):
        p = Parameter("x")
        expr = p + 1.5
        assert isinstance(expr, ParameterExpression)
        assert expr.bind({p: 2.0}) == pytest.approx(3.5)

    def test_subtraction(self):
        p = Parameter("x")
        assert (p - 0.5).bind({p: 2.0}) == pytest.approx(1.5)

    def test_right_subtraction(self):
        p = Parameter("x")
        assert (1.0 - p).bind({p: 0.25}) == pytest.approx(0.75)

    def test_scaling(self):
        p = Parameter("x")
        assert (3.0 * p).bind({p: 2.0}) == pytest.approx(6.0)

    def test_negation(self):
        p = Parameter("x")
        assert (-p).bind({p: 1.25}) == pytest.approx(-1.25)

    def test_chained_arithmetic(self):
        p = Parameter("x")
        expr = (2.0 * p + 1.0) * 0.5
        assert expr.bind({p: 3.0}) == pytest.approx(3.5)

    def test_expression_parameters(self):
        p = Parameter("x")
        assert (p + math.pi).parameters == frozenset({p})


class TestParameterVector:
    def test_length(self):
        assert len(ParameterVector("t", 5)) == 5

    def test_names_are_indexed(self):
        vec = ParameterVector("t", 3)
        assert [p.name for p in vec] == ["t[0]", "t[1]", "t[2]"]

    def test_getitem(self):
        vec = ParameterVector("t", 3)
        assert vec[1].name == "t[1]"

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ParameterVector("t", -1)

    def test_params_returns_copy(self):
        vec = ParameterVector("t", 2)
        params = vec.params
        params.append(Parameter("other"))
        assert len(vec) == 2

    def test_zero_length_allowed(self):
        assert len(ParameterVector("t", 0)) == 0


class TestBindValue:
    def test_float_passthrough(self):
        assert bind_value(1.25, {}) == pytest.approx(1.25)

    def test_parameter_binding(self):
        p = Parameter("x")
        assert bind_value(p, {p: 0.7}) == pytest.approx(0.7)

    def test_expression_binding(self):
        p = Parameter("x")
        assert bind_value(p + math.pi / 2, {p: 0.0}) == pytest.approx(math.pi / 2)

    def test_free_parameters_collects_all(self):
        a, b = Parameter("a"), Parameter("b")
        assert free_parameters([a, 1.0, b + 2.0]) == frozenset({a, b})

    def test_free_parameters_empty_for_floats(self):
        assert free_parameters([1.0, 2.0]) == frozenset()
