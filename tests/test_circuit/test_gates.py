"""Tests for gate specs, instructions and unitary matrices."""

import math

import numpy as np
import pytest

from repro.circuit.gates import (
    BASIS_GATES,
    GATE_SPECS,
    Instruction,
    gate_matrix,
    is_parameterized_gate,
    is_two_qubit,
)
from repro.circuit.parameters import Parameter


class TestGateSpecs:
    def test_basis_gates_are_marked(self):
        for name in BASIS_GATES:
            assert GATE_SPECS[name].is_basis

    def test_measure_is_directive(self):
        assert GATE_SPECS["measure"].is_directive

    def test_two_qubit_detection(self):
        assert is_two_qubit("cx")
        assert is_two_qubit("rzz")
        assert not is_two_qubit("rz")
        assert not is_two_qubit("measure")

    def test_parameterized_detection(self):
        assert is_parameterized_gate("rx")
        assert not is_parameterized_gate("h")
        assert not is_parameterized_gate("nonexistent")


class TestInstruction:
    def test_valid_instruction(self):
        inst = Instruction("cx", (0, 1))
        assert inst.qubits == (0, 1)
        assert inst.is_unitary

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            Instruction("foo", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Instruction("cx", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction("cx", (1, 1))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(ValueError):
            Instruction("rz", (0,))

    def test_measurement_flags(self):
        inst = Instruction("measure", (0,))
        assert inst.is_measurement
        assert not inst.is_unitary

    def test_free_parameters(self):
        p = Parameter("x")
        inst = Instruction("ry", (0,), (p,))
        assert inst.free_parameters == frozenset({p})

    def test_bind_replaces_parameters(self):
        p = Parameter("x")
        inst = Instruction("ry", (0,), (p,)).bind({p: 0.5})
        assert inst.params == (0.5,)
        assert not inst.free_parameters

    def test_bind_is_noop_for_bound(self):
        inst = Instruction("ry", (0,), (0.5,))
        assert inst.bind({}) is inst

    def test_remap(self):
        inst = Instruction("cx", (0, 1)).remap({0: 3, 1: 2})
        assert inst.qubits == (3, 2)


class TestGateMatrices:
    @pytest.mark.parametrize("name", ["id", "x", "y", "z", "h", "s", "sdg", "t", "sx"])
    def test_one_qubit_matrices_are_unitary(self, name):
        mat = gate_matrix(name)
        assert mat.shape == (2, 2)
        assert np.allclose(mat @ mat.conj().T, np.eye(2), atol=1e-12)

    @pytest.mark.parametrize("name", ["cx", "cz", "swap"])
    def test_two_qubit_matrices_are_unitary(self, name):
        mat = gate_matrix(name)
        assert mat.shape == (4, 4)
        assert np.allclose(mat @ mat.conj().T, np.eye(4), atol=1e-12)

    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, 2 * math.pi])
    def test_rotations_are_unitary(self, name, theta):
        mat = gate_matrix(name, [theta])
        assert np.allclose(mat @ mat.conj().T, np.eye(2), atol=1e-12)

    def test_rotation_at_zero_is_identity(self):
        for name in ("rx", "ry", "rz"):
            assert np.allclose(gate_matrix(name, [0.0]), np.eye(2), atol=1e-12)

    def test_rx_pi_is_x_up_to_phase(self):
        rx = gate_matrix("rx", [math.pi])
        x = gate_matrix("x")
        phase = rx[0, 1] / x[0, 1]
        assert np.allclose(rx, phase * x, atol=1e-12)

    def test_sx_squared_is_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"), atol=1e-12)

    def test_h_squared_is_identity(self):
        h = gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2), atol=1e-12)

    def test_cx_maps_10_to_11(self):
        cx = gate_matrix("cx")
        state = np.zeros(4)
        state[0b10] = 1.0
        out = cx @ state
        assert out[0b11] == pytest.approx(1.0)

    def test_swap_exchanges_basis_states(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[0b01] = 1.0
        out = swap @ state
        assert out[0b10] == pytest.approx(1.0)

    def test_rzz_is_diagonal(self):
        mat = gate_matrix("rzz", [0.7])
        off_diagonal = mat - np.diag(np.diag(mat))
        assert np.allclose(off_diagonal, 0.0)

    def test_measure_has_no_matrix(self):
        with pytest.raises(ValueError):
            gate_matrix("measure")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            gate_matrix("foo")

    def test_wrong_param_count_rejected(self):
        with pytest.raises(ValueError):
            gate_matrix("rx", [])
