"""Tests for the ansatz library (Fig. 8, Fig. 10, GHZ)."""

import pytest

from repro.circuit.library import (
    ghz_state,
    hardware_efficient_ansatz,
    linear_entangler_demo,
    qaoa_maxcut_ansatz,
    qnn_encoder_ansatz,
)


class TestHardwareEfficientAnsatz:
    def test_paper_parameter_count(self):
        """The 4-qubit Fig. 8 circuit has 16 trainable parameters."""
        qc = hardware_efficient_ansatz(4)
        assert len(qc.parameters) == 16

    def test_layer_scaling(self):
        qc = hardware_efficient_ansatz(4, num_layers=2)
        assert len(qc.parameters) == 32

    def test_linear_entangler_structure(self):
        qc = hardware_efficient_ansatz(4)
        cx_pairs = [i.qubits for i in qc if i.name == "cx"]
        assert cx_pairs == [(0, 1), (1, 2), (2, 3)]

    def test_measurements_optional(self):
        assert hardware_efficient_ansatz(4, measure=False).num_measurements == 0
        assert hardware_efficient_ansatz(4, measure=True).num_measurements == 4

    def test_gate_composition(self):
        ops = hardware_efficient_ansatz(4, measure=False).count_ops()
        assert ops == {"ry": 8, "rz": 8, "cx": 3}

    def test_too_few_qubits_rejected(self):
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(1)

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(4, num_layers=0)


class TestQaoaAnsatz:
    def test_paper_parameter_count(self):
        """The single-layer Fig. 10 circuit has exactly 2 parameters."""
        qc = qaoa_maxcut_ansatz(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert len(qc.parameters) == 2

    def test_layer_scaling(self):
        qc = qaoa_maxcut_ansatz(4, [(0, 1)], num_layers=3)
        assert len(qc.parameters) == 6

    def test_cost_layer_covers_every_edge(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        qc = qaoa_maxcut_ansatz(4, edges)
        rzz_pairs = [i.qubits for i in qc if i.name == "rzz"]
        assert len(rzz_pairs) == len(edges)

    def test_hadamard_initialization(self):
        qc = qaoa_maxcut_ansatz(4, [(0, 1)])
        assert qc.count_ops()["h"] == 4

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_ansatz(4, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_ansatz(4, [(0, 7)])


class TestGhzState:
    def test_structure(self):
        qc = ghz_state(5)
        ops = qc.count_ops()
        assert ops["h"] == 1
        assert ops["cx"] == 4
        assert ops["measure"] == 5

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            ghz_state(1)

    def test_no_parameters(self):
        assert ghz_state(3).is_bound


class TestOtherCircuits:
    def test_linear_entangler_demo(self):
        qc = linear_entangler_demo(4)
        assert len(qc.parameters) == 4
        assert qc.count_ops()["cx"] == 3

    def test_qnn_encoder_parameter_count(self):
        qc = qnn_encoder_ansatz(4, features=[0.1, 0.2, 0.3, 0.4])
        assert len(qc.parameters) == 4

    def test_qnn_encoder_feature_wrapping(self):
        # fewer features than qubits: features wrap around without error
        qc = qnn_encoder_ansatz(4, features=[0.1, 0.2])
        assert qc.count_ops()["rx"] == 4

    def test_qnn_encoder_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            qnn_encoder_ansatz(4, features=[0.1], num_layers=0)
