"""Tests for the QuantumCircuit IR."""

import math

import pytest

from repro.circuit import Parameter, ParameterVector, QuantumCircuit
from repro.circuit.gates import Instruction


class TestConstruction:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_gate_helpers_append(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).measure_all()
        assert len(qc) == 4
        assert qc.count_ops() == {"h": 1, "cx": 1, "measure": 2}

    def test_out_of_range_qubit_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.h(2)

    def test_add_gate_by_name(self):
        qc = QuantumCircuit(1)
        qc.add_gate("rx", [0], [0.5])
        assert qc.instructions[0].name == "rx"

    def test_chainable_interface(self):
        qc = QuantumCircuit(3)
        result = qc.h(0).cx(0, 1).cx(1, 2)
        assert result is qc


class TestParameters:
    def test_parameters_collected(self):
        p, q = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(1).rx(p, 0).rz(q, 0)
        assert qc.parameters == frozenset({p, q})

    def test_is_bound(self):
        qc = QuantumCircuit(1).rx(0.5, 0)
        assert qc.is_bound
        qc.ry(Parameter("a"), 0)
        assert not qc.is_bound

    def test_bind_parameters(self):
        p = Parameter("a")
        qc = QuantumCircuit(1).rx(p, 0)
        bound = qc.bind_parameters({p: 0.25})
        assert bound.is_bound
        assert bound.instructions[0].params == (0.25,)
        # the original is untouched
        assert not qc.is_bound

    def test_ordered_parameters_follow_first_appearance(self):
        vec = ParameterVector("t", 3)
        qc = QuantumCircuit(2)
        qc.ry(vec[2], 0).ry(vec[0], 1).ry(vec[1], 0)
        assert qc.ordered_parameters() == [vec[2], vec[0], vec[1]]

    def test_assign_by_order(self):
        vec = ParameterVector("t", 2)
        qc = QuantumCircuit(1).ry(vec[0], 0).rz(vec[1], 0)
        bound = qc.assign_by_order([0.1, 0.2])
        assert bound.instructions[0].params == (0.1,)
        assert bound.instructions[1].params == (0.2,)

    def test_assign_by_order_wrong_length(self):
        vec = ParameterVector("t", 2)
        qc = QuantumCircuit(1).ry(vec[0], 0).rz(vec[1], 0)
        with pytest.raises(ValueError):
            qc.assign_by_order([0.1])


class TestMetrics:
    def test_depth_linear_chain(self):
        qc = QuantumCircuit(1).h(0).h(0).h(0)
        assert qc.depth() == 3

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(2).h(0).h(1)
        assert qc.depth() == 1

    def test_depth_with_entangler(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert qc.depth() == 3

    def test_critical_depth_counts_only_two_qubit_gates(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1).cx(0, 1)
        assert qc.critical_depth() == 2

    def test_critical_depth_zero_without_entanglers(self):
        qc = QuantumCircuit(2).h(0).h(1)
        assert qc.critical_depth() == 0

    def test_gate_counts(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).swap(1, 2).measure_all()
        assert qc.num_single_qubit_gates == 1
        # swap counts as three CNOTs
        assert qc.num_two_qubit_gates == 1 + 3
        assert qc.num_measurements == 3

    def test_measured_qubits_deduplicated(self):
        qc = QuantumCircuit(2).measure(1).measure(1).measure(0)
        assert qc.measured_qubits == (1, 0)

    def test_barrier_does_not_add_depth(self):
        qc = QuantumCircuit(2).h(0)
        qc.barrier()
        qc.h(1)
        assert qc.depth() == 2  # barrier synchronizes, h(1) starts a new layer


class TestTransformations:
    def test_copy_is_independent(self):
        qc = QuantumCircuit(1).h(0)
        other = qc.copy()
        other.x(0)
        assert len(qc) == 1
        assert len(other) == 2

    def test_compose_appends(self):
        first = QuantumCircuit(2).h(0)
        second = QuantumCircuit(2).cx(0, 1)
        combined = first.compose(second)
        assert [i.name for i in combined] == ["h", "cx"]
        assert len(first) == 1

    def test_compose_wider_circuit_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_remap_qubits(self):
        qc = QuantumCircuit(2).cx(0, 1)
        remapped = qc.remap_qubits({0: 4, 1: 2}, num_qubits=5)
        assert remapped.num_qubits == 5
        assert remapped.instructions[0].qubits == (4, 2)

    def test_without_measurements(self):
        qc = QuantumCircuit(2).h(0).measure_all()
        stripped = qc.without_measurements()
        assert stripped.num_measurements == 0
        assert qc.num_measurements == 2

    def test_repr_and_draw(self):
        qc = QuantumCircuit(2, name="demo").h(0)
        assert "demo" in repr(qc)
        assert "demo" in qc.draw()

    def test_append_validates_range(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.append(Instruction("x", (5,)))
