"""Tests for basis-gate decomposition, including unitary equivalence."""

import numpy as np
import pytest

from repro.circuit import BASIS_GATES, Parameter, QuantumCircuit
from repro.circuit.gates import GATE_SPECS
from repro.simulator.statevector import Statevector
from repro.transpiler.decompose import decompose_to_basis


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Brute-force unitary of a small bound circuit (columns = basis images)."""
    dim = 1 << circuit.num_qubits
    columns = []
    for index in range(dim):
        amplitudes = np.zeros(dim, dtype=complex)
        amplitudes[index] = 1.0
        state = Statevector(circuit.num_qubits, amplitudes)
        for inst in circuit:
            if inst.is_unitary:
                state.apply_gate(inst.name, inst.qubits, tuple(float(p) for p in inst.params))
        columns.append(state.data)
    return np.array(columns).T


def assert_equivalent_up_to_phase(a: np.ndarray, b: np.ndarray) -> None:
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    assert abs(a[index]) > 1e-9
    phase = b[index] / a[index]
    assert abs(abs(phase) - 1.0) < 1e-9
    assert np.allclose(a * phase, b, atol=1e-9)


def single_gate_circuit(name: str, theta: float = 0.7) -> QuantumCircuit:
    spec = GATE_SPECS[name]
    qc = QuantumCircuit(spec.num_qubits)
    params = [theta] * spec.num_params
    qc.add_gate(name, list(range(spec.num_qubits)), params)
    return qc


NON_BASIS_UNITARIES = ["h", "y", "z", "s", "sdg", "t", "rx", "ry", "cz", "swap", "rzz"]


class TestUnitaryEquivalence:
    @pytest.mark.parametrize("name", NON_BASIS_UNITARIES)
    def test_decomposition_preserves_unitary(self, name):
        circuit = single_gate_circuit(name)
        decomposed = decompose_to_basis(circuit)
        assert_equivalent_up_to_phase(circuit_unitary(circuit), circuit_unitary(decomposed))

    @pytest.mark.parametrize("theta", [0.0, 0.3, 1.0, np.pi, -1.7, 2 * np.pi])
    def test_ry_decomposition_across_angles(self, theta):
        circuit = single_gate_circuit("ry", theta)
        decomposed = decompose_to_basis(circuit)
        assert_equivalent_up_to_phase(circuit_unitary(circuit), circuit_unitary(decomposed))

    def test_composite_circuit(self):
        qc = QuantumCircuit(3)
        qc.h(0).ry(0.4, 1).cx(0, 1).rzz(0.9, 1, 2).swap(0, 2).rx(1.1, 2)
        decomposed = decompose_to_basis(qc)
        assert_equivalent_up_to_phase(circuit_unitary(qc), circuit_unitary(decomposed))


class TestBasisAlphabet:
    def test_output_contains_only_basis_gates_and_directives(self):
        qc = QuantumCircuit(3)
        qc.h(0).ry(0.4, 1).cz(0, 1).swap(1, 2).measure_all()
        decomposed = decompose_to_basis(qc)
        allowed = set(BASIS_GATES) | {"measure", "barrier"}
        assert {inst.name for inst in decomposed} <= allowed

    def test_basis_gates_pass_through(self):
        qc = QuantumCircuit(2).x(0).sx(1).rz(0.3, 0).cx(0, 1)
        decomposed = decompose_to_basis(qc)
        assert [i.name for i in decomposed] == ["x", "sx", "rz", "cx"]

    def test_measurements_preserved(self):
        qc = QuantumCircuit(2).h(0).measure_all()
        assert decompose_to_basis(qc).num_measurements == 2

    def test_parameterized_gates_stay_parameterized(self):
        p = Parameter("a")
        qc = QuantumCircuit(1).ry(p, 0)
        decomposed = decompose_to_basis(qc)
        assert decomposed.parameters == frozenset({p})
        # binding after decomposition matches binding before decomposition
        bound_after = decomposed.bind_parameters({p: 0.8})
        bound_before = decompose_to_basis(qc.bind_parameters({p: 0.8}))
        assert_equivalent_up_to_phase(
            circuit_unitary(bound_before), circuit_unitary(bound_after)
        )

    def test_swap_costs_three_cnots(self):
        qc = QuantumCircuit(2).swap(0, 1)
        decomposed = decompose_to_basis(qc)
        assert decomposed.count_ops()["cx"] == 3
