"""Tests for the end-to-end transpilation pipeline."""

import pytest

from repro.circuit import BASIS_GATES, ghz_state, hardware_efficient_ansatz
from repro.devices.catalog import device_spec
from repro.devices.topology import fully_connected_topology, line_topology, t_shape_topology
from repro.transpiler.metrics import circuit_footprint, swap_overhead
from repro.transpiler.transpile import transpile


class TestTranspilePipeline:
    def test_output_is_in_basis_alphabet(self):
        result = transpile(hardware_efficient_ansatz(4), t_shape_topology())
        allowed = set(BASIS_GATES) | {"measure", "barrier"}
        assert {inst.name for inst in result.physical_circuit} <= allowed

    def test_parameters_survive_transpilation(self):
        ansatz = hardware_efficient_ansatz(4, measure=False)
        result = transpile(ansatz, line_topology(5))
        assert result.physical_circuit.parameters == ansatz.parameters

    def test_footprint_matches_physical_circuit(self):
        result = transpile(ghz_state(4), t_shape_topology())
        recomputed = circuit_footprint(result.physical_circuit)
        assert recomputed == result.footprint

    def test_footprint_records_used_couplings(self):
        result = transpile(ghz_state(4), line_topology(5))
        assert result.footprint.used_couplings
        for a, b in result.footprint.used_couplings:
            assert line_topology(5).are_connected(a, b)

    def test_swap_overhead_helper(self):
        topology = t_shape_topology()
        result = transpile(hardware_efficient_ansatz(4), topology)
        overhead = swap_overhead(result.logical_circuit, result.physical_circuit)
        assert overhead == result.swap_cnot_overhead == 3 * result.num_swaps


class TestTopologyDependence:
    """The Fig. 3 observation: the same circuit costs more on sparser maps."""

    def test_fully_connected_cheapest(self):
        ansatz = hardware_efficient_ansatz(4)
        full = transpile(ansatz, fully_connected_topology(5))
        t_shape = transpile(ansatz, t_shape_topology())
        assert full.num_swaps == 0
        assert full.footprint.num_two_qubit_gates <= t_shape.footprint.num_two_qubit_gates

    def test_catalog_device_ordering(self):
        """x2 (fully connected) must pay fewer entangling gates than Belem
        (T-shape) for the Fig. 8 ansatz, as Figure 3 illustrates."""
        ansatz = hardware_efficient_ansatz(4)
        x2 = transpile(ansatz, device_spec("x2").topology)
        belem = transpile(ansatz, device_spec("Belem").topology)
        assert x2.footprint.num_two_qubit_gates < belem.footprint.num_two_qubit_gates

    def test_critical_depth_grows_with_swaps(self):
        ansatz = hardware_efficient_ansatz(4)
        full = transpile(ansatz, fully_connected_topology(5))
        t_shape = transpile(ansatz, t_shape_topology())
        assert t_shape.footprint.critical_depth >= full.footprint.critical_depth

    def test_wider_device_than_circuit_is_fine(self):
        result = transpile(ghz_state(3), device_spec("Toronto").topology)
        assert result.physical_circuit.num_qubits == 27
        assert result.footprint.num_measurements == 3
