"""Tests for initial layout selection."""

import pytest

from repro.circuit import QuantumCircuit, hardware_efficient_ansatz
from repro.devices.topology import line_topology, t_shape_topology, toronto_topology
from repro.transpiler.layout import Layout, interaction_counts, select_layout


class TestLayout:
    def test_bijection_enforced(self):
        with pytest.raises(ValueError):
            Layout({0: 1, 1: 1}, num_physical=3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Layout({0: 7}, num_physical=3)

    def test_lookup_both_directions(self):
        layout = Layout({0: 2, 1: 0}, num_physical=3)
        assert layout.physical(0) == 2
        assert layout.logical(2) == 0
        assert layout.logical(1) is None

    def test_swapped(self):
        layout = Layout({0: 0, 1: 1}, num_physical=3)
        swapped = layout.swapped(1, 2)
        assert swapped.physical(1) == 2
        assert swapped.physical(0) == 0
        # original unchanged
        assert layout.physical(1) == 1

    def test_swapped_with_empty_slot(self):
        layout = Layout({0: 0}, num_physical=2)
        swapped = layout.swapped(0, 1)
        assert swapped.physical(0) == 1


class TestInteractionCounts:
    def test_counts_two_qubit_participation(self):
        qc = QuantumCircuit(3).cx(0, 1).cx(0, 2).h(2)
        counts = interaction_counts(qc)
        assert counts[0] == 2
        assert counts[1] == 1
        assert counts[2] == 1


class TestSelectLayout:
    def test_trivial_layout(self):
        qc = QuantumCircuit(3).cx(0, 1)
        layout = select_layout(qc, line_topology(5), strategy="trivial")
        assert layout.as_dict() == {0: 0, 1: 1, 2: 2}

    def test_circuit_wider_than_device_rejected(self):
        qc = QuantumCircuit(6)
        with pytest.raises(ValueError):
            select_layout(qc, line_topology(5))

    def test_unknown_strategy_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            select_layout(qc, line_topology(5), strategy="magic")

    def test_greedy_layout_covers_all_logical_qubits(self):
        qc = hardware_efficient_ansatz(4)
        layout = select_layout(qc, toronto_topology())
        assert len(layout) >= 4
        assert len({layout.physical(q) for q in range(4)}) == 4

    def test_greedy_places_busy_qubits_on_hub(self):
        """On the T-shape device the hub (physical qubit 1) should host one of
        the most interaction-heavy logical qubits."""
        qc = hardware_efficient_ansatz(4)
        layout = select_layout(qc, t_shape_topology())
        counts = interaction_counts(qc)
        busiest = max(counts, key=counts.get)
        hub_logical = layout.logical(1)
        assert hub_logical is not None
        assert counts[hub_logical] >= counts[busiest] - 1

    def test_greedy_region_is_connected_when_possible(self):
        qc = QuantumCircuit(4).cx(0, 1).cx(1, 2).cx(2, 3)
        layout = select_layout(qc, toronto_topology())
        physical = [layout.physical(q) for q in range(4)]
        topo = toronto_topology()
        # every chosen qubit has at least one neighbour among the chosen set
        for q in physical:
            assert any(n in physical for n in topo.neighbors(q))
