"""Tests for SWAP-insertion routing."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, ghz_state, hardware_efficient_ansatz
from repro.devices.topology import (
    fully_connected_topology,
    line_topology,
    t_shape_topology,
    toronto_topology,
)
from repro.transpiler.decompose import decompose_to_basis
from repro.transpiler.layout import Layout, select_layout
from repro.transpiler.routing import route_circuit


def trivial_layout(circuit, topology):
    return Layout({q: q for q in range(circuit.num_qubits)}, topology.num_qubits)


class TestRoutingRespectsTopology:
    @pytest.mark.parametrize(
        "topology_factory",
        [lambda: line_topology(5), t_shape_topology, lambda: fully_connected_topology(5), toronto_topology],
    )
    def test_all_two_qubit_gates_on_coupled_pairs(self, topology_factory):
        topology = topology_factory()
        circuit = decompose_to_basis(hardware_efficient_ansatz(4))
        layout = select_layout(circuit, topology)
        result = route_circuit(circuit, topology, layout)
        for inst in result.circuit:
            if inst.name == "cx":
                assert topology.are_connected(*inst.qubits)

    def test_fully_connected_needs_no_swaps(self):
        topology = fully_connected_topology(5)
        circuit = decompose_to_basis(hardware_efficient_ansatz(4))
        result = route_circuit(circuit, topology, trivial_layout(circuit, topology))
        assert result.num_swaps == 0

    def test_linear_circuit_on_line_needs_no_swaps(self):
        topology = line_topology(5)
        circuit = decompose_to_basis(ghz_state(4))
        result = route_circuit(circuit, topology, trivial_layout(circuit, topology))
        assert result.num_swaps == 0

    def test_distant_cnot_requires_swaps(self):
        topology = line_topology(5)
        circuit = QuantumCircuit(5).cx(0, 4)
        result = route_circuit(circuit, topology, trivial_layout(circuit, topology))
        assert result.num_swaps == 3
        # SWAPs expand to 3 CNOTs each, plus the original CNOT
        assert result.circuit.count_ops()["cx"] == 3 * 3 + 1


class TestRoutingBookkeeping:
    def test_final_layout_tracks_swaps(self):
        topology = line_topology(3)
        circuit = QuantumCircuit(3).cx(0, 2)
        result = route_circuit(circuit, topology, trivial_layout(circuit, topology))
        # logical 0 was swapped to physical 1 to reach logical 2 on physical 2
        assert result.final_layout.physical(0) == 1

    def test_measurements_follow_their_logical_qubit(self):
        topology = line_topology(3)
        circuit = QuantumCircuit(3).cx(0, 2).measure(0)
        result = route_circuit(circuit, topology, trivial_layout(circuit, topology))
        measure = [i for i in result.circuit if i.is_measurement][0]
        assert measure.qubits[0] == result.final_layout.physical(0)

    def test_single_qubit_gates_remapped(self):
        topology = line_topology(4)
        circuit = QuantumCircuit(2).h(1)
        layout = Layout({0: 3, 1: 2}, num_physical=4)
        result = route_circuit(circuit, topology, layout)
        assert result.circuit.instructions[0].qubits == (2,)

    def test_routed_width_is_device_width(self):
        topology = toronto_topology()
        circuit = decompose_to_basis(ghz_state(4))
        layout = select_layout(circuit, topology)
        result = route_circuit(circuit, topology, layout)
        assert result.circuit.num_qubits == 27

    def test_incomplete_layout_rejected(self):
        topology = line_topology(3)
        circuit = QuantumCircuit(3).cx(0, 2)
        with pytest.raises(ValueError):
            route_circuit(circuit, topology, Layout({0: 0}, 3))

    def test_routing_preserves_measurement_count(self):
        topology = t_shape_topology()
        circuit = decompose_to_basis(ghz_state(5))
        layout = select_layout(circuit, topology)
        result = route_circuit(circuit, topology, layout)
        assert result.circuit.num_measurements == 5
