"""Compiled gate-program equivalence suite.

The compiler may reorder commuting gates, fold constants, fuse runs, and
specialize diagonals — but the executed program must agree with the looped
reference simulator to ≤1e-10 on every structure it can be handed.  The
randomized section draws structures from the full gate alphabet and checks
fused, unfused, and diagonal-disabled compilations against
``simulate_statevector`` on random bindings.
"""

import numpy as np
import pytest

from repro.circuit import ghz_state, hardware_efficient_ansatz, qaoa_maxcut_ansatz
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GATE_SPECS
from repro.circuit.parameters import Parameter
from repro.engine import (
    DiagonalOp,
    MatrixOp,
    ProgramCache,
    compile_circuit,
    execute_program,
    marginal_probabilities,
    parameter_plan,
    plan_slot_values,
    slot_values_from_circuits,
)
from repro.simulator.statevector import simulate_statevector

TOLERANCE = 1e-10

#: Every unitary gate the IR knows, grouped by arity.
ONE_QUBIT = [n for n, s in GATE_SPECS.items() if s.num_qubits == 1 and not s.is_directive]
TWO_QUBIT = [n for n, s in GATE_SPECS.items() if s.num_qubits == 2 and not s.is_directive]


def random_structure(rng: np.random.Generator, num_qubits: int, num_gates: int):
    """A random circuit over the full alphabet with symbolic rotation slots."""
    circuit = QuantumCircuit(num_qubits, name="random")
    params = []
    for g in range(num_gates):
        if rng.random() < 0.55:
            name = ONE_QUBIT[rng.integers(len(ONE_QUBIT))]
            qubits = [int(rng.integers(num_qubits))]
        else:
            name = TWO_QUBIT[rng.integers(len(TWO_QUBIT))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            qubits = [int(a), int(b)]
        if GATE_SPECS[name].num_params:
            # Mix bound floats, bare parameters, and affine expressions.
            roll = rng.random()
            if roll < 0.3:
                angle = float(rng.uniform(-np.pi, np.pi))
            else:
                p = Parameter(f"p{g}")
                params.append(p)
                angle = p if roll < 0.7 else float(rng.uniform(0.2, 2.0)) * p + float(
                    rng.uniform(-0.5, 0.5)
                )
            circuit.add_gate(name, qubits, [angle])
        else:
            circuit.add_gate(name, qubits)
    return circuit


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_fused_unfused_and_reference_agree(self, seed):
        rng = np.random.default_rng(1000 + seed)
        num_qubits = int(rng.integers(2, 6))
        circuit = random_structure(rng, num_qubits, int(rng.integers(8, 40)))
        num_params = len(circuit.ordered_parameters())
        theta = rng.uniform(-2 * np.pi, 2 * np.pi, (4, num_params))

        programs = {
            "fused": compile_circuit(circuit),
            "unfused": compile_circuit(circuit, fuse=False),
            "matrices-only": compile_circuit(circuit, fuse=False, diagonals=False),
            "fused-no-diag": compile_circuit(circuit, fuse=True, diagonals=False),
        }
        references = [
            simulate_statevector(circuit.assign_by_order(row)).data for row in theta
        ]
        for label, program in programs.items():
            plan = parameter_plan(circuit, program)
            states = execute_program(program, plan_slot_values(plan, theta))
            for row, reference in zip(states, references):
                delta = float(np.max(np.abs(row - reference)))
                assert delta < TOLERANCE, f"{label} diverged by {delta:.2e}"

    @pytest.mark.parametrize("seed", range(6))
    def test_bound_circuit_extraction_matches_plan(self, seed):
        rng = np.random.default_rng(2000 + seed)
        circuit = random_structure(rng, 4, 20)
        num_params = len(circuit.ordered_parameters())
        theta = rng.uniform(-np.pi, np.pi, (3, num_params))
        program = compile_circuit(circuit)
        plan = parameter_plan(circuit, program)
        via_plan = execute_program(program, plan_slot_values(plan, theta))
        bound = [circuit.assign_by_order(row) for row in theta]
        via_extraction = execute_program(program, slot_values_from_circuits(program, bound))
        assert np.max(np.abs(via_plan - via_extraction)) == 0.0


class TestFusionStructure:
    def test_single_wire_run_folds_to_one_constant_op(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.s(0)
        qc.h(0)
        qc.t(1)
        program = compile_circuit(qc)
        matrix_ops = [op for op in program.ops if isinstance(op, MatrixOp)]
        # h·s·h on wire 0 folds to one 2x2; t(1) becomes a diagonal phase.
        assert len(matrix_ops) == 1
        assert matrix_ops[0].qubits == (0,)
        assert matrix_ops[0].matrix is not None

    def test_qaoa_cost_layer_becomes_one_diagonal_op(self):
        template = qaoa_maxcut_ansatz(4, [(0, 1), (1, 2), (2, 3), (0, 3)], num_layers=1)
        program = compile_circuit(template)
        diag_ops = [op for op in program.ops if isinstance(op, DiagonalOp)]
        assert len(diag_ops) == 1  # all four rzz gates merged
        assert len(diag_ops[0].slots) == 4

    def test_same_pair_two_qubit_gates_fuse(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(0, 1)
        qc.swap(0, 1)
        program = compile_circuit(qc, diagonals=False)
        assert program.num_ops == 1
        op = program.ops[0]
        assert isinstance(op, MatrixOp) and set(op.qubits) == {0, 1}

    def test_reversed_pair_fusion_permutes_correctly(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        qc.cx(0, 1)
        program = compile_circuit(qc)
        assert program.num_ops == 1
        state = execute_program(compile_circuit(qc), batch=1)[0]
        assert np.max(np.abs(state - simulate_statevector(qc).data)) < TOLERANCE

    def test_identity_gates_are_eliminated(self):
        qc = QuantumCircuit(2)
        qc.id(0)
        qc.id(1)
        program = compile_circuit(qc)
        assert program.num_ops == 0
        state = execute_program(program, batch=2)
        assert np.allclose(state[:, 0], 1.0)

    def test_ghz_compiles_below_gate_count(self):
        program = compile_circuit(ghz_state(4))
        assert program.num_ops < program.source_gates


class TestProgramCache:
    def test_structure_sharing_across_bindings(self):
        cache = ProgramCache()
        template = hardware_efficient_ansatz(4)
        values = np.linspace(0.0, 1.5, len(template.ordered_parameters()))
        first = cache.get_or_compile(template)
        second = cache.get_or_compile(template.assign_by_order(values))
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_distinct_structures_get_distinct_programs(self):
        cache = ProgramCache()
        a = cache.get_or_compile(ghz_state(3))
        b = cache.get_or_compile(ghz_state(4))
        assert a is not b
        assert len(cache) == 2


class TestExecutorContracts:
    def test_slot_count_mismatch_raises(self):
        program = compile_circuit(hardware_efficient_ansatz(3))
        with pytest.raises(ValueError):
            execute_program(program, np.zeros((2, program.num_slots + 1)))

    def test_marginal_probabilities_match_statevector(self):
        rng = np.random.default_rng(7)
        circuit = random_structure(rng, 4, 18)
        theta = rng.uniform(-np.pi, np.pi, (2, len(circuit.ordered_parameters())))
        program = compile_circuit(circuit)
        plan = parameter_plan(circuit, program)
        states = execute_program(program, plan_slot_values(plan, theta))
        for qubits in ([0, 2], [3, 1, 0], [2]):
            probs = marginal_probabilities(states, qubits, 4)
            for row, values in zip(probs, theta):
                reference = simulate_statevector(
                    circuit.assign_by_order(values)
                ).probabilities(qubits)
                assert np.max(np.abs(row - reference)) < TOLERANCE

    def test_bit_ordering_contract(self):
        # qubit 0 is the most significant bit: x(0) on |00> lands on index 2.
        qc = QuantumCircuit(2)
        qc.x(0)
        state = execute_program(compile_circuit(qc), batch=1)[0]
        assert np.argmax(np.abs(state)) == 0b10
