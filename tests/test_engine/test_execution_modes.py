"""Big-``n`` execution modes: tiled batches and complex64 precision.

Tiling must be *bit-exact* against the untiled pass (every op acts on batch
rows independently), while complex64 execution trades ~1e-6 amplitude error
for half the memory.  Both are checked across the same structure space as
the compiler equivalence suite: fused, unfused, diagonal-disabled, and
parameterless programs.
"""

import numpy as np
import pytest

from test_compiler import random_structure

from repro.circuit import ghz_state, hardware_efficient_ansatz, qaoa_maxcut_ansatz
from repro.circuit.circuit import QuantumCircuit
from repro.engine import (
    DiagonalOp,
    compile_circuit,
    execute_program,
    marginal_distribution,
    parameter_plan,
    plan_slot_values,
)

C64_TOLERANCE = 1e-5
TILE_TOLERANCE = 1e-10


def _random_sweep(seed, *, points=11):
    rng = np.random.default_rng(seed)
    num_qubits = int(rng.integers(2, 6))
    circuit = random_structure(rng, num_qubits, int(rng.integers(8, 32)))
    program = compile_circuit(circuit)
    plan = parameter_plan(circuit, program)
    theta = rng.uniform(-2 * np.pi, 2 * np.pi, (points, len(circuit.ordered_parameters())))
    return program, plan_slot_values(plan, theta)


class TestTiledExecution:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("tile", [1, 3, 4, 64])
    def test_tiled_matches_untiled(self, seed, tile):
        # Identical up to BLAS reduction order in the diagonal-op slot
        # matmul, which can differ between a 1-row and an N-row product.
        program, slots = _random_sweep(2000 + seed)
        base = execute_program(program, slots)
        tiled = execute_program(program, slots, tile=tile)
        assert tiled.dtype == base.dtype
        assert np.max(np.abs(base - tiled)) <= TILE_TOLERANCE

    def test_tile_covering_whole_batch_single_pass(self):
        program, slots = _random_sweep(77, points=5)
        # tile >= batch takes the untiled code path and is exactly equal.
        assert np.array_equal(
            execute_program(program, slots),
            execute_program(program, slots, tile=5),
        )

    def test_unfused_and_matrices_only_programs(self):
        rng = np.random.default_rng(4321)
        circuit = random_structure(rng, 4, 20)
        theta = rng.uniform(-np.pi, np.pi, (9, len(circuit.ordered_parameters())))
        for program in (
            compile_circuit(circuit, fuse=False),
            compile_circuit(circuit, fuse=False, diagonals=False),
        ):
            slots = plan_slot_values(parameter_plan(circuit, program), theta)
            base = execute_program(program, slots)
            tiled = execute_program(program, slots, tile=2)
            assert np.max(np.abs(base - tiled)) <= TILE_TOLERANCE

    def test_parameterless_program(self):
        program = compile_circuit(ghz_state(4))
        base = execute_program(program, batch=7)
        assert np.array_equal(base, execute_program(program, batch=7, tile=3))

    def test_tile_validation(self):
        program, slots = _random_sweep(5, points=3)
        with pytest.raises(ValueError):
            execute_program(program, slots, tile=0)


class TestComplex64Execution:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_parity(self, seed):
        program, slots = _random_sweep(3000 + seed)
        base = execute_program(program, slots)
        single = execute_program(program, slots, dtype=np.complex64)
        assert single.dtype == np.complex64
        assert np.max(np.abs(base - single)) <= C64_TOLERANCE

    def test_combined_with_tiling(self):
        program, slots = _random_sweep(99, points=13)
        base = execute_program(program, slots)
        tiled = execute_program(program, slots, dtype=np.complex64, tile=4)
        untiled = execute_program(program, slots, dtype=np.complex64)
        assert tiled.dtype == np.complex64
        assert np.max(np.abs(tiled - untiled)) <= C64_TOLERANCE
        assert np.max(np.abs(base - tiled)) <= C64_TOLERANCE

    def test_diagonal_heavy_program(self):
        circuit = qaoa_maxcut_ansatz(4, [(0, 1), (1, 2), (2, 3), (0, 3)], num_layers=2)
        program = compile_circuit(circuit)
        plan = parameter_plan(circuit, program)
        theta = np.random.default_rng(8).uniform(-1, 1, (6, len(circuit.ordered_parameters())))
        slots = plan_slot_values(plan, theta)
        base = execute_program(program, slots)
        single = execute_program(program, slots, dtype=np.complex64)
        assert np.max(np.abs(base - single)) <= C64_TOLERANCE

    def test_parameterless_program(self):
        program = compile_circuit(ghz_state(5))
        single = execute_program(program, batch=3, dtype=np.complex64)
        assert single.dtype == np.complex64
        assert np.max(np.abs(execute_program(program, batch=3) - single)) <= C64_TOLERANCE

    def test_dtype_validation(self):
        program, slots = _random_sweep(7, points=2)
        with pytest.raises(ValueError):
            execute_program(program, slots, dtype=np.float64)

    def test_default_dtype_unchanged(self):
        program, slots = _random_sweep(11, points=2)
        assert execute_program(program, slots).dtype == np.complex128


class TestScratchDeferral:
    def test_diagonal_only_program_never_allocates_scratch(self, monkeypatch):
        """A diagonal-only program must run in a single ping buffer."""
        circuit = QuantumCircuit(3, name="phases")
        from repro.circuit.parameters import Parameter

        a, b = Parameter("a"), Parameter("b")
        circuit.add_gate("rz", [0], [a])
        circuit.add_gate("rzz", [0, 1], [b])
        circuit.add_gate("cp", [1, 2], [0.3])
        program = compile_circuit(circuit)
        assert all(type(op) is DiagonalOp for op in program.ops)
        slots = plan_slot_values(
            parameter_plan(circuit, program),
            np.random.default_rng(0).uniform(-1, 1, (4, 2)),
        )

        calls = []
        real_empty_like = np.empty_like
        monkeypatch.setattr(
            np, "empty_like", lambda *a, **k: (calls.append(1), real_empty_like(*a, **k))[1]
        )
        execute_program(program, slots)
        assert calls == []

    def test_matrix_program_allocates_scratch_once(self, monkeypatch):
        program = compile_circuit(hardware_efficient_ansatz(3))
        circuit = hardware_efficient_ansatz(3)
        slots = plan_slot_values(
            parameter_plan(circuit, program),
            np.random.default_rng(1).uniform(-1, 1, (4, len(circuit.ordered_parameters()))),
        )
        calls = []
        real_empty_like = np.empty_like
        monkeypatch.setattr(
            np, "empty_like", lambda *a, **k: (calls.append(1), real_empty_like(*a, **k))[1]
        )
        execute_program(program, slots)
        assert len(calls) == 1


class TestMarginalDtypes:
    def test_float32_stack_stays_float32(self):
        probs = np.random.default_rng(3).random((4, 16)).astype(np.float32)
        marg = marginal_distribution(probs, [0, 2], 4)
        assert marg.dtype == np.float32
        reference = marginal_distribution(probs.astype(np.float64), [0, 2], 4)
        assert np.allclose(marg, reference, atol=1e-6)

    def test_float64_unchanged(self):
        probs = np.random.default_rng(4).random((2, 8))
        assert marginal_distribution(probs, [0, 1, 2], 3).dtype == np.float64
