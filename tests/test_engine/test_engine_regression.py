"""Seeded-history regressions pinning the compiled execution path.

The golden values below were captured from the pre-engine code (the PR-1
backend layer).  The compiled engine changes *how* probabilities are
computed (fusion, diagonal phase ops, zero-rebind sweeps) but not which
distributions are sampled or in which order, so a fixed seed must reproduce
every history bit for bit — this is the proof that CloudProvider/trainer
RNG consumption is unchanged.
"""

import numpy as np

from repro.backends import BatchedStatevectorBackend, StatevectorBackend
from repro.baselines.ideal import IdealTrainer
from repro.vqa import heisenberg_vqe_problem
from repro.vqa.gradient import (
    parameter_shift_batch,
    sampled_parameter_shift_gradient,
    shifted_theta_matrix,
)

#: sampled_parameter_shift_gradient(heisenberg estimator,
#: linspace(0.2, 1.1, 16), shots=256, seed=11) — captured from the PR-1 code
#: for both the sequential and the batched backend (they agreed bit-exactly).
GOLDEN_GRADIENT_HEX = [
    "-0x1.2200000000000p-1",
    "-0x1.0a00000000000p+0",
    "-0x1.8100000000000p+0",
    "-0x1.cf00000000000p+0",
    "0x1.5000000000000p-3",
    "-0x1.f000000000000p-4",
    "0x1.e000000000000p-3",
    "0x1.0800000000000p-2",
    "-0x1.1800000000000p-2",
    "-0x1.6c00000000000p-1",
    "-0x1.5000000000000p-2",
    "-0x1.b400000000000p+0",
    "-0x1.8800000000000p-3",
    "-0x1.b000000000000p-4",
    "0x1.9800000000000p-2",
    "0x1.1000000000000p-4",
]

#: IdealTrainer(heisenberg estimator, shots=256, seed=3).train(theta, 3)
#: losses — captured from the PR-1 code.
GOLDEN_IDEAL_LOSSES_HEX = [
    "0x1.3162cd35a5ac3p+2",
    "0x1.baaf26f03ee1dp+1",
    "0x1.0896db9386300p+1",
]


def _theta(estimator):
    return np.linspace(0.2, 1.1, estimator.num_parameters)


class TestGradientRngConsumption:
    def test_sequential_backend_gradient_is_bit_exact(self, vqe_problem):
        grad = sampled_parameter_shift_gradient(
            vqe_problem.estimator,
            _theta(vqe_problem.estimator),
            StatevectorBackend(),
            shots=256,
            seed=11,
        )
        assert [v.hex() for v in grad] == GOLDEN_GRADIENT_HEX

    def test_batched_backend_gradient_is_bit_exact(self, vqe_problem):
        grad = sampled_parameter_shift_gradient(
            vqe_problem.estimator,
            _theta(vqe_problem.estimator),
            BatchedStatevectorBackend(),
            shots=256,
            seed=11,
        )
        assert [v.hex() for v in grad] == GOLDEN_GRADIENT_HEX

    def test_run_sweep_consumes_rng_like_bound_run(self, vqe_problem):
        """Zero-rebind sweeps draw the same samples, in the same order, as
        submitting the pre-bound circuit batch — the RNG-stream contract."""
        estimator = vqe_problem.estimator
        theta = _theta(estimator)
        matrix = shifted_theta_matrix(theta, [0, 3, 5])
        backend = BatchedStatevectorBackend()
        swept = backend.run_sweep(
            estimator.template_circuits(),
            matrix,
            shots=512,
            rng=np.random.default_rng(77),
        )
        circuits = parameter_shift_batch(estimator, theta, [0, 3, 5])
        bound = backend.run(circuits, shots=512, rng=np.random.default_rng(77))
        assert len(swept) == len(bound)
        for a, b in zip(swept, bound):
            assert dict(a.counts) == dict(b.counts)


class TestTrainerHistoryRegression:
    def test_ideal_trainer_history_is_bit_exact(self, vqe_problem):
        history = IdealTrainer(vqe_problem.estimator, shots=256, seed=3).train(
            _theta(vqe_problem.estimator), num_epochs=3
        )
        assert [float(l).hex() for l in history.losses] == GOLDEN_IDEAL_LOSSES_HEX


class TestExactEnergyParity:
    def test_compiled_sweep_matches_dense_reference(self, vqe_problem):
        estimator = vqe_problem.estimator
        rng = np.random.default_rng(5)
        theta = rng.uniform(-np.pi, np.pi, (6, estimator.num_parameters))
        swept = estimator.exact_energies(theta)
        dense = np.array([estimator.exact_energy(row) for row in theta])
        assert np.max(np.abs(swept - dense)) < 1e-10
