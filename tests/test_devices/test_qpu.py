"""Tests for the simulated QPU model."""

import numpy as np
import pytest

from repro.circuit import ghz_state
from repro.devices.catalog import build_qpu
from repro.devices.qpu import CircuitFootprint, success_probability
from repro.devices.topology import line_topology
from repro.noise.calibration import CalibrationSnapshot
from repro.transpiler import transpile


@pytest.fixture(scope="module")
def bogota():
    return build_qpu("Bogota")


@pytest.fixture(scope="module")
def ghz_footprint(bogota):
    return transpile(ghz_state(4), bogota.topology).footprint


class TestCircuitFootprint:
    def test_from_circuit(self):
        footprint = CircuitFootprint.from_circuit(ghz_state(3))
        assert footprint.num_two_qubit_gates == 2
        assert footprint.num_measurements == 3

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            CircuitFootprint(-1, 0, 0, 0)


class TestCalibrationLifecycle:
    def test_cycle_indexing(self, bogota):
        period = bogota.spec.calibration_period_hours * 3600
        assert bogota.calibration_cycle(0.0) == 0
        assert bogota.calibration_cycle(period + 1) == 1

    def test_hours_since_calibration_wraps(self, bogota):
        period = bogota.spec.calibration_period_hours * 3600
        assert bogota.hours_since_calibration(period + 3600) == pytest.approx(1.0)

    def test_reported_calibration_constant_within_cycle(self, bogota):
        a = bogota.reported_calibration(1000.0)
        b = bogota.reported_calibration(50000.0)
        assert a.average_cx_error == pytest.approx(b.average_cx_error)

    def test_reported_calibration_changes_at_recalibration(self, bogota):
        period = bogota.spec.calibration_period_hours * 3600
        a = bogota.reported_calibration(1000.0)
        b = bogota.reported_calibration(period + 1000.0)
        assert a.average_cx_error != pytest.approx(b.average_cx_error)

    def test_effective_calibration_is_worse_or_equal(self, bogota):
        now = 20 * 3600.0
        reported = bogota.reported_calibration(now)
        effective = bogota.effective_calibration(now)
        assert effective.average_cx_error >= reported.average_cx_error

    def test_estimated_calibration_between_reported_and_effective(self, bogota):
        now = 20 * 3600.0
        reported = bogota.reported_calibration(now)
        estimated = bogota.estimated_calibration(now)
        assert estimated.average_cx_error >= reported.average_cx_error

    def test_drift_factor_at_least_one(self, bogota):
        for hour in (0, 5, 12, 23):
            assert bogota.drift_factor(hour * 3600.0) >= 1.0


class TestSuccessProbability:
    def test_formula_bounds(self, bogota, ghz_footprint):
        for hour in (0, 6, 18):
            p = bogota.true_success_probability(ghz_footprint, hour * 3600.0)
            assert 0.0 <= p <= 1.0

    def test_bigger_circuits_are_less_likely_to_succeed(self, bogota):
        small = transpile(ghz_state(2), bogota.topology).footprint
        large = transpile(ghz_state(5), bogota.topology).footprint
        now = 3600.0
        assert bogota.true_success_probability(small, now) > bogota.true_success_probability(
            large, now
        )

    def test_crosstalk_lowers_success(self, bogota, ghz_footprint):
        calibration = bogota.reported_calibration(0.0)
        clean = success_probability(calibration, ghz_footprint, crosstalk=0.0, connectivity=0.0)
        dirty = success_probability(calibration, ghz_footprint, crosstalk=0.02, connectivity=4.0)
        assert dirty < clean

    def test_empty_footprint_is_certain(self, bogota):
        calibration = bogota.reported_calibration(0.0)
        footprint = CircuitFootprint(0, 0, 0, 0)
        assert success_probability(calibration, footprint) == pytest.approx(1.0)


class TestExecution:
    def test_execute_returns_counts_with_correct_shots(self, bogota, ghz_footprint, rng):
        result = bogota.execute(ghz_state(4), ghz_footprint, shots=512, now=3600.0, rng=rng)
        assert result.counts.shots == 512
        assert result.backend_name == "Bogota"
        assert result.duration_seconds > 0

    def test_execution_metadata(self, bogota, ghz_footprint, rng):
        result = bogota.execute(ghz_state(4), ghz_footprint, shots=128, now=7200.0, rng=rng)
        assert 0.0 <= result.metadata["success_probability"] <= 1.0
        assert result.metadata["calibration_age_hours"] == pytest.approx(2.0)

    def test_noisy_distribution_normalized(self, bogota, ghz_footprint):
        probs = bogota.noisy_distribution(ghz_state(4), ghz_footprint, now=3600.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_noisier_device_has_lower_success(self, ghz_footprint, rng):
        x2 = build_qpu("x2")
        bogota = build_qpu("Bogota")
        now = 3600.0
        assert x2.true_success_probability(
            ghz_footprint, now
        ) < bogota.true_success_probability(ghz_footprint, now)

    def test_job_duration_positive_and_slows_with_drift(self, bogota):
        base = bogota.spec.base_job_seconds
        assert bogota.job_duration_seconds(0.0) >= base * 0.99


class TestQPUSpecValidation:
    def test_topology_width_mismatch_rejected(self):
        from repro.devices.qpu import QPUSpec

        with pytest.raises(ValueError):
            QPUSpec(
                name="bad",
                num_qubits=3,
                processor="p",
                quantum_volume=8,
                topology=line_topology(5),
            )
