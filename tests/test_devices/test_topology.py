"""Tests for device topologies."""

import pytest

from repro.devices.topology import (
    Topology,
    fully_connected_topology,
    h_shape_topology,
    heavy_hex_topology,
    line_topology,
    manhattan_topology,
    t_shape_topology,
    toronto_topology,
)


class TestTopologyBasics:
    def test_edges_normalized_and_deduplicated(self):
        topo = Topology("t", 3, ((1, 0), (0, 1), (1, 2)))
        assert topo.edges == ((0, 1), (1, 2))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology("t", 2, ((0, 0),))

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Topology("t", 2, ((0, 5),))

    def test_are_connected(self):
        topo = line_topology(3)
        assert topo.are_connected(0, 1)
        assert topo.are_connected(1, 0)
        assert not topo.are_connected(0, 2)

    def test_neighbors_and_degree(self):
        topo = t_shape_topology()
        assert topo.neighbors(1) == (0, 2, 3)
        assert topo.degree(1) == 3

    def test_directed_couplings_double_edges(self):
        topo = line_topology(4)
        assert len(topo.directed_couplings) == 2 * len(topo.edges)

    def test_distance_and_path(self):
        topo = line_topology(5)
        assert topo.distance(0, 4) == 4
        assert topo.shortest_path(0, 2) == [0, 1, 2]

    def test_distance_matrix_symmetric(self):
        topo = t_shape_topology()
        dm = topo.distance_matrix
        assert dm[(0, 4)] == dm[(4, 0)] == 3

    def test_subgraph_connectivity(self):
        topo = fully_connected_topology(4)
        assert topo.subgraph_connectivity([0, 1, 2]) == pytest.approx(1.0)
        line = line_topology(4)
        assert line.subgraph_connectivity([0, 1, 3]) == pytest.approx(1.0 / 3.0)


class TestTopologyFamilies:
    def test_line(self):
        topo = line_topology(5)
        assert topo.num_qubits == 5
        assert len(topo.edges) == 4
        assert topo.is_connected

    def test_t_shape_matches_falcon_layout(self):
        topo = t_shape_topology()
        assert topo.num_qubits == 5
        assert len(topo.edges) == 4
        assert topo.degree(1) == 3  # the hub qubit

    def test_h_shape(self):
        topo = h_shape_topology()
        assert topo.num_qubits == 7
        assert topo.is_connected
        degrees = sorted(topo.degree(q) for q in range(7))
        assert degrees == [1, 1, 1, 1, 2, 3, 3]

    def test_fully_connected(self):
        topo = fully_connected_topology(5)
        assert len(topo.edges) == 10
        assert topo.average_degree == pytest.approx(4.0)

    def test_toronto_is_27_qubit_sparse(self):
        topo = toronto_topology()
        assert topo.num_qubits == 27
        assert topo.is_connected
        assert topo.average_degree < 2.5

    def test_manhattan_is_65_qubit_sparse(self):
        topo = manhattan_topology()
        assert topo.num_qubits == 65
        assert topo.is_connected
        assert topo.average_degree < 2.6

    def test_heavy_hex_parameters_validated(self):
        with pytest.raises(ValueError):
            heavy_hex_topology(0, 5)

    def test_connectivity_ordering_matches_paper(self):
        """Fully connected > heavy-hex > line in average degree."""
        assert (
            fully_connected_topology(5).average_degree
            > toronto_topology().average_degree
            > 0
        )
        assert line_topology(5).average_degree <= t_shape_topology().average_degree + 1e-9
