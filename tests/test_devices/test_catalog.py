"""Tests for the Table I device catalog."""

import pytest

from repro.devices.catalog import (
    DEFAULT_QAOA_FLEET,
    DEFAULT_VQE_FLEET,
    TABLE_I,
    available_devices,
    build_fleet,
    build_qpu,
    device_spec,
)


class TestCatalogContents:
    def test_contains_all_paper_devices(self):
        expected = {
            "Lima", "x2", "Belem", "Quito", "Manila", "Santiago",
            "Bogota", "Lagos", "Casablanca", "Toronto", "Manhattan",
        }
        assert set(TABLE_I.keys()) == expected

    def test_qubit_counts_match_table1(self):
        expected = {
            "Lima": 5, "x2": 5, "Belem": 5, "Quito": 5, "Manila": 5,
            "Santiago": 5, "Bogota": 5, "Lagos": 7, "Casablanca": 7,
            "Toronto": 27, "Manhattan": 65,
        }
        for name, qubits in expected.items():
            assert TABLE_I[name].num_qubits == qubits

    def test_quantum_volumes_match_table1(self):
        expected = {
            "Lima": 8, "x2": 8, "Belem": 16, "Quito": 16, "Manila": 32,
            "Santiago": 16, "Bogota": 32, "Lagos": 32, "Casablanca": 32,
            "Toronto": 32, "Manhattan": 32,
        }
        for name, qv in expected.items():
            assert TABLE_I[name].quantum_volume == qv

    def test_x2_is_fully_connected(self):
        spec = TABLE_I["x2"]
        assert spec.topology.average_degree == pytest.approx(4.0)

    def test_line_devices(self):
        for name in ("Manila", "Santiago", "Bogota"):
            assert len(TABLE_I[name].topology.edges) == 4
            assert max(TABLE_I[name].topology.degree(q) for q in range(5)) == 2

    def test_x2_is_noisiest_five_qubit_device(self):
        x2 = TABLE_I["x2"].noise_profile
        for name in ("Belem", "Quito", "Manila", "Bogota", "Santiago", "Lima"):
            assert x2.cx_error > TABLE_I[name].noise_profile.cx_error

    def test_slow_devices_have_large_job_seconds(self):
        assert TABLE_I["Manhattan"].base_job_seconds > TABLE_I["Santiago"].base_job_seconds
        assert TABLE_I["Santiago"].base_job_seconds > TABLE_I["Bogota"].base_job_seconds

    def test_ensemble_bias_roughly_cancels(self):
        """The fleet's coherent biases average close to zero, which is what
        lets the ensemble dampen device-specific bias (paper Section V-C)."""
        biases = [TABLE_I[name].noise_profile.coherent_bias for name in DEFAULT_VQE_FLEET]
        assert abs(sum(biases) / len(biases)) < 0.01
        assert max(abs(b) for b in biases) > 0.01

    def test_unique_seeds(self):
        seeds = [spec.seed for spec in TABLE_I.values()]
        assert len(set(seeds)) == len(seeds)


class TestCatalogAccess:
    def test_available_devices(self):
        assert set(available_devices()) == set(TABLE_I.keys())

    def test_device_spec_case_insensitive(self):
        assert device_spec("bogota").name == "Bogota"

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            device_spec("nonexistent")

    def test_build_qpu(self):
        qpu = build_qpu("Lima")
        assert qpu.name == "Lima"
        assert qpu.num_qubits == 5

    def test_build_fleet_default(self):
        fleet = build_fleet()
        assert [q.name for q in fleet] == list(DEFAULT_VQE_FLEET)

    def test_default_fleets_are_subsets_of_catalog(self):
        assert set(DEFAULT_VQE_FLEET) <= set(TABLE_I.keys())
        assert set(DEFAULT_QAOA_FLEET) <= set(TABLE_I.keys())
        assert len(DEFAULT_VQE_FLEET) == 10
        assert len(DEFAULT_QAOA_FLEET) == 8
