"""Seeded-history regression tests pinning the refactored execution stack.

The golden values below were captured from the pre-backend (seed) code.
Both the pluggable-backend refactor and the compiled-engine rewire must
leave every seeded history bit-exact: the execution paths sample the same
distributions in the same order from the same RNG streams, and the compiled
probabilities agree with the historical ones far below the multinomial
sampler's decision thresholds.
"""

import numpy as np

from repro.backends import BatchedStatevectorBackend
from repro.baselines.ideal import IdealTrainer
from repro.core.ensemble import EQCConfig, EQCEnsemble
from repro.core.objective import EnergyObjective
from repro.vqa import heisenberg_vqe_problem

#: EQCEnsemble.train on ("x2", "Belem", "Bogota"), shots=512, seed=7,
#: theta = linspace(0.1, 1.6, 16), 3 epochs — captured from the seed code.
GOLDEN_EQC_LOSSES_HEX = [
    "0x1.10fcf2a498d71p+2",
    "0x1.b736331e78ed3p+1",
    "0x1.681b543bbe420p+1",
]
GOLDEN_EQC_HOURS_HEX = [
    "0x1.63f4b7cd1b847p-3",
    "0x1.583a87d2c68f9p-2",
    "0x1.069b989bbb035p-1",
]


def _golden_run():
    problem = heisenberg_vqe_problem()
    config = EQCConfig(device_names=("x2", "Belem", "Bogota"), shots=512, seed=7)
    theta = np.linspace(0.1, 1.6, 16)
    return EQCEnsemble(EnergyObjective(problem.estimator), config).train(
        theta, num_epochs=3
    )


class TestEnsembleHistoryRegression:
    def test_train_history_unchanged_for_fixed_seed(self):
        history = _golden_run()
        assert [float(l).hex() for l in history.losses] == GOLDEN_EQC_LOSSES_HEX
        assert [
            float(r.sim_time_hours).hex() for r in history.records
        ] == GOLDEN_EQC_HOURS_HEX


class TestIdealTrainerBackendRouting:
    def test_default_backend_is_sequential_reference(self, vqe_problem):
        trainer = IdealTrainer(vqe_problem.estimator, shots=128, seed=0)
        assert trainer.backend.name == "statevector"

    def test_batched_backend_converges_like_sequential(self, vqe_problem):
        """The batched engine is a drop-in: same problem, same trajectory
        statistics (exact per-step equality is not required — only the
        probabilities are pinned to 1e-10, not the multinomial draws)."""
        theta = vqe_problem.random_initial_parameters()
        sequential = IdealTrainer(vqe_problem.estimator, shots=2048, seed=5).train(
            theta, num_epochs=3
        )
        batched = IdealTrainer(
            vqe_problem.estimator,
            shots=2048,
            seed=5,
            backend=BatchedStatevectorBackend(),
        ).train(theta, num_epochs=3)
        assert batched.metadata["backend"] == "batched_statevector"
        assert abs(batched.losses[-1] - sequential.losses[-1]) < 0.5
