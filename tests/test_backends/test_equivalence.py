"""Batched-vs-sequential execution equivalence suite.

The batched statevector engine must agree with the looped reference to
better than 1e-10 on probabilities for every circuit family the paper uses
(GHZ, QAOA, VQE hardware-efficient ansatz), and the noisy backend must be
bit-exact with the legacy per-circuit device path for fixed seeds.
"""

import numpy as np
import pytest

from repro.backends import (
    BatchedStatevectorBackend,
    NoisyBackend,
    StatevectorBackend,
    simulate_statevector_batch,
)
from repro.circuit import ghz_state, hardware_efficient_ansatz, qaoa_maxcut_ansatz
from repro.devices import build_qpu
from repro.devices.qpu import CircuitFootprint
from repro.simulator.statevector import simulate_statevector

TOLERANCE = 1e-10


def _random_bindings(template, batch, seed):
    rng = np.random.default_rng(seed)
    count = len(template.ordered_parameters())
    return [rng.uniform(-np.pi, np.pi, count) for _ in range(batch)]


@pytest.fixture(params=["ghz", "qaoa", "vqe"])
def circuit_family(request):
    if request.param == "ghz":
        return ghz_state(4)
    if request.param == "qaoa":
        return qaoa_maxcut_ansatz(4, [(0, 1), (1, 2), (2, 3), (0, 3)], num_layers=2)
    return hardware_efficient_ansatz(5)


class TestBatchedIdealEquivalence:
    def test_states_match_looped_simulator(self, circuit_family):
        bound = [
            circuit_family.assign_by_order(values)
            for values in _random_bindings(circuit_family, 12, seed=7)
        ]
        states = simulate_statevector_batch(bound)
        for row, circuit in zip(states, bound):
            reference = simulate_statevector(circuit).data
            assert np.max(np.abs(row - reference)) < TOLERANCE

    def test_probabilities_match_sequential_backend(self, circuit_family):
        bound = [
            circuit_family.assign_by_order(values)
            for values in _random_bindings(circuit_family, 16, seed=11)
        ]
        batched = BatchedStatevectorBackend().probabilities(bound)
        sequential = StatevectorBackend().probabilities(bound)
        for b, s in zip(batched, sequential):
            assert np.max(np.abs(b - s)) < TOLERANCE

    def test_template_with_bindings_equals_prebound(self, circuit_family):
        bindings = _random_bindings(circuit_family, 6, seed=3)
        via_template = BatchedStatevectorBackend().run(
            circuit_family, parameter_bindings=bindings, shots=512, seed=5
        )
        prebound = BatchedStatevectorBackend().run(
            [circuit_family.assign_by_order(v) for v in bindings], shots=512, seed=5
        )
        for a, b in zip(via_template, prebound):
            assert dict(a.counts) == dict(b.counts)

    def test_mixed_structure_batch_is_partitioned(self):
        ghz = ghz_state(4)
        vqe = hardware_efficient_ansatz(4).assign_by_order([0.3] * 16)
        results = BatchedStatevectorBackend().run([ghz, vqe, ghz], shots=256, seed=0)
        assert len(results) == 3
        assert results[0].metadata["structure_groups"] == 2
        # GHZ only ever measures all-zeros / all-ones ideally.
        assert set(results[0].counts) <= {"0000", "1111"}
        assert set(results[2].counts) <= {"0000", "1111"}

    def test_shared_and_divergent_angles_in_one_batch(self):
        """Exercises both the broadcast (equal-angle) and the stacked
        (per-element matrices) gate paths in one simulation."""
        template = qaoa_maxcut_ansatz(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        base = np.array([0.4, -0.9])
        bindings = [base, base, base + [0.0, 0.5], base + [-0.3, 0.0]]
        bound = [template.assign_by_order(v) for v in bindings]
        batched = BatchedStatevectorBackend().probabilities(bound)
        for probs, circuit in zip(batched, bound):
            reference = simulate_statevector(circuit).probabilities(
                list(circuit.measured_qubits)
            )
            assert np.max(np.abs(probs - reference)) < TOLERANCE


class TestNoisyEquivalence:
    @pytest.mark.parametrize("device_name", ["Belem", "Toronto"])
    def test_noisy_batch_matches_legacy_sequential_loop(self, device_name):
        """NoisyBackend.run == the pre-refactor provider loop, bit for bit."""
        template = hardware_efficient_ansatz(4)
        bound = [
            template.assign_by_order(values)
            for values in _random_bindings(template, 4, seed=13)
        ]
        footprint = CircuitFootprint.from_circuit(bound[0])
        now = 1800.0
        shots = 512

        legacy_qpu = build_qpu(device_name)
        legacy_rng = np.random.default_rng(99)
        legacy = []
        elapsed = 0.0
        for circuit in bound:
            result = legacy_qpu.execute(
                circuit, footprint, shots, now=now + elapsed, rng=legacy_rng
            )
            legacy.append(result)
            elapsed += result.duration_seconds / 2.0

        backend = NoisyBackend(build_qpu(device_name))
        batched = backend.run(
            bound,
            shots=shots,
            footprint=footprint,
            now=now,
            rng=np.random.default_rng(99),
        )

        assert len(batched) == len(legacy)
        for new, old in zip(batched, legacy):
            assert dict(new.counts) == dict(old.counts)
            assert new.duration_seconds == old.duration_seconds
            assert new.metadata["success_probability"] == old.metadata["success_probability"]

    def test_seeded_run_is_reproducible(self):
        backend = NoisyBackend(build_qpu("Belem"))
        circuit = ghz_state(4)
        a = backend.run([circuit], shots=256, seed=21, now=0.0)
        b = backend.run([circuit], shots=256, seed=21, now=0.0)
        assert dict(a[0].counts) == dict(b[0].counts)
