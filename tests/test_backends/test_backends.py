"""Protocol-level tests for the execution-backend layer."""

import numpy as np
import pytest

from repro.backends import (
    BatchedStatevectorBackend,
    ExecutionBackend,
    NoisyBackend,
    StatevectorBackend,
    TranspileCache,
    normalize_batch,
    structure_signature,
)
from repro.circuit import ghz_state, hardware_efficient_ansatz
from repro.devices import build_qpu
from repro.vqa import heisenberg_vqe_problem, sampled_parameter_shift_gradient
from repro.vqa.gradient import exact_full_gradient, parameter_shift_batch


class TestProtocol:
    @pytest.mark.parametrize(
        "backend",
        [StatevectorBackend(), BatchedStatevectorBackend(), NoisyBackend(build_qpu("Belem"))],
        ids=["statevector", "batched", "noisy"],
    )
    def test_implementations_satisfy_protocol(self, backend):
        assert isinstance(backend, ExecutionBackend)
        assert isinstance(backend.name, str)

    @pytest.mark.parametrize(
        "backend", [StatevectorBackend(), BatchedStatevectorBackend()]
    )
    def test_run_returns_one_result_per_circuit(self, backend):
        circuits = [ghz_state(3), ghz_state(3), ghz_state(4)]
        results = backend.run(circuits, shots=128, seed=1)
        assert len(results) == 3
        assert all(r.shots == 128 for r in results)
        assert all(sum(r.counts.values()) == 128 for r in results)

    def test_seed_determinism(self):
        backend = BatchedStatevectorBackend()
        a = backend.run(ghz_state(4), shots=512, seed=42)
        b = backend.run(ghz_state(4), shots=512, seed=42)
        c = backend.run(ghz_state(4), shots=512, seed=43)
        assert dict(a[0].counts) == dict(b[0].counts)
        assert dict(a[0].counts) != dict(c[0].counts) or a[0].counts != c[0].counts


class TestNormalizeBatch:
    def test_broadcasts_template_over_bindings(self):
        template = hardware_efficient_ansatz(4)
        bound = normalize_batch(template, [[0.1] * 16, [0.2] * 16, [0.3] * 16])
        assert len(bound) == 3
        assert all(c.is_bound for c in bound)

    def test_pairwise_binding(self):
        t = hardware_efficient_ansatz(4)
        bound = normalize_batch([t, t], [[0.1] * 16, [0.2] * 16])
        assert len(bound) == 2

    def test_mapping_bindings(self):
        template = hardware_efficient_ansatz(4)
        mapping = {p: 0.5 for p in template.ordered_parameters()}
        bound = normalize_batch(template, [mapping])
        assert bound[0].is_bound

    def test_rejects_mismatched_lengths(self):
        t = hardware_efficient_ansatz(4)
        with pytest.raises(ValueError, match="align"):
            normalize_batch([t, t, t], [[0.1] * 16, [0.2] * 16])

    def test_rejects_unbound_leftovers(self):
        with pytest.raises(ValueError, match="unbound"):
            normalize_batch(hardware_efficient_ansatz(4))

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            normalize_batch([])


class TestStructureSignature:
    def test_bindings_share_signature(self):
        template = hardware_efficient_ansatz(4)
        a = template.assign_by_order([0.1] * 16)
        b = template.assign_by_order([0.9] * 16)
        assert structure_signature(a) == structure_signature(b)

    def test_different_structures_differ(self):
        assert structure_signature(ghz_state(4)) != structure_signature(ghz_state(5))


class TestTranspileCache:
    def test_shared_across_clients_with_common_topology(self):
        cache = TranspileCache()
        template = hardware_efficient_ansatz(4)
        topology = build_qpu("Belem").topology
        first = cache.get_or_transpile(template, topology)
        second = cache.get_or_transpile(template, topology)
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_distinct_topologies_get_distinct_entries(self):
        cache = TranspileCache()
        template = hardware_efficient_ansatz(4)
        cache.get_or_transpile(template, build_qpu("Belem").topology)
        cache.get_or_transpile(template, build_qpu("Toronto").topology)
        assert len(cache) == 2
        assert cache.misses == 2

    def test_ensemble_clients_share_one_cache(self):
        from repro.core.ensemble import EQCConfig, EQCEnsemble
        from repro.core.objective import EnergyObjective

        problem = heisenberg_vqe_problem()
        ensemble = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(device_names=("x2", "Belem", "Bogota"), shots=128, seed=0),
        )
        assert all(
            client.transpile_cache is ensemble.transpile_cache
            for client in ensemble.clients
        )


class TestBackendSwap:
    def test_ideal_backend_on_endpoint_keeps_device_clock(self):
        """Swapping an ideal backend into a cloud endpoint changes the
        physics, not the schedule: jobs still occupy device time."""
        from repro.baselines.single_device import SingleDeviceTrainer
        from repro.core.objective import EnergyObjective

        problem = heisenberg_vqe_problem()
        trainer = SingleDeviceTrainer(
            EnergyObjective(problem.estimator),
            "Belem",
            shots=128,
            seed=0,
            backend_factory=lambda qpu: StatevectorBackend(),
        )
        history = trainer.train(np.zeros(16), num_epochs=1)
        utilization = trainer.provider.utilization_report()["Belem"]
        assert history.total_hours() > 0
        assert utilization["busy_seconds"] > 0


class TestBackendGradient:
    def test_sampled_sweep_tracks_exact_gradient(self):
        problem = heisenberg_vqe_problem()
        theta = np.linspace(-0.4, 0.8, problem.estimator.num_parameters)
        exact = exact_full_gradient(problem.estimator, theta)
        sampled = sampled_parameter_shift_gradient(
            problem.estimator,
            theta,
            backend=BatchedStatevectorBackend(),
            shots=16384,
            seed=2,
        )
        assert sampled.shape == exact.shape
        assert np.max(np.abs(sampled - exact)) < 0.35

    def test_sweep_batch_is_one_structure_group(self):
        problem = heisenberg_vqe_problem()
        theta = np.zeros(problem.estimator.num_parameters)
        circuits = parameter_shift_batch(problem.estimator, theta)
        groups = problem.estimator.num_groups
        assert len(circuits) == 2 * len(theta) * groups
        signatures = {structure_signature(c) for c in circuits}
        # one signature per measurement group: the whole sweep vectorizes
        # into `groups` stacked passes regardless of parameter count
        assert len(signatures) == groups
