"""End-to-end recovery goldens: crash → resume must be bit-exact.

These tests pin the whole durability contract: a run interrupted at any
point resumes from its newest valid checkpoint, replays the journal suffix
with bit-for-bit verification, and finishes with a history identical to the
run that was never interrupted — with and without an active fault plan.
"""

import json
import zlib

import pytest

from repro import (
    EQCConfig,
    EQCEnsemble,
    EnergyObjective,
    FaultPlan,
    OutageWindow,
    RetryPolicy,
    resume,
)
from repro.persist.checkpoint import JournalDivergenceError, TrainingCheckpointer
from repro.persist.journal import read_journal
from repro.persist.store import RunDirectory, RunStore

NUM_EPOCHS = 5
SHOTS = 64
SEED = 1
DEVICES = ("x2", "Belem")

FAULT_PLAN = FaultPlan(
    transient_failure_rate=0.08,
    result_timeout_rate=0.05,
    result_delay_seconds=120.0,
    outages=(OutageWindow(device="Belem", start=2.0, duration=3.0),),
    seed=3,
)


def history_key(history):
    """Everything the resume-exactness golden compares, bitwise.

    ``noisy_loss`` is NaN when no noisy evaluation ran; NaN never compares
    equal to itself, so it is normalized to ``None`` for the comparison.
    """
    import math

    def noisy(value):
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return None
        return value

    return [
        (
            record.epoch,
            record.loss,
            noisy(record.noisy_loss),
            tuple(record.parameters),
            record.sim_time_hours,
            tuple(sorted(record.weights.items())),
        )
        for record in history.records
    ]


def make_config(tmp_path, faults=False, **overrides):
    kwargs = dict(
        device_names=DEVICES if not faults else DEVICES + ("Bogota",),
        shots=SHOTS,
        seed=SEED,
        checkpoint_every=1,
        run_store=str(tmp_path),
    )
    if faults:
        kwargs.update(fault_plan=FAULT_PLAN, retry_policy=RetryPolicy(max_attempts=4))
    kwargs.update(overrides)
    return EQCConfig(**kwargs)


class _Crash(Exception):
    pass


def train_until_crash(objective, config, theta0, crash_after_checkpoints):
    """Run a checkpointed training and kill it after N checkpoints."""
    original = TrainingCheckpointer.after_iteration

    def crashing(self, *args, **kwargs):
        original(self, *args, **kwargs)
        if self.checkpoints_written >= crash_after_checkpoints:
            raise _Crash()

    TrainingCheckpointer.after_iteration = crashing
    try:
        with pytest.raises(_Crash):
            EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)
    finally:
        TrainingCheckpointer.after_iteration = original


@pytest.fixture(scope="module")
def theta0(vqe_problem):
    return vqe_problem.random_initial_parameters(seed=7)


@pytest.fixture(scope="module")
def objective(vqe_problem):
    return EnergyObjective(vqe_problem.estimator)


@pytest.fixture(scope="module")
def plain_history(objective, theta0):
    """The never-checkpointed, never-interrupted reference run."""
    config = EQCConfig(device_names=DEVICES, shots=SHOTS, seed=SEED)
    return EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)


@pytest.fixture(scope="module")
def faulted_history(objective, theta0, tmp_path_factory):
    """Uninterrupted checkpointed run under the chaos plan."""
    store = tmp_path_factory.mktemp("faulted-baseline")
    config = make_config(store, faults=True)
    return EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)


class TestUninterrupted:
    def test_checkpointing_does_not_perturb_training(
        self, objective, theta0, plain_history, tmp_path
    ):
        config = make_config(tmp_path)
        history = EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)
        assert history_key(history) == history_key(plain_history)

    def test_run_store_artifacts(self, objective, theta0, tmp_path):
        config = make_config(tmp_path)
        history = EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)
        run = RunStore(tmp_path).load_run("run-000001")
        assert run.status() == "complete"
        assert run.manifest()["summary"]["total_updates"] == history.total_updates
        journal = read_journal(run.journal_path)
        assert journal.committed_updates == history.total_updates
        assert journal.torn_tail_bytes == 0
        # Stored history round-trips exactly.
        assert history_key(run.history()) == history_key(history)
        assert run.history().metadata == history.metadata

    def test_retention_bounds_generations(self, objective, theta0, tmp_path):
        config = make_config(tmp_path, checkpoint_retention=2)
        EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)
        run = RunStore(tmp_path).load_run("run-000001")
        names = [p.name for p in run.checkpoint_paths()]
        assert names == ["ckpt-000004.eqc", "ckpt-000005.eqc"]


class TestCrashResume:
    @pytest.mark.parametrize("crash_after", [1, 3])
    def test_resume_is_bit_exact(
        self, objective, theta0, plain_history, tmp_path, crash_after
    ):
        config = make_config(tmp_path)
        train_until_crash(objective, config, theta0, crash_after)
        run = RunStore(tmp_path).load_run("run-000001")
        assert run.status() == "running"
        assert len(run.checkpoint_paths()) == crash_after

        history = resume(run, objective)
        assert history_key(history) == history_key(plain_history)
        assert run.status() == "complete"
        assert history_key(run.history()) == history_key(history)

    def test_resume_completed_run_returns_stored_history(
        self, objective, theta0, plain_history, tmp_path
    ):
        config = make_config(tmp_path)
        train_until_crash(objective, config, theta0, 2)
        run = RunStore(tmp_path).load_run("run-000001")
        first = resume(run, objective)
        # Second resume is a no-op read of history.json, not a re-train.
        second = resume(run, objective)
        assert history_key(second) == history_key(first) == history_key(plain_history)

    def test_crash_before_first_checkpoint_restarts(
        self, objective, theta0, plain_history, tmp_path
    ):
        # Kill the run before any checkpoint exists: recovery restarts from
        # scratch with the whole journal as the replay-verification ledger.
        config = make_config(tmp_path, checkpoint_every=NUM_EPOCHS + 1)
        original = TrainingCheckpointer.record_update

        def crashing(self, master, outcome, weight, new_value):
            original(self, master, outcome, weight, new_value)
            if self.journal.records_written >= 5:
                raise _Crash()

        TrainingCheckpointer.record_update = crashing
        try:
            with pytest.raises(_Crash):
                EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)
        finally:
            TrainingCheckpointer.record_update = original

        run = RunStore(tmp_path).load_run("run-000001")
        assert run.checkpoint_paths() == []
        assert read_journal(run.journal_path).committed_updates == 5
        history = resume(run, objective)
        assert history_key(history) == history_key(plain_history)

    def test_config_mismatch_names_fields(self, objective, theta0, tmp_path):
        config = make_config(tmp_path)
        train_until_crash(objective, config, theta0, 1)
        run = RunStore(tmp_path).load_run("run-000001")
        drifted = make_config(tmp_path, seed=SEED + 1, shots=SHOTS * 2)
        with pytest.raises(ValueError, match=r"\['seed', 'shots'\]"):
            resume(run, objective, config=drifted)


class TestFaultPlanResume:
    def test_resume_under_chaos_is_bit_exact(
        self, objective, theta0, faulted_history, tmp_path
    ):
        config = make_config(tmp_path, faults=True)
        train_until_crash(objective, config, theta0, 2)
        run = RunStore(tmp_path).load_run("run-000001")
        history = resume(run, objective)
        assert history_key(history) == history_key(faulted_history)
        # The resilience metadata must survive recovery identically too:
        # fault counters, breaker transitions, provider-side fault counts.
        assert history.metadata["fault_stats"] == faulted_history.metadata["fault_stats"]
        assert history.metadata["breakers"] == faulted_history.metadata["breakers"]
        assert (
            history.metadata["provider_faults"]
            == faulted_history.metadata["provider_faults"]
        )


class TestCorruptionFallback:
    def _crashed_run(self, objective, theta0, tmp_path):
        config = make_config(tmp_path)
        train_until_crash(objective, config, theta0, 3)
        return RunStore(tmp_path).load_run("run-000001")

    def test_corrupted_latest_falls_back_one_generation(
        self, objective, theta0, plain_history, tmp_path
    ):
        run = self._crashed_run(objective, theta0, tmp_path)
        latest = run.checkpoint_paths()[-1]
        blob = bytearray(latest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        latest.write_bytes(bytes(blob))

        history = resume(run, objective)
        assert history_key(history) == history_key(plain_history)

    def test_fallback_is_recorded(self, objective, theta0, tmp_path):
        run = self._crashed_run(objective, theta0, tmp_path)
        latest = run.checkpoint_paths()[-1]
        latest.write_bytes(b"EQCCKPT\ngarbage")
        checkpointer = TrainingCheckpointer(
            run, checkpoint_every=1, provider=None, resume=True
        )
        try:
            assert checkpointer.fallbacks == [str(latest)]
            assert checkpointer.has_restore
        finally:
            checkpointer.close()

    def test_all_generations_corrupt_restarts_from_scratch(
        self, objective, theta0, plain_history, tmp_path
    ):
        run = self._crashed_run(objective, theta0, tmp_path)
        for path in run.checkpoint_paths():
            path.write_bytes(b"not a checkpoint")
        history = resume(run, objective)
        assert history_key(history) == history_key(plain_history)

    def test_torn_journal_tail_is_tolerated(
        self, objective, theta0, plain_history, tmp_path
    ):
        run = self._crashed_run(objective, theta0, tmp_path)
        with open(run.journal_path, "ab") as fh:
            fh.write(b'deadbeef {"update": 999, "gra')
        history = resume(run, objective)
        assert history_key(history) == history_key(plain_history)


class TestJournalDivergence:
    def test_tampered_journal_record_is_detected(self, objective, theta0, tmp_path):
        # Crash a few updates *past* the second checkpoint so the journal has
        # a replay suffix (a crash exactly at a checkpoint leaves none).
        config = make_config(tmp_path)
        original = TrainingCheckpointer.record_update

        def crashing(self, master, outcome, weight, new_value):
            original(self, master, outcome, weight, new_value)
            if self.checkpoints_written >= 2 and self.journal.records_written >= 35:
                raise _Crash()

        TrainingCheckpointer.record_update = crashing
        try:
            with pytest.raises(_Crash):
                EQCEnsemble(objective, config).train(theta0, num_epochs=NUM_EPOCHS)
        finally:
            TrainingCheckpointer.record_update = original
        run = RunStore(tmp_path).load_run("run-000001")

        # Rewrite the last journal record with a perturbed gradient but a
        # *valid* CRC frame — only replay verification can catch this.
        lines = run.journal_path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[-1][9:])
        record["gradient"] = record["gradient"] + 1.0
        body = json.dumps(record, separators=(",", ":")).encode()
        lines[-1] = b"%08x " % zlib.crc32(body) + body + b"\n"
        run.journal_path.write_bytes(b"".join(lines))

        with pytest.raises(JournalDivergenceError, match="gradient"):
            resume(run, objective)
