"""Tests for the CRC-framed write-ahead journal and torn-tail recovery."""

import zlib

from repro.persist.journal import JournalWriter, read_journal


def write_records(path, records):
    with JournalWriter(path) as journal:
        for record in records:
            journal.append(record)


RECORDS = [
    {"update": 1, "parameter_index": 0, "gradient": 0.25},
    {"update": 2, "parameter_index": 1, "gradient": -0.5},
    {"update": 3, "parameter_index": 2, "gradient": 0.125},
]


class TestRoundTrip:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, RECORDS)
        result = read_journal(path)
        assert list(result.records) == RECORDS
        assert result.torn_tail_bytes == 0
        assert result.committed_updates == 3

    def test_missing_file_is_empty_journal(self, tmp_path):
        result = read_journal(tmp_path / "absent.jsonl")
        assert result.records == ()
        assert result.torn_tail_bytes == 0
        assert result.committed_updates == 0

    def test_append_after_reopen_continues(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, RECORDS[:2])
        write_records(path, RECORDS[2:])  # reopen appends, never truncates
        assert list(read_journal(path).records) == RECORDS

    def test_frame_layout(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, RECORDS[:1])
        line = path.read_bytes()
        crc_hex, body = line[:8], line[9:-1]
        assert line[8:9] == b" " and line.endswith(b"\n")
        assert int(crc_hex, 16) == zlib.crc32(body)


class TestTornTail:
    def test_partial_last_line_discarded(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, RECORDS)
        with open(path, "ab") as fh:
            fh.write(b'deadbeef {"update": 4, "gra')  # crash mid-append
        result = read_journal(path)
        assert list(result.records) == RECORDS
        assert result.torn_tail_bytes == 27
        assert result.committed_updates == 3

    def test_crc_mismatch_stops_reading(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, RECORDS)
        blob = bytearray(path.read_bytes())
        # Flip one payload bit in the second record.
        second_start = blob.index(b"\n") + 1
        blob[second_start + 12] ^= 0x01
        path.write_bytes(bytes(blob))
        result = read_journal(path)
        # Only the first record survives; the damaged frame and everything
        # after it count as torn tail.
        assert list(result.records) == RECORDS[:1]
        assert result.torn_tail_bytes > 0
        assert result.committed_updates == 1

    def test_garbage_only_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b"not a journal at all\n")
        result = read_journal(path)
        assert result.records == ()
        assert result.torn_tail_bytes == 21


class TestWriterBookkeeping:
    def test_counts_records_and_fsyncs(self, tmp_path):
        journal = JournalWriter(tmp_path / "j.jsonl")
        for record in RECORDS:
            journal.append(record)
        assert journal.records_written == 3
        journal.sync()
        assert journal.fsyncs == 1
        journal.close()
        assert journal.fsyncs == 2  # close syncs once more
        journal.close()  # idempotent
        assert journal.fsyncs == 2
