"""Tests for the run store: layout, manifests, and config serialization."""

import json

import pytest

from repro import EQCConfig, FaultPlan, OutageWindow, RetryPolicy, WeightBounds
from repro.cloud.queueing import QueueModel
from repro.persist.store import (
    DURABILITY_FIELDS,
    RunStore,
    config_diff,
    config_from_dict,
    config_hash,
    config_to_dict,
    list_runs,
    load_run,
)

THETA = [0.1, -0.2, 0.3, 0.4]


def make_config(**overrides):
    kwargs = dict(device_names=("x2", "Belem"), shots=64, seed=3)
    kwargs.update(overrides)
    return EQCConfig(**kwargs)


FULL_CONFIG = make_config(
    device_names=("x2", "Belem", "Bogota"),
    learning_rate=0.05,
    weight_bounds=WeightBounds(low=0.4, high=1.6),
    refresh_weights=True,
    label="full",
    queue_models={"x2": QueueModel(mean_wait_seconds=180.0, popularity=0.8)},
    fault_plan=FaultPlan(
        transient_failure_rate=0.1,
        result_timeout_rate=0.02,
        result_delay_seconds=60.0,
        outages=(
            OutageWindow(device="Belem", start=1.0, duration=2.0),
            OutageWindow(device="x2", start=5.0, duration=float("inf"), permanent=True),
        ),
        seed=9,
    ),
    retry_policy=RetryPolicy(max_attempts=5),
    dispatch_deadline=7200.0,
    min_live_devices=1,
)


class TestConfigSerialization:
    def test_round_trip(self):
        rebuilt = config_from_dict(config_to_dict(FULL_CONFIG))
        assert config_to_dict(rebuilt) == config_to_dict(FULL_CONFIG)

    def test_round_trip_survives_json(self):
        # The manifest stores the dict as JSON; infinite outage durations
        # must survive that encoding too.
        data = json.loads(json.dumps(config_to_dict(FULL_CONFIG)))
        rebuilt = config_from_dict(data)
        assert config_to_dict(rebuilt) == config_to_dict(FULL_CONFIG)

    def test_minimal_config_round_trip(self):
        config = make_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_tenant_config_round_trip(self):
        # Tenant traffic uses the shared-kernel scheduler (not checkpointable,
        # but still serializable for the run catalogue).
        config = make_config(background_tenants=2, tenant_jobs_per_hour=4.0)
        assert config_from_dict(config_to_dict(config)) == config

    def test_scheduler_config_rejected(self):
        from repro.sched import FifoPolicy

        config = make_config(scheduling_policy=FifoPolicy())
        with pytest.raises(ValueError, match="scheduling_policy"):
            config_to_dict(config)


class TestConfigHash:
    def test_durability_fields_do_not_affect_hash(self, tmp_path):
        plain = config_to_dict(make_config())
        durable = config_to_dict(
            make_config(checkpoint_every=2, run_store=str(tmp_path))
        )
        assert config_hash(plain) == config_hash(durable)

    def test_trajectory_fields_change_hash(self):
        assert config_hash(config_to_dict(make_config())) != config_hash(
            config_to_dict(make_config(seed=4))
        )

    def test_diff_names_fields(self):
        a = config_to_dict(make_config())
        b = config_to_dict(make_config(seed=4, shots=128))
        assert config_diff(a, b) == ["seed", "shots"]

    def test_diff_ignores_durability_fields(self, tmp_path):
        a = config_to_dict(make_config())
        b = config_to_dict(make_config(checkpoint_every=1, run_store=str(tmp_path)))
        assert config_diff(a, b) == []
        assert sorted(DURABILITY_FIELDS) == [
            "checkpoint_every",
            "checkpoint_retention",
            "run_store",
        ]


class TestRunStore:
    def test_create_run_layout(self, tmp_path):
        store = RunStore(tmp_path)
        run = store.create_run(make_config(), THETA, num_epochs=5)
        assert run.run_id == "run-000001"
        assert run.manifest_path.exists()
        assert run.checkpoints_dir.is_dir()
        manifest = run.manifest()
        assert manifest["status"] == "running"
        assert manifest["initial_parameters"] == THETA
        assert manifest["num_epochs"] == 5
        assert manifest["config_hash"] == config_hash(manifest["config"])

    def test_sequential_run_ids(self, tmp_path):
        store = RunStore(tmp_path)
        first = store.create_run(make_config(), THETA, num_epochs=1)
        second = store.create_run(make_config(), THETA, num_epochs=1)
        assert [first.run_id, second.run_id] == ["run-000001", "run-000002"]

    def test_duplicate_run_id_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run(make_config(), THETA, num_epochs=1, run_id="run-000007")
        with pytest.raises(FileExistsError):
            store.create_run(make_config(), THETA, num_epochs=1, run_id="run-000007")

    def test_list_runs_and_load_run(self, tmp_path):
        store = RunStore(tmp_path)
        run = store.create_run(make_config(), THETA, num_epochs=3)
        listed = list_runs(tmp_path)
        assert [r["run_id"] for r in listed] == [run.run_id]
        assert listed[0]["status"] == "running"
        assert listed[0]["seed"] == 3
        assert load_run(tmp_path, run.run_id).path == run.path

    def test_load_missing_run_raises(self, tmp_path):
        with pytest.raises(KeyError, match="run-000099"):
            RunStore(tmp_path).load_run("run-000099")

    def test_mark_complete(self, tmp_path):
        run = RunStore(tmp_path).create_run(make_config(), THETA, num_epochs=1)
        run.mark_complete({"final_loss": 1.25})
        assert run.status() == "complete"
        assert run.manifest()["summary"] == {"final_loss": 1.25}

    def test_history_missing_raises(self, tmp_path):
        run = RunStore(tmp_path).create_run(make_config(), THETA, num_epochs=1)
        with pytest.raises(FileNotFoundError, match="no final history"):
            run.history()


class TestConfigValidation:
    """Reject-early validation of the durability knobs (satellite c)."""

    def test_checkpoint_every_without_run_store(self):
        with pytest.raises(ValueError, match="must be set together"):
            make_config(checkpoint_every=1)

    def test_run_store_without_checkpoint_every(self, tmp_path):
        with pytest.raises(ValueError, match="must be set together"):
            make_config(run_store=str(tmp_path))

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_config(checkpoint_every=0, run_store=str(tmp_path))

    def test_checkpoint_retention_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_retention"):
            make_config(
                checkpoint_every=1, run_store=str(tmp_path), checkpoint_retention=0
            )

    def test_checkpointing_rejects_scheduler(self, tmp_path):
        from repro.sched import FifoPolicy

        with pytest.raises(ValueError, match="scheduler"):
            make_config(
                checkpoint_every=1,
                run_store=str(tmp_path),
                scheduling_policy=FifoPolicy(),
            )

    def test_checkpointing_rejects_parallel_workers(self, tmp_path):
        with pytest.raises(ValueError, match="parallel_workers"):
            make_config(
                checkpoint_every=1, run_store=str(tmp_path), parallel_workers=2
            )

    def test_checkpointing_enabled_property(self, tmp_path):
        assert not make_config().checkpointing_enabled
        assert make_config(
            checkpoint_every=2, run_store=str(tmp_path)
        ).checkpointing_enabled
