"""RNG bit-generator state round-trips (satellite of the durability PR).

Resume-exactness rests on one primitive: a NumPy ``Generator`` whose
``bit_generator.state`` is captured, shipped through JSON, and restored —
possibly in a different process — continues with exactly the draws the
original would have produced.  These tests pin that primitive directly, in
the same process, across ``fork`` and ``spawn`` children, and through the
fault injector's and cloud provider's snapshot/restore surfaces.
"""

import json
import multiprocessing as mp

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.persist.state import generator_state, restore_generator


def _drain(state_json, n, queue):
    """Child-process body: restore a generator and report its next draws."""
    rng = np.random.default_rng()
    restore_generator(rng, json.loads(state_json))
    queue.put([float(v) for v in rng.uniform(size=n)])


class TestGeneratorRoundTrip:
    def test_same_process_round_trip(self):
        rng = np.random.default_rng(42)
        rng.uniform(size=17)  # advance mid-sequence
        state = generator_state(rng)
        expected = list(rng.uniform(size=8))

        fresh = np.random.default_rng()
        restore_generator(fresh, state)
        assert list(fresh.uniform(size=8)) == expected

    def test_state_survives_json(self):
        rng = np.random.default_rng(7)
        rng.standard_normal(size=5)
        state = json.loads(json.dumps(generator_state(rng)))
        expected = list(rng.uniform(size=4))

        fresh = np.random.default_rng()
        restore_generator(fresh, state)
        assert list(fresh.uniform(size=4)) == expected

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_restore_across_process_boundary(self, start_method):
        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        rng = np.random.default_rng(123)
        rng.uniform(size=33)
        state_json = json.dumps(generator_state(rng))
        expected = [float(v) for v in rng.uniform(size=6)]

        ctx = mp.get_context(start_method)
        queue = ctx.Queue()
        child = ctx.Process(target=_drain, args=(state_json, 6, queue))
        child.start()
        got = queue.get(timeout=60)
        child.join(timeout=60)
        assert child.exitcode == 0
        assert got == expected


class TestInjectorStreams:
    def make_injector(self, seed=5):
        plan = FaultPlan(transient_failure_rate=0.3, result_timeout_rate=0.2,
                         result_delay_seconds=60.0, seed=2)
        return FaultInjector(plan, seed=seed)

    def test_streams_resume_mid_sequence(self):
        injector = self.make_injector()
        # Consume unequal amounts from several labelled streams.
        for _ in range(13):
            injector.transient_failure("x2")
        for _ in range(5):
            injector.result_delay("Belem")
        snapshot = json.loads(json.dumps(injector.snapshot_streams()))
        expected = [injector.transient_failure("x2") for _ in range(20)] + [
            injector.result_delay("Belem") for _ in range(20)
        ]

        resumed = self.make_injector()
        resumed.restore_streams(snapshot)
        got = [resumed.transient_failure("x2") for _ in range(20)] + [
            resumed.result_delay("Belem") for _ in range(20)
        ]
        assert got == expected

    def test_uncreated_streams_need_no_capture(self):
        injector = self.make_injector()
        injector.transient_failure("x2")
        snapshot = injector.snapshot_streams()
        assert set(snapshot) == {"x2/transient"}
        # A label first drawn *after* restore derives from the seed tuple,
        # exactly as the original run would have derived it.
        original = self.make_injector()
        original.transient_failure("x2")
        expected = [original.transient_failure("Quito") for _ in range(10)]
        resumed = self.make_injector()
        resumed.restore_streams(snapshot)
        assert [resumed.transient_failure("Quito") for _ in range(10)] == expected


class TestProviderEndpointStreams:
    @staticmethod
    def make_provider():
        from repro.cloud.provider import CloudProvider
        from repro.devices import build_fleet

        return CloudProvider(build_fleet(("x2", "Belem")), seed=11)

    def test_endpoint_rng_resumes_mid_sequence(self):
        def drain(provider, n):
            results = []
            for name in provider.device_names:
                endpoint = provider._endpoint(name)
                results += [float(v) for v in endpoint.rng.uniform(size=n)]
                results += [float(v) for v in endpoint.qpu._rng.uniform(size=n)]
            return results

        a = self.make_provider()
        drain(a, 7)  # advance every endpoint stream mid-sequence
        snapshot = json.loads(json.dumps(a.snapshot_state()))
        expected = drain(a, 9)

        b = self.make_provider()
        b.restore_state(snapshot)
        assert drain(b, 9) == expected

    def test_job_ids_continue_after_restore(self):
        a = self.make_provider()
        for _ in range(4):
            a._new_job_id()
        snapshot = a.snapshot_state()
        b = self.make_provider()
        b.restore_state(snapshot)
        assert b._new_job_id() == a._new_job_id()
