"""Tests for the checkpoint container format and atomic file writes."""

import json
import os
import zlib

import pytest

from repro.persist.format import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_SCHEMA,
    CheckpointCorruptError,
    atomic_write_bytes,
    atomic_write_json,
    read_checkpoint_file,
    write_checkpoint_file,
)

SECTIONS = {
    "meta": {"updates_applied": 12, "now": 3.5},
    "master": {"values": [0.1, -0.2, 0.3]},
    "pending": [{"kind": "job", "sequence": 4}],
}


class TestRoundTrip:
    def test_sections_round_trip(self, tmp_path):
        path = tmp_path / "ckpt-000001.eqc"
        size = write_checkpoint_file(path, SECTIONS)
        assert size == path.stat().st_size
        assert read_checkpoint_file(path) == SECTIONS

    def test_magic_and_schema_present(self, tmp_path):
        path = tmp_path / "c.eqc"
        write_checkpoint_file(path, SECTIONS)
        blob = path.read_bytes()
        assert blob.startswith(CHECKPOINT_MAGIC)
        header = json.loads(blob.split(b"\n", 2)[1])
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert [s["name"] for s in header["sections"]] == list(SECTIONS)

    def test_floats_round_trip_bit_exact(self, tmp_path):
        # repr-based JSON floats are exact: the restored parameter vector
        # must be bitwise identical, not merely close.
        values = [0.1 + 0.2, 1e-308, 123456.789012345678, -0.0]
        path = tmp_path / "c.eqc"
        write_checkpoint_file(path, {"v": values})
        assert read_checkpoint_file(path)["v"] == values


class TestCorruption:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_file(tmp_path / "nope.eqc")

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "c.eqc"
        write_checkpoint_file(path, SECTIONS)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_file(path)

    def test_payload_bit_flip_fails_crc(self, tmp_path):
        path = tmp_path / "c.eqc"
        write_checkpoint_file(path, SECTIONS)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x01  # inside the last section's payload
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError, match="CRC32"):
            read_checkpoint_file(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "c.eqc"
        write_checkpoint_file(path, SECTIONS)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 10])
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_file(path)

    def test_trailing_garbage_raises(self, tmp_path):
        path = tmp_path / "c.eqc"
        write_checkpoint_file(path, SECTIONS)
        with open(path, "ab") as fh:
            fh.write(b"extra")
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_file(path)


class TestAtomicWrite:
    def test_write_leaves_no_temp_files(self, tmp_path):
        atomic_write_bytes(tmp_path / "out.bin", b"payload")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]
        assert (tmp_path / "out.bin").read_bytes() == b"payload"

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "out.bin"
        target.write_bytes(b"original")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"new")
        monkeypatch.undo()
        assert target.read_bytes() == b"original"
        # The temp sibling was cleaned up on failure.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_atomic_write_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        atomic_write_json(path, {"a": 1, "b": [1.5, None]})
        assert json.loads(path.read_text()) == {"a": 1, "b": [1.5, None]}
        assert path.read_text().endswith("\n")


def test_section_crc_matches_zlib(tmp_path):
    path = tmp_path / "c.eqc"
    write_checkpoint_file(path, {"only": [1, 2, 3]})
    blob = path.read_bytes()
    header_line = blob.split(b"\n", 2)[1]
    header = json.loads(header_line)
    payload = blob[len(CHECKPOINT_MAGIC) + len(header_line) + 1 :]
    section = header["sections"][0]
    assert section["crc32"] == zlib.crc32(payload[: section["length"]])
