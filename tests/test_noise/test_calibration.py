"""Tests for calibration snapshots."""

import pytest

from repro.noise.calibration import CalibrationSnapshot, GateCalibration, QubitCalibration


def make_snapshot(num_qubits=3, timestamp=0.0, cx_error=0.01):
    qubits = tuple(
        QubitCalibration(t1=100e-6, t2=90e-6, readout_p01=0.02, readout_p10=0.03)
        for _ in range(num_qubits)
    )
    singles = tuple(GateCalibration(error=4e-4, duration=35e-9) for _ in range(num_qubits))
    twos = {
        (i, i + 1): GateCalibration(error=cx_error, duration=300e-9)
        for i in range(num_qubits - 1)
    }
    return CalibrationSnapshot(
        device_name="test", timestamp=timestamp, qubits=qubits,
        single_qubit_gates=singles, two_qubit_gates=twos,
    )


class TestQubitCalibration:
    def test_valid(self):
        q = QubitCalibration(t1=100e-6, t2=80e-6, readout_p01=0.01, readout_p10=0.02)
        assert q.readout_error == pytest.approx(0.015)

    def test_unphysical_t2_rejected(self):
        with pytest.raises(ValueError):
            QubitCalibration(t1=10e-6, t2=50e-6, readout_p01=0.0, readout_p10=0.0)

    def test_negative_t1_rejected(self):
        with pytest.raises(ValueError):
            QubitCalibration(t1=-1.0, t2=1.0, readout_p01=0.0, readout_p10=0.0)

    def test_readout_range_validated(self):
        with pytest.raises(ValueError):
            QubitCalibration(t1=1e-4, t2=1e-4, readout_p01=1.5, readout_p10=0.0)


class TestGateCalibration:
    def test_fidelity(self):
        assert GateCalibration(error=0.02, duration=1e-7).fidelity == pytest.approx(0.98)

    def test_error_range_validated(self):
        with pytest.raises(ValueError):
            GateCalibration(error=1.2, duration=1e-7)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            GateCalibration(error=0.1, duration=-1.0)


class TestCalibrationSnapshot:
    def test_averages(self):
        snap = make_snapshot()
        assert snap.average_t1 == pytest.approx(100e-6)
        assert snap.average_readout_error == pytest.approx(0.025)
        assert snap.average_cx_error == pytest.approx(0.01)
        assert snap.num_qubits == 3

    def test_single_gate_count_must_match_qubits(self):
        with pytest.raises(ValueError):
            CalibrationSnapshot(
                device_name="bad",
                timestamp=0.0,
                qubits=(QubitCalibration(1e-4, 1e-4, 0.0, 0.0),),
                single_qubit_gates=(),
            )

    def test_invalid_coupling_rejected(self):
        with pytest.raises(ValueError):
            CalibrationSnapshot(
                device_name="bad",
                timestamp=0.0,
                qubits=(QubitCalibration(1e-4, 1e-4, 0.0, 0.0),),
                single_qubit_gates=(GateCalibration(1e-4, 1e-8),),
                two_qubit_gates={(0, 5): GateCalibration(0.01, 1e-7)},
            )

    def test_cx_calibration_lookup_both_directions(self):
        snap = make_snapshot()
        assert snap.cx_calibration(0, 1).error == pytest.approx(0.01)
        assert snap.cx_calibration(1, 0).error == pytest.approx(0.01)

    def test_cx_calibration_missing_pair(self):
        snap = make_snapshot()
        with pytest.raises(KeyError):
            snap.cx_calibration(0, 2)

    def test_age_at(self):
        snap = make_snapshot(timestamp=100.0)
        assert snap.age_at(250.0) == pytest.approx(150.0)
        assert snap.age_at(50.0) == 0.0

    def test_with_timestamp(self):
        snap = make_snapshot().with_timestamp(3600.0)
        assert snap.timestamp == pytest.approx(3600.0)

    def test_scale_errors_increases_errors(self):
        snap = make_snapshot()
        scaled = snap.scale_errors(2.0)
        assert scaled.average_cx_error == pytest.approx(0.02)
        assert scaled.average_readout_error == pytest.approx(0.05)
        assert scaled.average_t1 == pytest.approx(50e-6)

    def test_scale_errors_clamps_probabilities(self):
        snap = make_snapshot(cx_error=0.4)
        scaled = snap.scale_errors(5.0)
        assert scaled.average_cx_error <= 1.0

    def test_scale_errors_keeps_t2_physical(self):
        snap = make_snapshot()
        scaled = snap.scale_errors(3.0)
        for q in scaled.qubits:
            assert q.t2 <= 2 * q.t1 + 1e-15

    def test_scale_errors_invalid_factor(self):
        with pytest.raises(ValueError):
            make_snapshot().scale_errors(0.0)
