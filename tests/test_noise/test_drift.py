"""Tests for the time-dependent drift model."""

import pytest

from repro.noise.drift import DriftModel, DriftProfile


class TestDriftProfile:
    def test_defaults_valid(self):
        DriftProfile()

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            DriftProfile(drift_rate=-0.1)

    def test_burst_probability_range(self):
        with pytest.raises(ValueError):
            DriftProfile(burst_probability=1.5)

    def test_burst_magnitude_minimum(self):
        with pytest.raises(ValueError):
            DriftProfile(burst_magnitude=0.5)


class TestDriftModel:
    def test_factor_at_zero_age_is_modest(self):
        model = DriftModel(DriftProfile(), device_seed=1)
        factor = model.drift_factor(0.0)
        assert 1.0 <= factor <= 1.3

    def test_factor_grows_with_age_on_average(self):
        profile = DriftProfile(drift_rate=0.05, oscillation_amplitude=0.0, burst_probability=0.0)
        model = DriftModel(profile, device_seed=2)
        assert model.drift_factor(20.0) > model.drift_factor(1.0)

    def test_deterministic_given_same_inputs(self):
        model = DriftModel(DriftProfile(), device_seed=3)
        assert model.drift_factor(5.0, cycle=2) == model.drift_factor(5.0, cycle=2)

    def test_cycles_differ(self):
        profile = DriftProfile(oscillation_amplitude=0.3)
        model = DriftModel(profile, device_seed=4)
        values = {round(model.drift_factor(5.0, cycle=c), 6) for c in range(6)}
        assert len(values) > 1

    def test_devices_differ(self):
        profile = DriftProfile(oscillation_amplitude=0.3)
        a = DriftModel(profile, device_seed=10)
        b = DriftModel(profile, device_seed=11)
        assert a.drift_factor(7.0) != b.drift_factor(7.0)

    def test_negative_age_treated_as_zero(self):
        model = DriftModel(DriftProfile(), device_seed=5)
        assert model.drift_factor(-3.0) == model.drift_factor(0.0)

    def test_speed_factor_is_inverse(self):
        model = DriftModel(DriftProfile(), device_seed=6)
        factor = model.drift_factor(10.0, cycle=1)
        assert model.speed_factor(10.0, cycle=1) == pytest.approx(1.0 / factor)

    def test_bursts_inflate_errors(self):
        """With burst probability 1, some calibration age inside the burst
        window must show a factor of at least the burst magnitude."""
        profile = DriftProfile(
            drift_rate=0.0,
            oscillation_amplitude=0.0,
            burst_probability=1.0,
            burst_magnitude=5.0,
            burst_duration_hours=6.0,
        )
        model = DriftModel(profile, device_seed=7)
        factors = [model.drift_factor(h, cycle=0) for h in range(0, 27)]
        assert max(factors) >= 5.0
        assert min(factors) == pytest.approx(1.0)
