"""Tests for calibration snapshot generation."""

import pytest

from repro.noise.calibration import CalibrationSnapshot
from repro.noise.generator import CalibrationGenerator, NoiseProfile


class TestNoiseProfile:
    def test_defaults_valid(self):
        NoiseProfile()

    def test_invalid_t1_rejected(self):
        with pytest.raises(ValueError):
            NoiseProfile(t1=-1.0)

    def test_error_ranges_validated(self):
        with pytest.raises(ValueError):
            NoiseProfile(cx_error=1.5)

    def test_crosstalk_range(self):
        with pytest.raises(ValueError):
            NoiseProfile(crosstalk=2.0)


class TestCalibrationGenerator:
    def _generate(self, cycle=0, seed=42, spread=0.25):
        profile = NoiseProfile(relative_spread=spread)
        gen = CalibrationGenerator(profile, device_seed=seed)
        return gen.generate(
            device_name="dev",
            num_qubits=4,
            couplings=[(0, 1), (1, 2), (2, 3)],
            timestamp=0.0,
            cycle=cycle,
        )

    def test_snapshot_structure(self):
        snap = self._generate()
        assert isinstance(snap, CalibrationSnapshot)
        assert snap.num_qubits == 4
        assert len(snap.single_qubit_gates) == 4
        # both directions of every coupling are calibrated
        assert len(snap.two_qubit_gates) == 6

    def test_snapshots_are_physical(self):
        snap = self._generate()
        for q in snap.qubits:
            assert q.t2 <= 2 * q.t1 + 1e-15
            assert 0 <= q.readout_p01 <= 0.5
        for g in snap.two_qubit_gates.values():
            assert 0 <= g.error <= 0.5

    def test_deterministic_per_cycle(self):
        assert self._generate(cycle=1).average_cx_error == pytest.approx(
            self._generate(cycle=1).average_cx_error
        )

    def test_cycles_differ(self):
        a = self._generate(cycle=0)
        b = self._generate(cycle=1)
        assert a.average_cx_error != pytest.approx(b.average_cx_error)

    def test_devices_differ(self):
        a = self._generate(seed=1)
        b = self._generate(seed=2)
        assert a.average_t1 != pytest.approx(b.average_t1)

    def test_zero_spread_matches_profile_medians(self):
        snap = self._generate(spread=0.0)
        assert snap.average_t1 == pytest.approx(NoiseProfile().t1)
        assert snap.average_single_qubit_error == pytest.approx(
            NoiseProfile().single_qubit_error
        )

    def test_values_centred_near_profile(self):
        profile = NoiseProfile(relative_spread=0.25)
        snap = self._generate()
        assert 0.3 * profile.cx_error < snap.average_cx_error < 3.0 * profile.cx_error
