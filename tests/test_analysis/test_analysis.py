"""Tests for metrics, correlation statistics and text reporting."""

import math

import numpy as np
import pytest

from repro.analysis.correlation import correlate, linear_fit
from repro.analysis.metrics import relative_error, speedup, speedup_summary, throughput_table
from repro.analysis.reporting import format_kv, format_series, format_table
from repro.core.history import EpochRecord, TrainingHistory


def history_with_rate(label, epochs, hours_per_epoch):
    history = TrainingHistory(label=label)
    for index in range(1, epochs + 1):
        history.add(
            EpochRecord(
                epoch=index,
                sim_time_hours=index * hours_per_epoch,
                loss=-4.0,
                parameters=(),
            )
        )
    return history


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(-3.8, -4.0) == pytest.approx(0.05)
        assert relative_error(1.0, 0.0) == pytest.approx(1.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert math.isinf(speedup(10.0, 0.0))

    def test_speedup_summary(self):
        eqc = history_with_rate("EQC", 10, 0.1)        # 10 epochs/hour
        singles = [
            history_with_rate("fast", 10, 0.5),        # 2 epochs/hour -> 5x
            history_with_rate("slow", 10, 5.0),        # 0.2 epochs/hour -> 50x
        ]
        summary = speedup_summary(eqc, singles)
        assert summary.eqc_epochs_per_hour == pytest.approx(10.0)
        assert summary.min_speedup == pytest.approx(5.0)
        assert summary.max_speedup == pytest.approx(50.0)
        assert summary.average_speedup == pytest.approx(27.5)
        assert "5.0x" in summary.describe()

    def test_speedup_summary_requires_baselines(self):
        with pytest.raises(ValueError):
            speedup_summary(history_with_rate("EQC", 5, 0.1), [])

    def test_throughput_table(self):
        rows = throughput_table([history_with_rate("a", 5, 0.1)])
        assert rows[0]["label"] == "a"
        assert rows[0]["epochs_per_hour"] == pytest.approx(10.0)


class TestCorrelation:
    def test_perfect_correlation(self):
        x = np.linspace(0, 1, 10)
        report = correlate(x, 2 * x + 1)
        assert report.pearson_r == pytest.approx(1.0)
        assert report.r_squared == pytest.approx(1.0)
        assert report.slope == pytest.approx(2.0)
        assert report.intercept == pytest.approx(1.0)

    def test_noisy_correlation_in_range(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 40)
        y = x + rng.normal(0, 0.2, 40)
        report = correlate(x, y)
        assert 0.5 < report.pearson_r <= 1.0
        assert 0.0 < report.r_squared <= 1.0
        assert report.p_value < 0.01

    def test_describe(self):
        report = correlate([0, 1, 2, 3], [0, 1, 2, 3.2])
        assert "r=" in report.describe()

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            correlate([1, 2], [1, 2])
        with pytest.raises(ValueError):
            linear_fit([1], [1])


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert "empty" in format_table([])

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in format_table(rows, columns=["a"])

    def test_format_series_downsamples(self):
        xs = list(range(100))
        ys = [x * 0.5 for x in xs]
        text = format_series("curve", xs, ys, max_points=5)
        assert text.startswith("curve:")
        assert text.count("(") <= 7

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])

    def test_format_kv(self):
        text = format_kv({"speedup": 10.456, "mode": "async"})
        assert "speedup=10.46" in text
        assert "mode=async" in text
