"""Lowering circuits into :class:`~repro.engine.program.GateProgram` objects.

The compiler walks a circuit's instruction list once and emits a flat op
sequence, performing three structural optimizations:

* **adjacent-gate fusion** — runs of single-qubit gates on one wire collapse
  to one 2×2 factor chain; consecutive two-qubit gates on the same wire pair
  collapse to one 4×4 chain (single-qubit gates sandwiched between them are
  lifted into the pair).  Constant factors are folded at compile time, so a
  run like ``h·s·h`` becomes a single constant matrix; runs containing
  rotations keep per-factor records and build their combined small matrix at
  execution time.
* **diagonal specialization** — ``rz``/``z``/``s``/``sdg``/``t``/``cz``/
  ``rzz``/``cp``/``id`` compile to elementwise phase multiplies.  Because
  diagonal gates commute with each other, a whole region of them (QAOA cost
  layers being the canonical case) merges into a *single*
  :class:`DiagonalOp` regardless of which wires the individual gates touch.
* **dead-op elimination** — identity gates and all-one phase vectors are
  dropped.

Correctness of the greedy reordering is maintained through wire ownership:
every placed gate takes ownership of its wires, and a gate may only join an
earlier op when that op still owns every wire the gate touches (or, for
diagonal merges, when the owning op precedes the diagonal group — diagonal
gates commute across anything that does not share a wire with them).
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import GATE_SPECS, gate_matrix
from .program import DiagonalOp, GateProgram, MatrixOp, RunElement

__all__ = ["compile_circuit", "DIAGONAL_GATES"]

#: Constant diagonal gates and their local phase vectors.
_DIAG_CONST: dict[str, np.ndarray] = {
    "id": np.array([1.0, 1.0], dtype=complex),
    "z": np.array([1.0, -1.0], dtype=complex),
    "s": np.array([1.0, 1.0j], dtype=complex),
    "sdg": np.array([1.0, -1.0j], dtype=complex),
    "t": np.array([1.0, np.exp(1j * math.pi / 4)], dtype=complex),
    "cz": np.array([1.0, 1.0, 1.0, -1.0], dtype=complex),
}

#: Parameterized diagonal gates: local per-basis-state exponent coefficients
#: (the gate's diagonal is ``exp(1j * theta * coeffs)``).
_DIAG_SLOT: dict[str, np.ndarray] = {
    "rz": np.array([-0.5, 0.5]),
    "rzz": np.array([-0.5, 0.5, 0.5, -0.5]),
    "cp": np.array([0.0, 0.0, 0.0, 1.0]),
}

#: Every gate name the compiler treats as diagonal.
DIAGONAL_GATES = frozenset(_DIAG_CONST) | frozenset(_DIAG_SLOT)

_SWAP4 = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)

_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXY"
_BATCH = "Z"


def _lift_diag(local: np.ndarray, qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Expand a local diagonal (phase or exponent) to the full 2**n register.

    Index bit convention matches the simulator: qubit 0 is the most
    significant bit of a basis-state index.
    """
    dim = 1 << num_qubits
    index = np.arange(dim)
    local_index = np.zeros(dim, dtype=np.intp)
    for q in qubits:
        local_index = (local_index << 1) | ((index >> (num_qubits - 1 - q)) & 1)
    return np.asarray(local)[local_index]


def _einsum_subscripts(qubits: tuple[int, ...], num_qubits: int) -> tuple[str, str]:
    """(constant, batched) einsum specs applying a gate on ``qubits``."""
    state = list(_LETTERS[:num_qubits])
    out_state = list(state)
    gate_out = []
    for j, q in enumerate(qubits):
        fresh = _LETTERS[num_qubits + j]
        gate_out.append(fresh)
        out_state[q] = fresh
    gate_in = [state[q] for q in qubits]
    gate = "".join(gate_out) + "".join(gate_in)
    spec = f"{gate},{_BATCH}{''.join(state)}->{_BATCH}{''.join(out_state)}"
    spec_batched = f"{_BATCH}{spec}"
    return spec, spec_batched


class _DiagBuilder:
    kind = "diag"

    def __init__(self, seq: int, num_qubits: int) -> None:
        self.seq = seq
        self.num_qubits = num_qubits
        self.phase: np.ndarray | None = None
        self.slots: list[int] = []
        self.coeffs: list[np.ndarray] = []

    def add(self, name: str, slot: int | None, qubits: tuple[int, ...]) -> None:
        if slot is None:
            lifted = _lift_diag(_DIAG_CONST[name], qubits, self.num_qubits)
            self.phase = lifted if self.phase is None else self.phase * lifted
        else:
            self.slots.append(slot)
            self.coeffs.append(
                _lift_diag(_DIAG_SLOT[name], qubits, self.num_qubits).astype(float)
            )


class _RunBuilder:
    kind = "run"

    def __init__(self, seq: int, qubits: tuple[int, ...]) -> None:
        self.seq = seq
        self.qubits = qubits
        self.elements: list[RunElement] = []
        self.dead = False

    # -- factor accumulation -------------------------------------------
    def append_const(self, matrix: np.ndarray) -> None:
        if self.elements and self.elements[-1].matrix is not None:
            self.elements[-1] = RunElement(matrix @ self.elements[-1].matrix)
        else:
            self.elements.append(RunElement(np.asarray(matrix, dtype=complex)))

    def append_element(self, element: RunElement) -> None:
        if element.matrix is not None:
            self.append_const(element.matrix)
        else:
            self.elements.append(element)

    def add(self, name: str, slot: int | None, qubits: tuple[int, ...]) -> None:
        """Append one gate, localizing it onto this run's qubit space."""
        if slot is None:
            matrix = gate_matrix(name)
            if qubits == self.qubits:
                pass
            elif len(qubits) == 1 and len(self.qubits) == 2:
                position = self.qubits.index(qubits[0])
                matrix = np.kron(matrix, np.eye(2)) if position == 0 else np.kron(np.eye(2), matrix)
            elif len(qubits) == 2 and tuple(reversed(qubits)) == self.qubits:
                matrix = _SWAP4 @ matrix @ _SWAP4
            else:
                raise ValueError(f"gate on {qubits} cannot join a run on {self.qubits}")
            self.append_const(matrix)
            return
        if len(qubits) == 1 and len(self.qubits) == 2:
            self.elements.append(
                RunElement(None, gate=name, slot=slot, lift=self.qubits.index(qubits[0]))
            )
        else:
            # 2q parameterized gates in the alphabet (rzz, cp) are symmetric,
            # so a reversed pair needs no permutation.
            self.elements.append(RunElement(None, gate=name, slot=slot))


def compile_circuit(
    circuit: QuantumCircuit,
    *,
    fuse: bool = True,
    diagonals: bool = True,
) -> GateProgram:
    """Lower a circuit structure into a flat numeric gate program.

    Parameter *values* are ignored entirely: every parameterized gate becomes
    a runtime slot, so one program serves any binding of the same structure.
    Measurement and barrier directives are skipped (the executor produces the
    full final state; callers marginalize over the measured register).

    Args:
        fuse: enable adjacent-gate fusion and diagonal-region merging.
        diagonals: represent diagonal gates as elementwise phase ops (when
            off they are applied as matrices like any other gate).
    """
    n = circuit.num_qubits
    builders: list[_DiagBuilder | _RunBuilder] = []
    owner: dict[int, _DiagBuilder | _RunBuilder] = {}
    open_diag: _DiagBuilder | None = None
    slot_positions: list[int] = []
    slot_gates: list[str] = []
    source_gates = 0

    for position, inst in enumerate(circuit.instructions):
        if not inst.is_unitary:
            continue
        source_gates += 1
        name, qubits = inst.name, inst.qubits
        slot: int | None = None
        if GATE_SPECS[name].num_params:
            slot = len(slot_positions)
            slot_positions.append(position)
            slot_gates.append(name)

        if diagonals and name in DIAGONAL_GATES:
            placed = False
            if fuse:
                run = _matching_run(owner, qubits)
                if run is not None:
                    run.add(name, slot, qubits)
                    placed = True
                elif open_diag is not None and all(
                    owner.get(q) is None
                    or owner[q] is open_diag
                    or owner[q].seq < open_diag.seq
                    for q in qubits
                ):
                    open_diag.add(name, slot, qubits)
                    for q in qubits:
                        owner[q] = open_diag
                    placed = True
            if not placed:
                diag = _DiagBuilder(len(builders), n)
                builders.append(diag)
                diag.add(name, slot, qubits)
                for q in qubits:
                    owner[q] = diag
                if fuse:
                    open_diag = diag
            continue

        # matrix path ----------------------------------------------------
        if len(qubits) == 1:
            target = owner.get(qubits[0]) if fuse else None
            if isinstance(target, _RunBuilder) and qubits[0] in target.qubits:
                target.add(name, slot, qubits)
            else:
                run = _RunBuilder(len(builders), qubits)
                builders.append(run)
                run.add(name, slot, qubits)
                owner[qubits[0]] = run
        else:
            run = _matching_run(owner, qubits) if fuse else None
            if run is not None:
                run.add(name, slot, qubits)
            else:
                run = _RunBuilder(len(builders), qubits)
                builders.append(run)
                if fuse:
                    # Absorb pending single-qubit runs on either wire: their
                    # factors commute past everything between them and this
                    # op (nothing else touches the wire — they still own it).
                    for wire in qubits:
                        pending = owner.get(wire)
                        if isinstance(pending, _RunBuilder) and pending.qubits == (wire,):
                            position_in_pair = qubits.index(wire)
                            for element in pending.elements:
                                if element.matrix is not None:
                                    lifted = (
                                        np.kron(element.matrix, np.eye(2))
                                        if position_in_pair == 0
                                        else np.kron(np.eye(2), element.matrix)
                                    )
                                    run.append_const(lifted)
                                else:
                                    run.elements.append(
                                        RunElement(
                                            None,
                                            gate=element.gate,
                                            slot=element.slot,
                                            lift=position_in_pair,
                                        )
                                    )
                            pending.dead = True
                run.add(name, slot, qubits)
                for q in qubits:
                    owner[q] = run

    ops = _emit(builders, n)
    return GateProgram(
        num_qubits=n,
        ops=tuple(ops),
        slot_positions=tuple(slot_positions),
        slot_gates=tuple(slot_gates),
        source_gates=source_gates,
    )


def _matching_run(
    owner: dict[int, _DiagBuilder | _RunBuilder], qubits: tuple[int, ...]
) -> _RunBuilder | None:
    """The run that owns all of ``qubits`` and acts on exactly that set."""
    if len(qubits) == 1:
        candidate = owner.get(qubits[0])
        if isinstance(candidate, _RunBuilder) and candidate.qubits == qubits:
            return candidate
        return None
    a, b = qubits
    candidate = owner.get(a)
    if (
        isinstance(candidate, _RunBuilder)
        and owner.get(b) is candidate
        and set(candidate.qubits) == {a, b}
    ):
        return candidate
    return None


def _emit(builders, num_qubits: int) -> list:
    ops: list = []
    for builder in builders:
        if isinstance(builder, _RunBuilder):
            if builder.dead or not builder.elements:
                continue
            subscripts, subscripts_batched = _einsum_subscripts(builder.qubits, num_qubits)
            k = len(builder.qubits)
            if len(builder.elements) == 1 and builder.elements[0].matrix is not None:
                matrix = builder.elements[0].matrix
                if np.allclose(matrix, np.eye(1 << k)):
                    continue
                ops.append(
                    MatrixOp(
                        qubits=builder.qubits,
                        subscripts=subscripts,
                        subscripts_batched=subscripts_batched,
                        matrix=matrix,
                        tensor=np.ascontiguousarray(matrix.reshape((2,) * (2 * k))),
                    )
                )
            else:
                ops.append(
                    MatrixOp(
                        qubits=builder.qubits,
                        subscripts=subscripts,
                        subscripts_batched=subscripts_batched,
                        elements=tuple(builder.elements),
                    )
                )
        else:
            phase = builder.phase
            if phase is not None and np.allclose(phase, 1.0):
                phase = None
            if not builder.slots and phase is None:
                continue
            ops.append(
                DiagonalOp(
                    phase=phase,
                    slots=tuple(builder.slots),
                    coeffs=np.vstack(builder.coeffs) if builder.coeffs else None,
                )
            )
    return ops
