"""The compiled gate-program execution engine.

This package is the performance core of the execution layer.  It separates
circuit *structure* from parameter *values* so that the per-gate Python
overhead of simulation — instruction walking, matrix rebuilding, axis moves,
state copies, and above all per-point ``QuantumCircuit`` binding — is paid
once per ansatz instead of once per gate per sweep point.

Compile → execute lifecycle
---------------------------
1. **Compile** (:func:`compile_circuit`, usually through the shared
   :class:`ProgramCache`): a circuit's instruction list is lowered once into
   a flat :class:`GateProgram` — a tuple of numeric ops plus a table of
   parameter *slots*, one per parameterized gate position in instruction
   order.  Parameter values are ignored; one program serves every binding of
   the structure.
2. **Plan** (:func:`parameter_plan`, optional): for template sweeps, an
   affine map from a flat ``(points, P)`` parameter matrix to the program's
   ``(points, S)`` slot angles (handles bound constants, free parameters,
   and affine expressions such as weighted QAOA cost layers).  Bound
   circuits skip the plan: :func:`slot_values_from_circuits` reads angles
   straight off instruction records.
3. **Execute** (:func:`execute_program`): one pass over the ops applied to a
   ``(batch, 2**n)`` state stack, with ping-pong buffers for matrix ops and
   in-place elementwise phase multiplies for diagonal ops.

Fusion rules
------------
* Runs of single-qubit gates on one wire fuse into a single 2×2 application
  (constants folded at compile time; rotations composed per batch at
  execution time — an O(batch·4) matmul instead of an O(batch·2**n) pass).
* Consecutive two-qubit gates on the same wire pair fuse into one 4×4
  application; single-qubit gates pending on either wire are lifted into the
  pair.
* Diagonal gates (``rz``, ``z``, ``s``, ``sdg``, ``t``, ``cz``, ``rzz``,
  ``cp``, ``id``) become elementwise phase multiplies over precomputed
  per-basis-index masks, and whole diagonal regions — a QAOA cost layer —
  merge into one :class:`DiagonalOp` no matter which wires they touch.
  Gate reordering is validated through wire ownership, so the emitted
  program is always algebraically identical to the instruction sequence.

Bit-ordering contract
---------------------
Identical to :class:`~repro.simulator.statevector.Statevector`: qubit 0 is
the **most significant** bit of a basis-state index, gate matrices are
expressed in the basis ``|qubits[0] qubits[1]>``, and the batched
probabilities returned by :func:`marginal_probabilities` match
``Statevector.probabilities`` row by row (equivalence is pinned to 1e-10 by
the test suite; seeded sampling histories stay bit-exact).
"""

from .cache import ProgramCache, shared_program_cache
from .compiler import DIAGONAL_GATES, compile_circuit
from .executor import (
    batched_gate_matrices,
    execute_program,
    marginal_distribution,
    marginal_probabilities,
)
from .program import (
    DiagonalOp,
    GateProgram,
    MatrixOp,
    ParameterPlan,
    RunElement,
    parameter_plan,
    plan_slot_values,
    slot_values_from_circuits,
)

__all__ = [
    "GateProgram",
    "MatrixOp",
    "DiagonalOp",
    "RunElement",
    "ParameterPlan",
    "DIAGONAL_GATES",
    "compile_circuit",
    "parameter_plan",
    "plan_slot_values",
    "slot_values_from_circuits",
    "execute_program",
    "batched_gate_matrices",
    "marginal_distribution",
    "marginal_probabilities",
    "ProgramCache",
    "shared_program_cache",
]
