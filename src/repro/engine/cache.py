"""Structure-keyed caching of compiled gate programs.

Compilation is pure: a program depends only on a circuit's *structure*
(gate names + wires, parameter values excluded), which is exactly what
:attr:`QuantumCircuit.structure_key` captures.  A parameter-shift sweep —
thousands of bindings of one ansatz — therefore compiles once and executes
from then on as pure array math.

The module-level :func:`shared_program_cache` is the default instance the
execution backends, the mixing path, and the energy estimators all share, so
any two subsystems running the same ansatz reuse one compilation.
"""

from __future__ import annotations

import time
import weakref

from ..circuit.circuit import QuantumCircuit
from ..telemetry import TELEMETRY as _telemetry
from .compiler import compile_circuit
from .program import GateProgram, ParameterPlan, parameter_plan

__all__ = ["ProgramCache", "shared_program_cache"]


class ProgramCache:
    """A structure-keyed cache of :class:`GateProgram` objects."""

    def __init__(self, *, fuse: bool = True, diagonals: bool = True) -> None:
        self._entries: dict[tuple, GateProgram] = {}
        #: Per-template parameter plans, keyed by template identity (plans
        #: depend on the template's Parameter objects, not just structure).
        self._plans: weakref.WeakKeyDictionary[QuantumCircuit, tuple] = (
            weakref.WeakKeyDictionary()
        )
        self._fuse = fuse
        self._diagonals = diagonals
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get_or_compile(self, circuit: QuantumCircuit) -> GateProgram:
        """Return the compiled program for ``circuit``'s structure.

        Any circuit sharing the structure (bound or parameterized) yields the
        same entry; callers pair the program with their own parameter plan or
        slot extraction.
        """
        key = circuit.structure_key
        program = self._entries.get(key)
        if program is not None:
            self.hits += 1
            if _telemetry.enabled:
                _telemetry.registry.counter("engine.program_cache.hits").inc()
            return program
        self.misses += 1
        start = time.perf_counter() if _telemetry.enabled else 0.0
        program = compile_circuit(circuit, fuse=self._fuse, diagonals=self._diagonals)
        self._entries[key] = program
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("engine.program_cache.misses").inc()
            registry.histogram("engine.compile_seconds").observe(
                time.perf_counter() - start
            )
            registry.gauge("engine.program_cache.size").set(len(self._entries))
        return program

    def stats(self) -> dict[str, float]:
        """Hit/miss/size counters (cache effectiveness at a glance)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "hit_rate": self.hit_rate,
        }

    def publish(self, registry=None, prefix: str = "engine.program_cache") -> None:
        """Write the current :meth:`stats` into a metrics registry as gauges."""
        if registry is None:
            registry = _telemetry.registry
        for field, value in self.stats().items():
            registry.gauge(f"{prefix}.{field}").set(value)

    def plan_for(
        self, circuit: QuantumCircuit, program: GateProgram | None = None
    ) -> ParameterPlan:
        """The (memoized) slot-angle plan of a template circuit.

        Plans are keyed by template object identity and validated against the
        current structure key, so hot sweep paths skip the per-slot Python
        walk of :func:`parameter_plan` after the first call while a mutated
        template still gets a fresh plan.
        """
        key = circuit.structure_key
        entry = self._plans.get(circuit)
        if entry is not None and entry[0] is key:
            return entry[1]
        if program is None:
            program = self.get_or_compile(circuit)
        plan = parameter_plan(circuit, program)
        self._plans[circuit] = (key, plan)
        return plan

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        self._entries.clear()
        self._plans.clear()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support (worker processes): plans are identity-keyed.

        The WeakKeyDictionary of parameter plans cannot cross a process
        boundary, and its entries would be useless anyway — they are keyed by
        template *object identity*, which pickling does not preserve.  The
        compiled entries themselves transfer; plans re-memoize on first use.
        """
        state = self.__dict__.copy()
        state["_plans"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._plans = weakref.WeakKeyDictionary()


_SHARED = ProgramCache()


def shared_program_cache() -> ProgramCache:
    """The process-wide default program cache."""
    return _SHARED
