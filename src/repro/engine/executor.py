"""Executing compiled gate programs over raw parameter matrices.

:func:`execute_program` is the hot loop of the execution layer: given a
:class:`~repro.engine.program.GateProgram` and a ``(batch, num_slots)`` angle
matrix it produces the ``(batch, 2**n)`` final statevectors with

* **no circuit objects** — angles come in as one float matrix,
* **ping-pong state buffers** — two preallocated ``(batch, 2**n)`` arrays
  alternate as einsum source/destination, so matrix gates stop allocating a
  fresh contiguous copy per gate (the pre-compiled path paid two copies per
  gate: a ``moveaxis`` materialization and an ``ascontiguousarray``),
* **in-place diagonal ops** — phase multiplies mutate the live buffer
  directly; a fused QAOA cost layer is a single elementwise multiply.

Bit ordering matches :class:`~repro.simulator.statevector.Statevector`:
qubit 0 is the most significant bit of a basis-state index.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .program import DiagonalOp, GateProgram, MatrixOp, RunElement

__all__ = [
    "batched_gate_matrices",
    "execute_program",
    "marginal_distribution",
    "marginal_probabilities",
]

_EYE2 = np.eye(2, dtype=complex)


def batched_gate_matrices(name: str, thetas: np.ndarray) -> np.ndarray:
    """Stacked ``(batch, dim, dim)`` unitaries for one rotation gate."""
    thetas = np.asarray(thetas, dtype=float)
    half = 0.5 * thetas
    if name == "rx":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -1j * s
        mats[:, 1, 0] = -1j * s
        mats[:, 1, 1] = c
        return mats
    if name == "ry":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -s
        mats[:, 1, 0] = s
        mats[:, 1, 1] = c
        return mats
    if name == "rz":
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = np.exp(-1j * half)
        mats[:, 1, 1] = np.exp(1j * half)
        return mats
    if name == "rzz":
        phase = np.exp(-1j * half)
        conj = np.exp(1j * half)
        mats = np.zeros((thetas.size, 4, 4), dtype=complex)
        mats[:, 0, 0] = phase
        mats[:, 1, 1] = conj
        mats[:, 2, 2] = conj
        mats[:, 3, 3] = phase
        return mats
    if name == "cp":
        mats = np.zeros((thetas.size, 4, 4), dtype=complex)
        mats[:, 0, 0] = 1.0
        mats[:, 1, 1] = 1.0
        mats[:, 2, 2] = 1.0
        mats[:, 3, 3] = np.exp(1j * thetas)
        return mats
    raise ValueError(f"no batched matrix rule for gate {name!r}")


def _element_factor(element: RunElement, thetas: np.ndarray) -> np.ndarray:
    """One factor of a fused op: a constant or a ``(batch, k, k)`` stack."""
    if element.matrix is not None:
        return element.matrix
    mats = batched_gate_matrices(element.gate, thetas[:, element.slot])
    if element.lift == 0:
        # kron(m, I): the factor acts on the pair's most significant wire.
        return np.einsum("bij,kl->bikjl", mats, _EYE2).reshape(-1, 4, 4)
    if element.lift == 1:
        return np.einsum("bij,kl->bkilj", mats, _EYE2).reshape(-1, 4, 4)
    return mats


def _combined_matrices(op: MatrixOp, thetas: np.ndarray) -> np.ndarray:
    """Multiply an op's factors into one ``(batch, k, k)`` stack.

    The first element acts first, so the combined unitary is
    ``e_n @ ... @ e_1``; broadcasting handles constant factors.
    """
    combined: np.ndarray | None = None
    for element in op.elements:
        factor = _element_factor(element, thetas)
        combined = factor if combined is None else factor @ combined
    return combined


def execute_program(
    program: GateProgram,
    thetas: np.ndarray | Sequence[Sequence[float]] | None = None,
    *,
    batch: int | None = None,
) -> np.ndarray:
    """Run a compiled program over a batch of parameter points.

    Args:
        program: the compiled gate program.
        thetas: ``(batch, num_slots)`` slot-angle matrix (a single point may
            be passed as a 1-D vector).  May be omitted for parameterless
            programs.
        batch: batch size when ``thetas`` is omitted (default 1).

    Returns:
        A ``(batch, 2**n)`` complex array of final statevectors.
    """
    if thetas is None:
        thetas = np.zeros((1 if batch is None else int(batch), 0), dtype=float)
    else:
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
    if thetas.shape[1] != program.num_slots:
        raise ValueError(
            f"program expects {program.num_slots} slot angles per point, "
            f"got {thetas.shape[1]}"
        )
    size = thetas.shape[0]
    n = program.num_qubits
    dim = program.dim
    shape = (size,) + (2,) * n

    ping = np.zeros((size, dim), dtype=complex)
    ping[:, 0] = 1.0
    pong = np.empty((size, dim), dtype=complex)

    for op in program.ops:
        if type(op) is DiagonalOp:
            if op.slots:
                phase = np.exp(1j * (thetas[:, list(op.slots)] @ op.coeffs))
                if op.phase is not None:
                    phase *= op.phase
                ping *= phase
            else:
                ping *= op.phase
            continue
        k = len(op.qubits)
        if op.tensor is not None:
            np.einsum(
                op.subscripts,
                op.tensor,
                ping.reshape(shape),
                out=pong.reshape(shape),
            )
        else:
            mats = _combined_matrices(op, thetas)
            np.einsum(
                op.subscripts_batched,
                mats.reshape((size,) + (2,) * (2 * k)),
                ping.reshape(shape),
                out=pong.reshape(shape),
            )
        ping, pong = pong, ping
    return ping


def marginal_probabilities(
    states: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Measurement probabilities over ``qubits`` for every state in a stack.

    Returns a ``(batch, 2**len(qubits))`` array matching
    :meth:`Statevector.probabilities` row by row.
    """
    return marginal_distribution(np.abs(states) ** 2, qubits, num_qubits)


def marginal_distribution(
    probabilities: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Marginalize a ``(batch, 2**n)`` probability stack onto ``qubits``.

    The single home of the trace-axes + measured-order permutation logic;
    :func:`marginal_probabilities` (amplitude stacks) and the density-matrix
    validator (diagonal probability vectors) both route through it.
    """
    full = np.asarray(probabilities, dtype=float)
    qubits = list(qubits)
    if tuple(qubits) == tuple(range(num_qubits)):
        return full
    batch = full.shape[0]
    tensor = full.reshape([batch] + [2] * num_qubits)
    keep = set(qubits)
    trace_axes = tuple(ax + 1 for ax in range(num_qubits) if ax not in keep)
    marg = tensor.sum(axis=trace_axes) if trace_axes else tensor
    current = sorted(qubits)
    perm = [0] + [current.index(q) + 1 for q in qubits]
    marg = np.transpose(marg, perm)
    return marg.reshape(batch, -1)
