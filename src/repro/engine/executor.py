"""Executing compiled gate programs over raw parameter matrices.

:func:`execute_program` is the hot loop of the execution layer: given a
:class:`~repro.engine.program.GateProgram` and a ``(batch, num_slots)`` angle
matrix it produces the ``(batch, 2**n)`` final statevectors with

* **no circuit objects** — angles come in as one float matrix,
* **ping-pong state buffers** — two preallocated ``(batch, 2**n)`` arrays
  alternate as einsum source/destination, so matrix gates stop allocating a
  fresh contiguous copy per gate (the pre-compiled path paid two copies per
  gate: a ``moveaxis`` materialization and an ``ascontiguousarray``); the
  scratch buffer is only allocated when the program actually contains a
  matrix op — diagonal-only programs (a bare QAOA cost layer) run in one
  buffer,
* **in-place diagonal ops** — phase multiplies mutate the live buffer
  directly; a fused QAOA cost layer is a single elementwise multiply,
* **big-``n`` execution modes** — ``tile`` processes the batch in row chunks
  so peak memory is one output stack plus two tile-sized working buffers
  (instead of three full ``(batch, 2**n)`` stacks), and ``dtype=complex64``
  halves every buffer again; both are opt-in and the default (untiled,
  complex128) path is bit-exact with the pre-tiling engine.  Tiled results
  match untiled to <=1e-10 — the only divergence source is BLAS reduction
  order in the diagonal-op slot matmul, which may differ with row count.

Bit ordering matches :class:`~repro.simulator.statevector.Statevector`:
qubit 0 is the most significant bit of a basis-state index.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..telemetry import TELEMETRY as _telemetry
from .program import DiagonalOp, GateProgram, MatrixOp, RunElement

__all__ = [
    "batched_gate_matrices",
    "execute_program",
    "marginal_distribution",
    "marginal_probabilities",
]

_EYE2 = np.eye(2, dtype=complex)
_EYE2_C64 = np.eye(2, dtype=np.complex64)


def _resolve_dtype(dtype) -> np.dtype:
    """Validate an execution dtype (complex128 default, complex64 opt-in)."""
    if dtype is None:
        return np.dtype(np.complex128)
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.complex64), np.dtype(np.complex128)):
        raise ValueError(
            f"execution dtype must be complex64 or complex128, got {resolved}"
        )
    return resolved


def batched_gate_matrices(name: str, thetas: np.ndarray, dtype=complex) -> np.ndarray:
    """Stacked ``(batch, dim, dim)`` unitaries for one rotation gate."""
    thetas = np.asarray(thetas, dtype=float)
    half = 0.5 * thetas
    if name == "rx":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=dtype)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -1j * s
        mats[:, 1, 0] = -1j * s
        mats[:, 1, 1] = c
        return mats
    if name == "ry":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=dtype)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -s
        mats[:, 1, 0] = s
        mats[:, 1, 1] = c
        return mats
    if name == "rz":
        mats = np.zeros((thetas.size, 2, 2), dtype=dtype)
        mats[:, 0, 0] = np.exp(-1j * half)
        mats[:, 1, 1] = np.exp(1j * half)
        return mats
    if name == "rzz":
        phase = np.exp(-1j * half)
        conj = np.exp(1j * half)
        mats = np.zeros((thetas.size, 4, 4), dtype=dtype)
        mats[:, 0, 0] = phase
        mats[:, 1, 1] = conj
        mats[:, 2, 2] = conj
        mats[:, 3, 3] = phase
        return mats
    if name == "cp":
        mats = np.zeros((thetas.size, 4, 4), dtype=dtype)
        mats[:, 0, 0] = 1.0
        mats[:, 1, 1] = 1.0
        mats[:, 2, 2] = 1.0
        mats[:, 3, 3] = np.exp(1j * thetas)
        return mats
    raise ValueError(f"no batched matrix rule for gate {name!r}")


def _element_factor(
    element: RunElement, thetas: np.ndarray, cdtype: np.dtype
) -> np.ndarray:
    """One factor of a fused op: a constant or a ``(batch, k, k)`` stack."""
    single = cdtype == np.dtype(np.complex64)
    if element.matrix is not None:
        return element.matrix.astype(cdtype) if single else element.matrix
    mats = batched_gate_matrices(element.gate, thetas[:, element.slot], dtype=cdtype)
    eye = _EYE2_C64 if single else _EYE2
    if element.lift == 0:
        # kron(m, I): the factor acts on the pair's most significant wire.
        return np.einsum("bij,kl->bikjl", mats, eye).reshape(-1, 4, 4)
    if element.lift == 1:
        return np.einsum("bij,kl->bkilj", mats, eye).reshape(-1, 4, 4)
    return mats


def _combined_matrices(
    op: MatrixOp, thetas: np.ndarray, cdtype: np.dtype
) -> np.ndarray:
    """Multiply an op's factors into one ``(batch, k, k)`` stack.

    The first element acts first, so the combined unitary is
    ``e_n @ ... @ e_1``; broadcasting handles constant factors.
    """
    combined: np.ndarray | None = None
    for element in op.elements:
        factor = _element_factor(element, thetas, cdtype)
        combined = factor if combined is None else factor @ combined
    return combined


def _execute_block(
    program: GateProgram, thetas: np.ndarray, cdtype: np.dtype
) -> np.ndarray:
    """One ping-pong pass over the ops for a (sub-)batch of points.

    Contractions and phase multiplies act on each batch row independently,
    so a tiled caller slicing ``thetas`` gets rows matching the untiled
    pass to <=1e-10 (exactly, up to BLAS reduction order in the diagonal
    slot matmul).  ``np.einsum(out=...)`` casts under the ``'safe'`` rule, so in
    complex64 mode every einsum input is materialized at complex64 up front;
    in-place diagonal multiplies use ``'same_kind'`` casting and need no
    special handling.
    """
    size = thetas.shape[0]
    n = program.num_qubits
    dim = program.dim
    shape = (size,) + (2,) * n
    single = cdtype == np.dtype(np.complex64)

    ping = np.zeros((size, dim), dtype=cdtype)
    ping[:, 0] = 1.0
    # Scratch allocation is deferred to the first MatrixOp: diagonal-only
    # programs mutate ping in place and never need a second buffer.
    pong: np.ndarray | None = None

    for op in program.ops:
        if type(op) is DiagonalOp:
            if op.slots:
                angles = thetas[:, list(op.slots)] @ op.coeffs
                if single:
                    phase = np.exp(np.complex64(1j) * angles.astype(np.float32))
                else:
                    phase = np.exp(1j * angles)
                if op.phase is not None:
                    phase *= op.phase
                ping *= phase
            else:
                ping *= op.phase
            continue
        if pong is None:
            pong = np.empty_like(ping)
        k = len(op.qubits)
        if op.tensor is not None:
            tensor = op.tensor.astype(cdtype) if single else op.tensor
            np.einsum(
                op.subscripts,
                tensor,
                ping.reshape(shape),
                out=pong.reshape(shape),
            )
        else:
            mats = _combined_matrices(op, thetas, cdtype)
            np.einsum(
                op.subscripts_batched,
                mats.reshape((size,) + (2,) * (2 * k)),
                ping.reshape(shape),
                out=pong.reshape(shape),
            )
        ping, pong = pong, ping
    return ping


def execute_program(
    program: GateProgram,
    thetas: np.ndarray | Sequence[Sequence[float]] | None = None,
    *,
    batch: int | None = None,
    dtype=None,
    tile: int | None = None,
) -> np.ndarray:
    """Run a compiled program over a batch of parameter points.

    Args:
        program: the compiled gate program.
        thetas: ``(batch, num_slots)`` slot-angle matrix (a single point may
            be passed as a 1-D vector).  May be omitted for parameterless
            programs.
        batch: batch size when ``thetas`` is omitted (default 1).
        dtype: execution precision, ``complex64`` or ``complex128`` (the
            default).  Single precision halves every buffer; amplitudes agree
            with double precision to ~1e-6.
        tile: optional row-chunk size.  The batch is executed ``tile`` points
            at a time into one preallocated output, bounding the working set
            at two ``(tile, 2**n)`` buffers.  Every op acts on batch rows
            independently, so tiled rows match the untiled pass to <=1e-10
            (BLAS reduction order in the diagonal slot matmul is the only
            divergence source).

    Returns:
        A ``(batch, 2**n)`` complex array of final statevectors.
    """
    if thetas is None:
        thetas = np.zeros((1 if batch is None else int(batch), 0), dtype=float)
    else:
        thetas = np.atleast_2d(np.asarray(thetas, dtype=float))
    if thetas.shape[1] != program.num_slots:
        raise ValueError(
            f"program expects {program.num_slots} slot angles per point, "
            f"got {thetas.shape[1]}"
        )
    cdtype = _resolve_dtype(dtype)
    size = thetas.shape[0]

    # Telemetry rides on one enabled-check per *program execution*, never
    # per op or per sweep point — the disabled path costs a single branch
    # (the <2% overhead floor in bench_telemetry.py pins this).
    start_ns = time.time_ns() if _telemetry.enabled else 0

    tiles = 1
    if tile is not None:
        tile = int(tile)
        if tile < 1:
            raise ValueError("tile must be >= 1")
        if tile < size:
            out = np.empty((size, program.dim), dtype=cdtype)
            tiles = 0
            for start in range(0, size, tile):
                stop = min(start + tile, size)
                out[start:stop] = _execute_block(program, thetas[start:stop], cdtype)
                tiles += 1
            if _telemetry.enabled:
                _record_execution(program, size, tiles, start_ns)
            return out
    result = _execute_block(program, thetas, cdtype)
    if _telemetry.enabled:
        _record_execution(program, size, tiles, start_ns)
    return result


def _record_execution(
    program: GateProgram, points: int, tiles: int, start_ns: int
) -> None:
    """Record one compiled execution into the registry and trace."""
    matrix_ops = sum(1 for op in program.ops if type(op) is MatrixOp)
    diagonal_ops = len(program.ops) - matrix_ops
    registry = _telemetry.registry
    registry.counter("engine.executions").inc()
    registry.counter("engine.points_executed").inc(points)
    registry.counter("engine.tiles_executed").inc(tiles)
    registry.counter("engine.matrix_ops_applied").inc(matrix_ops * points)
    registry.counter("engine.diagonal_ops_applied").inc(diagonal_ops * points)
    end_ns = time.time_ns()
    registry.histogram("engine.execute_seconds").observe((end_ns - start_ns) / 1e9)
    _telemetry.tracer.add_span(
        "engine.execute",
        "engine",
        start_ns,
        end_ns,
        args={
            "points": points,
            "qubits": program.num_qubits,
            "tiles": tiles,
            "matrix_ops": matrix_ops,
            "diagonal_ops": diagonal_ops,
        },
    )


def marginal_probabilities(
    states: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Measurement probabilities over ``qubits`` for every state in a stack.

    Returns a ``(batch, 2**len(qubits))`` array matching
    :meth:`Statevector.probabilities` row by row.
    """
    return marginal_distribution(np.abs(states) ** 2, qubits, num_qubits)


def marginal_distribution(
    probabilities: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Marginalize a ``(batch, 2**n)`` probability stack onto ``qubits``.

    The single home of the trace-axes + measured-order permutation logic;
    :func:`marginal_probabilities` (amplitude stacks) and the density-matrix
    validator (diagonal probability vectors) both route through it.  A
    float32 stack (the complex64 execution mode) marginalizes in float32 —
    no silent doubling of the working set.
    """
    full = np.asarray(probabilities)
    if full.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        full = full.astype(float)
    qubits = list(qubits)
    if tuple(qubits) == tuple(range(num_qubits)):
        return full
    batch = full.shape[0]
    tensor = full.reshape([batch] + [2] * num_qubits)
    keep = set(qubits)
    trace_axes = tuple(ax + 1 for ax in range(num_qubits) if ax not in keep)
    marg = tensor.sum(axis=trace_axes) if trace_axes else tensor
    current = sorted(qubits)
    perm = [0] + [current.index(q) + 1 for q in qubits]
    marg = np.transpose(marg, perm)
    return marg.reshape(batch, -1)
