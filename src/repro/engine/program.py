"""Compiled gate-program data model.

A :class:`GateProgram` is the lowered form of one circuit *structure*: a flat
tuple of numeric ops plus a table of parameter *slots* (one per parameterized
gate position, in instruction order).  Executing a program never touches
:class:`~repro.circuit.circuit.QuantumCircuit` objects — it consumes a raw
``(batch, num_slots)`` float matrix of gate angles, which is what makes
parameter sweeps zero-rebind.

Two op kinds exist after compilation:

* :class:`MatrixOp` — a (possibly fused) small unitary applied to one wire or
  one wire pair through a single precompiled ``einsum`` contraction.  A fully
  constant op stores the folded matrix; an op with angle-dependent factors
  stores its factor list (:class:`RunElement`) and builds the combined
  ``(batch, 2^k, 2^k)`` stack at execution time (tiny matrices — the cost is
  O(batch·4^k), not O(batch·2^n)).
* :class:`DiagonalOp` — a run of diagonal gates (``rz``/``z``/``s``/``sdg``/
  ``t``/``cz``/``rzz``/``cp``) collapsed to one elementwise phase multiply:
  ``state *= const_phase * exp(i · thetas @ coeffs)`` over precomputed
  per-basis-index exponent masks.  No matmul, no axis moves, no state copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.parameters import Parameter, ParameterExpression

__all__ = [
    "RunElement",
    "MatrixOp",
    "DiagonalOp",
    "GateProgram",
    "ParameterPlan",
    "parameter_plan",
    "plan_slot_values",
    "slot_values_from_circuits",
]


@dataclass(frozen=True)
class RunElement:
    """One factor of a fused matrix op, applied in list order.

    Either a constant matrix already expressed on the op's full local space,
    or a runtime-built rotation identified by gate name and parameter slot.
    ``lift`` places a single-qubit runtime factor inside a two-qubit run:
    0 lifts onto the pair's first (most significant) wire, 1 onto the second.
    """

    matrix: np.ndarray | None
    gate: str = ""
    slot: int = -1
    lift: int = -1


@dataclass(frozen=True)
class MatrixOp:
    """A small unitary on ``qubits``, applied via one einsum contraction.

    ``matrix``/``tensor`` are set for fully constant (folded) ops; otherwise
    ``elements`` holds the factor list multiplied together at execution time
    (first element acts first: combined = e_k @ ... @ e_1).
    """

    qubits: tuple[int, ...]
    subscripts: str
    subscripts_batched: str
    matrix: np.ndarray | None = None
    tensor: np.ndarray | None = None
    elements: tuple[RunElement, ...] = ()


@dataclass(frozen=True)
class DiagonalOp:
    """An elementwise phase multiply over the full state.

    ``phase`` is the constant part (``None`` when trivially one); ``slots``
    and ``coeffs`` describe the angle-linear part: the batch phase is
    ``exp(1j * thetas[:, slots] @ coeffs)`` with ``coeffs`` of shape
    ``(len(slots), 2**n)``.
    """

    phase: np.ndarray | None = None
    slots: tuple[int, ...] = ()
    coeffs: np.ndarray | None = None


@dataclass(frozen=True)
class GateProgram:
    """A compiled circuit structure: flat ops plus the parameter-slot table."""

    num_qubits: int
    ops: tuple
    #: Instruction index (into ``circuit.instructions``) of each slot.
    slot_positions: tuple[int, ...]
    #: Gate name of each slot (``rx``/``ry``/``rz``/``rzz``/``cp``).
    slot_gates: tuple[str, ...]
    #: Unitary gate count of the source structure (before fusion).
    source_gates: int

    @property
    def dim(self) -> int:
        return 1 << self.num_qubits

    @property
    def num_slots(self) -> int:
        return len(self.slot_positions)

    @property
    def num_ops(self) -> int:
        return len(self.ops)


# ---------------------------------------------------------------------------
# Parameter plans: template parameter vector -> slot angle matrix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParameterPlan:
    """Affine map from a flat parameter vector to a program's slot angles.

    Slot ``s`` receives ``coeff[s] * theta[param_index[s]] + offset[s]``;
    slots with ``param_index == -1`` are constants (bound floats in the
    template) and receive ``offset[s]`` alone.  This covers every angle form
    the circuit IR can express (floats, free parameters, affine expressions
    such as QAOA's weighted cost layers).
    """

    num_parameters: int
    param_index: np.ndarray
    coeff: np.ndarray
    offset: np.ndarray


def parameter_plan(
    circuit: QuantumCircuit,
    program: GateProgram,
    parameters: Sequence[Parameter] | None = None,
) -> ParameterPlan:
    """Build the slot-angle plan for a template compiled into ``program``.

    Args:
        circuit: the (possibly parameterized) template the program was
            compiled from — instruction positions must line up.
        program: the compiled program.
        parameters: the flat parameter ordering callers bind with
            (default: ``circuit.ordered_parameters()``, the
            ``assign_by_order`` convention).
    """
    params = list(parameters) if parameters is not None else circuit.ordered_parameters()
    index = {p: i for i, p in enumerate(params)}
    count = program.num_slots
    param_index = np.full(count, -1, dtype=np.intp)
    coeff = np.zeros(count, dtype=float)
    offset = np.zeros(count, dtype=float)
    instructions = circuit.instructions
    for slot, position in enumerate(program.slot_positions):
        value = instructions[position].params[0]
        if isinstance(value, Parameter):
            if value not in index:
                raise ValueError(f"parameter {value.name!r} missing from the plan ordering")
            param_index[slot] = index[value]
            coeff[slot] = 1.0
        elif isinstance(value, ParameterExpression):
            if value.parameter not in index:
                raise ValueError(
                    f"parameter {value.parameter.name!r} missing from the plan ordering"
                )
            param_index[slot] = index[value.parameter]
            coeff[slot] = value.coeff
            offset[slot] = value.offset
        else:
            offset[slot] = float(value)
    return ParameterPlan(len(params), param_index, coeff, offset)


def plan_slot_values(plan: ParameterPlan, theta: np.ndarray) -> np.ndarray:
    """Map a ``(points, P)`` parameter matrix to ``(points, S)`` slot angles."""
    theta = np.atleast_2d(np.asarray(theta, dtype=float))
    if theta.shape[1] != plan.num_parameters:
        raise ValueError(
            f"expected {plan.num_parameters} parameters per point, got {theta.shape[1]}"
        )
    out = np.broadcast_to(plan.offset, (theta.shape[0], plan.offset.size)).copy()
    bound = plan.param_index >= 0
    if np.any(bound):
        out[:, bound] += theta[:, plan.param_index[bound]] * plan.coeff[bound]
    return out


def slot_values_from_circuits(
    program: GateProgram, circuits: Sequence[QuantumCircuit]
) -> np.ndarray:
    """Extract the ``(batch, S)`` slot-angle matrix from bound circuits.

    Every circuit must share the program's structure; angles are read straight
    off the instruction records, so no binding or simulation happens here.
    """
    out = np.empty((len(circuits), program.num_slots), dtype=float)
    positions = program.slot_positions
    for row, circuit in enumerate(circuits):
        instructions = circuit.instructions
        for col, position in enumerate(positions):
            out[row, col] = float(instructions[position].params[0])
    return out
