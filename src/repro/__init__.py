"""EQC reproduction: Ensembled Quantum Computing for Variational Quantum Algorithms.

A from-scratch Python reproduction of Stein et al., *EQC* (ISCA 2022),
including every substrate the paper depends on: a quantum circuit IR and
statevector/noisy simulators, topology-aware transpilation, simulated IBMQ
devices with calibration drift, a discrete-event cloud, and the EQC
master/client asynchronous training framework with its adaptive
``PCorrect`` weighting.

Quickstart::

    from repro import heisenberg_vqe_problem, EQCEnsemble, EQCConfig, EnergyObjective

    problem = heisenberg_vqe_problem()
    ensemble = EQCEnsemble(EnergyObjective(problem.estimator),
                           EQCConfig(device_names=("x2", "Bogota", "Casablanca")))
    history = ensemble.train(problem.random_initial_parameters(), num_epochs=50)
    print(history.final_loss(), "vs ground", problem.ground_energy)
"""

from .backends import (
    BatchedStatevectorBackend,
    ExecutionBackend,
    NoisyBackend,
    StatevectorBackend,
    TranspileCache,
)
from .baselines import IdealTrainer, SingleDeviceTrainer
from .circuit import (
    Parameter,
    ParameterVector,
    QuantumCircuit,
    ghz_state,
    hardware_efficient_ansatz,
    qaoa_maxcut_ansatz,
)
from .core import (
    BOUNDS_MODERATE,
    BOUNDS_TIGHT,
    BOUNDS_WIDE,
    EnergyObjective,
    EQCConfig,
    EQCEnsemble,
    EQCClientNode,
    EQCMasterNode,
    QnnObjective,
    TrainingHistory,
    WeightBounds,
    WeightingConfig,
    estimate_p_correct,
    normalize_weights,
)
from .devices import (
    DEFAULT_QAOA_FLEET,
    DEFAULT_VQE_FLEET,
    TABLE_I,
    available_devices,
    build_fleet,
    build_qpu,
)
from .engine import (
    GateProgram,
    ProgramCache,
    compile_circuit,
    execute_program,
    shared_program_cache,
)
from .faults import (
    BreakerState,
    DeviceHealthTracker,
    DeviceOutageError,
    FaultError,
    FaultInjector,
    FaultPlan,
    FleetExhaustedError,
    JobDeadlineExceeded,
    JobRetriesExhausted,
    OutageWindow,
    RetryPolicy,
    WorkerCrash,
)
from .hamiltonian import (
    EnergyEstimator,
    PauliString,
    PauliSum,
    heisenberg_square_lattice,
    ring_maxcut_hamiltonian,
)
from .persist import (
    CheckpointCorruptError,
    JournalDivergenceError,
    RunDirectory,
    RunStore,
    TrainingCheckpointer,
    list_runs,
    load_run,
    read_journal,
    resume,
)
from .sched import (
    BackpressurePolicy,
    CalibrationAwarePolicy,
    CloudScheduler,
    DeadlinePolicy,
    EventKernel,
    FairSharePolicy,
    FifoPolicy,
    LeastLoadedPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    StatisticalQueuePolicy,
    TournamentConfig,
    WorkloadGenerator,
    run_tournament,
)
from .simulator import (
    Counts,
    MixingNoiseSpec,
    noisy_probabilities,
    noisy_probabilities_batch,
    simulate_statevector,
)
from .transpiler import transpile
from .vqa import (
    QAOAProblem,
    QNNProblem,
    VQEProblem,
    heisenberg_vqe_problem,
    make_synthetic_dataset,
    ring_maxcut_qaoa_problem,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # circuits
    "QuantumCircuit",
    "Parameter",
    "ParameterVector",
    "hardware_efficient_ansatz",
    "qaoa_maxcut_ansatz",
    "ghz_state",
    # simulators
    "simulate_statevector",
    "Counts",
    "MixingNoiseSpec",
    "noisy_probabilities",
    "noisy_probabilities_batch",
    # compiled execution engine
    "GateProgram",
    "compile_circuit",
    "execute_program",
    "ProgramCache",
    "shared_program_cache",
    # execution backends
    "ExecutionBackend",
    "StatevectorBackend",
    "BatchedStatevectorBackend",
    "NoisyBackend",
    "TranspileCache",
    # devices / transpiler
    "TABLE_I",
    "DEFAULT_VQE_FLEET",
    "DEFAULT_QAOA_FLEET",
    "available_devices",
    "build_qpu",
    "build_fleet",
    "transpile",
    # observables
    "PauliString",
    "PauliSum",
    "EnergyEstimator",
    "heisenberg_square_lattice",
    "ring_maxcut_hamiltonian",
    # problems
    "VQEProblem",
    "QAOAProblem",
    "QNNProblem",
    "heisenberg_vqe_problem",
    "ring_maxcut_qaoa_problem",
    "make_synthetic_dataset",
    # EQC core
    "EQCEnsemble",
    "EQCConfig",
    "EQCMasterNode",
    "EQCClientNode",
    "EnergyObjective",
    "QnnObjective",
    "TrainingHistory",
    "WeightBounds",
    "WeightingConfig",
    "estimate_p_correct",
    "normalize_weights",
    "BOUNDS_TIGHT",
    "BOUNDS_MODERATE",
    "BOUNDS_WIDE",
    # baselines
    "IdealTrainer",
    "SingleDeviceTrainer",
    # discrete-event scheduler
    "EventKernel",
    "CloudScheduler",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "LeastLoadedPolicy",
    "CalibrationAwarePolicy",
    "BackpressurePolicy",
    "DeadlinePolicy",
    "StatisticalQueuePolicy",
    "WorkloadGenerator",
    "TournamentConfig",
    "run_tournament",
    # fault injection and resilience
    "FaultPlan",
    "OutageWindow",
    "WorkerCrash",
    "FaultInjector",
    "RetryPolicy",
    "DeviceHealthTracker",
    "BreakerState",
    "FaultError",
    "DeviceOutageError",
    "JobRetriesExhausted",
    "JobDeadlineExceeded",
    "FleetExhaustedError",
    # durability / crash recovery
    "RunStore",
    "RunDirectory",
    "TrainingCheckpointer",
    "CheckpointCorruptError",
    "JournalDivergenceError",
    "list_runs",
    "load_run",
    "read_journal",
    "resume",
]
