"""Figure 12 — weighted vs unweighted QAOA EQC, and the minimum-cost ranking.

The paper compares the unweighted EQC QAOA against the [0.5, 1.5] and
[0.25, 1.75] weightings, and ranks the best MaxCut cost attained by each
weighted/unweighted EQC variant against the eight single devices.  Weighting
moves EQC from second-worst (unweighted) to within reach of the top single
devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.reporting import format_table
from ..core.ensemble import EQCConfig, EQCEnsemble
from ..core.history import TrainingHistory
from ..core.objective import EnergyObjective
from ..core.weighting import BOUNDS_MODERATE, BOUNDS_WIDE, WeightBounds
from ..devices.catalog import DEFAULT_QAOA_FLEET
from ..vqa.qaoa import ring_maxcut_qaoa_problem
from .fig11_qaoa import QAOAExperimentConfig, QAOAExperimentResult, run_fig11_qaoa

__all__ = [
    "WeightedQAOAConfig",
    "WeightedQAOAResult",
    "run_fig12_weighted_qaoa",
    "render_fig12",
]

DEFAULT_SWEEP: tuple[tuple[str, WeightBounds | None], ...] = (
    ("no weighting", None),
    ("weights 0.50-1.50", BOUNDS_MODERATE),
    ("weights 0.25-1.75", BOUNDS_WIDE),
)


@dataclass(frozen=True)
class WeightedQAOAConfig:
    """Knobs of the Fig. 12 sweep."""

    iterations: int = 50
    shots: int = 8192
    learning_rate: float = 0.1
    devices: tuple[str, ...] = DEFAULT_QAOA_FLEET
    sweep: tuple[tuple[str, WeightBounds | None], ...] = DEFAULT_SWEEP
    seed: int = 11
    record_every: int = 1
    #: Also run the single-device baselines so the Fig. 12 ranking panel can
    #: be reproduced; reuse a Fig. 11 result instead when one is available.
    include_single_devices: bool = True


@dataclass
class WeightedQAOAResult:
    """Weighted-EQC histories plus (optionally) the single-device baselines."""

    runs: dict[str, TrainingHistory]
    baseline: QAOAExperimentResult | None
    config: WeightedQAOAConfig

    def problem(self):
        if self.baseline is not None:
            return self.baseline.problem
        return ring_maxcut_qaoa_problem()

    def sweep_rows(self) -> list[dict[str, object]]:
        problem = self.problem()
        rows: list[dict[str, object]] = []
        for label, history in self.runs.items():
            rows.append(
                {
                    "weighting": label,
                    "final_cost": problem.normalized_cost(history.final_loss()),
                    "best_cost": problem.normalized_cost(history.best_loss()),
                    "approx_ratio": problem.approximation_ratio(history.final_loss()),
                }
            )
        return rows

    def ranking_rows(self) -> list[dict[str, object]]:
        """Best-cost ranking of every system (Fig. 12 right panel)."""
        problem = self.problem()
        entries: list[tuple[str, float]] = []
        for label, history in self.runs.items():
            entries.append((f"EQC {label}", problem.normalized_cost(history.best_loss())))
        if self.baseline is not None:
            for device, history in self.baseline.singles.items():
                entries.append((device, problem.normalized_cost(history.best_loss())))
            entries.append(
                (
                    "EQC unweighted (fig11)",
                    problem.normalized_cost(self.baseline.eqc_history.best_loss()),
                )
            )
        entries.sort(key=lambda item: item[1])
        return [
            {"rank": rank + 1, "system": label, "best_cost": cost}
            for rank, (label, cost) in enumerate(entries)
        ]


def run_fig12_weighted_qaoa(
    config: WeightedQAOAConfig | None = None,
    baseline: QAOAExperimentResult | None = None,
) -> WeightedQAOAResult:
    """Execute the Fig. 12 sweep (reusing a Fig. 11 result when supplied)."""
    config = config or WeightedQAOAConfig()
    problem = ring_maxcut_qaoa_problem()
    theta0 = problem.random_initial_parameters(seed=config.seed)

    if baseline is None and config.include_single_devices:
        baseline = run_fig11_qaoa(
            QAOAExperimentConfig(
                iterations=config.iterations,
                shots=config.shots,
                learning_rate=config.learning_rate,
                devices=config.devices,
                eqc_runs=1,
                seed=config.seed,
                record_every=config.record_every,
                run_ideal_reference=False,
            )
        )

    runs: dict[str, TrainingHistory] = {}
    for label, bounds in config.sweep:
        ensemble = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(
                device_names=config.devices,
                shots=config.shots,
                learning_rate=config.learning_rate,
                weight_bounds=bounds,
                seed=config.seed,
                label=f"EQC QAOA {label}",
            ),
        )
        runs[label] = ensemble.train(
            theta0, num_epochs=config.iterations, record_every=config.record_every
        )

    return WeightedQAOAResult(runs=runs, baseline=baseline, config=config)


def render_fig12(result: WeightedQAOAResult) -> str:
    """Text rendering of both Fig. 12 panels."""
    sweep = format_table(result.sweep_rows())
    ranking = format_table(result.ranking_rows())
    return f"Weighting sweep\n{sweep}\n\nBest-cost ranking\n{ranking}"
