"""Figure 1 — the motivating overview: error rate and run time, 3 devices vs EQC.

Figure 1 is a condensed view of the Fig. 6 experiment restricted to
Casablanca, x2 and Bogota: the per-device VQE error relative to the ideal
solution, the per-device run time in hours, and how EQC compares on both
axes.  The driver simply runs (or accepts) a Fig. 6 result and extracts the
three-device summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.reporting import format_table
from .fig6_vqe import VQEExperimentConfig, VQEExperimentResult, run_fig6_vqe

__all__ = ["Fig1Row", "fig1_overview", "render_fig1"]

DEFAULT_DEVICES: tuple[str, ...] = ("Casablanca", "x2", "Bogota")


@dataclass(frozen=True)
class Fig1Row:
    """One bar of each Fig. 1 panel."""

    system: str
    error_pct: float
    run_hours: float

    def as_dict(self) -> dict[str, object]:
        return {
            "system": self.system,
            "error_pct": self.error_pct,
            "run_hours": self.run_hours,
        }


def fig1_overview(
    result: VQEExperimentResult | None = None,
    devices: Sequence[str] = DEFAULT_DEVICES,
    epochs: int = 250,
    eqc_runs: int = 1,
    seed: int = 7,
) -> list[Fig1Row]:
    """Build the Fig. 1 rows, running a reduced Fig. 6 experiment if needed."""
    if result is None:
        result = run_fig6_vqe(
            VQEExperimentConfig(
                epochs=epochs,
                single_devices=tuple(devices),
                eqc_runs=eqc_runs,
                seed=seed,
            )
        )
    reference = result.ideal_solution_energy
    rows: list[Fig1Row] = []
    for device in devices:
        if device not in result.singles:
            continue
        history = result.singles[device]
        rows.append(
            Fig1Row(
                system=device,
                error_pct=100.0 * history.error_vs(reference),
                run_hours=history.total_hours(),
            )
        )
    eqc = result.eqc_mean_history
    rows.append(
        Fig1Row(
            system="EQC",
            error_pct=100.0 * eqc.error_vs(reference),
            run_hours=eqc.total_hours(),
        )
    )
    return rows


def render_fig1(rows: Sequence[Fig1Row]) -> str:
    """Text rendering of the Fig. 1 overview."""
    return format_table([row.as_dict() for row in rows])
