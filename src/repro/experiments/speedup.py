"""Section V speedup statistics: EQC throughput vs every single device.

The paper's abstract summarizes the VQE evaluation as a 10.5x average
speedup (at least 5.2x, up to 86x) over single-device training.  This driver
computes the analogous statistics from a Fig. 6 experiment result.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import SpeedupSummary, speedup_summary
from ..analysis.reporting import format_kv, format_table
from .fig6_vqe import VQEExperimentConfig, VQEExperimentResult, run_fig6_vqe

__all__ = ["speedup_from_result", "run_speedup_summary", "render_speedup"]


def speedup_from_result(result: VQEExperimentResult) -> SpeedupSummary:
    """Speedup statistics of the first EQC run against every single device."""
    return speedup_summary(result.eqc_mean_history, list(result.singles.values()))


def run_speedup_summary(config: VQEExperimentConfig | None = None) -> SpeedupSummary:
    """Run a Fig. 6 experiment and summarize its speedups."""
    result = run_fig6_vqe(config)
    return speedup_from_result(result)


def render_speedup(summary: SpeedupSummary) -> str:
    """Text rendering of the speedup summary."""
    rows = [
        {"device": label, "epochs_per_hour": rate}
        for label, rate in summary.single_device_rates.items()
    ]
    rows.append({"device": "EQC", "epochs_per_hour": summary.eqc_epochs_per_hour})
    stats = format_kv(
        {
            "average_speedup": summary.average_speedup,
            "min_speedup": summary.min_speedup,
            "max_speedup": summary.max_speedup,
        }
    )
    return f"{format_table(rows)}\n{stats}"
