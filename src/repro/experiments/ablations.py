"""Ablation studies for the design choices DESIGN.md calls out.

These are not paper figures; they probe the EQC design decisions:

* **Asynchrony** — asynchronous (ASGD) EQC vs a synchronous variant that
  barriers every cycle (all clients compute gradients from the same
  parameter snapshot and the slowest device gates the epoch).
* **Weight refresh** — recomputing ``PCorrect`` at every job vs freezing the
  values captured at ensemble-formation time.
* **Ensemble size** — throughput and converged error as the fleet grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.reporting import format_table
from ..cloud.clock import SECONDS_PER_HOUR
from ..cloud.provider import CloudProvider
from ..core.client import EQCClientNode
from ..core.ensemble import EQCConfig, EQCEnsemble
from ..core.history import EpochRecord, TrainingHistory
from ..core.objective import EnergyObjective, VQAObjective
from ..core.weighting import BOUNDS_MODERATE, WeightBounds, normalize_weights
from ..devices.catalog import DEFAULT_VQE_FLEET, build_fleet
from ..vqa.optimizer import AsgdRule
from ..vqa.tasks import vqe_task_cycle
from ..vqa.vqe import heisenberg_vqe_problem

__all__ = [
    "SynchronousEnsembleTrainer",
    "run_async_vs_sync",
    "run_weight_refresh_ablation",
    "run_ensemble_size_sweep",
]


class SynchronousEnsembleTrainer:
    """A barrier-synchronized variant of EQC (the ablation baseline).

    Every cycle, the master snapshots the parameters, hands each task in the
    cycle to a client round-robin, waits for *all* of them to finish (the
    barrier — so the slowest device's queue gates the epoch), and only then
    applies the accumulated updates.
    """

    def __init__(
        self,
        objective: VQAObjective,
        device_names: Sequence[str],
        shots: int = 8192,
        learning_rate: float = 0.1,
        weight_bounds: WeightBounds | None = BOUNDS_MODERATE,
        seed: int = 0,
    ) -> None:
        self.objective = objective
        self.fleet = build_fleet(device_names)
        self.provider = CloudProvider(self.fleet, seed=seed, shots=shots)
        self.clients = [
            EQCClientNode(objective, qpu, self.provider, shots=shots) for qpu in self.fleet
        ]
        self.rule = AsgdRule(learning_rate=learning_rate)
        self.weight_bounds = weight_bounds
        self.label = f"sync[{len(self.fleet)} devices]"

    def train(self, initial_parameters, num_epochs: int, record_every: int = 1) -> TrainingHistory:
        theta = np.asarray(initial_parameters, dtype=float).copy()
        queue = vqe_task_cycle(self.objective.num_parameters)
        history = TrainingHistory(
            label=self.label,
            device_names=tuple(qpu.name for qpu in self.fleet),
            metadata={"mode": "synchronous"},
        )
        now = 0.0
        for epoch in range(1, num_epochs + 1):
            snapshot = tuple(float(v) for v in theta)
            outcomes = []
            for offset in range(queue.cycle_length):
                client = self.clients[offset % len(self.clients)]
                task = queue.next_task()
                outcomes.append(client.execute_task(task, snapshot, submit_time=now))
            # The barrier: the epoch ends when the slowest job returns.
            now = max(outcome.finish_time for outcome in outcomes)
            p_values = {o.client_name: o.p_correct for o in outcomes}
            weights = normalize_weights(p_values, self.weight_bounds)
            for outcome in outcomes:
                index = outcome.task.parameter_index
                theta[index] = self.rule.step(
                    theta[index], outcome.gradient, weights.get(outcome.client_name, 1.0)
                )
            if epoch % record_every == 0 or epoch == num_epochs:
                history.add(
                    EpochRecord(
                        epoch=epoch,
                        sim_time_hours=now / SECONDS_PER_HOUR,
                        loss=self.objective.exact_loss(tuple(theta)),
                        parameters=tuple(float(v) for v in theta),
                        weights=weights,
                    )
                )
        history.total_updates = num_epochs * queue.cycle_length
        return history


def run_async_vs_sync(
    epochs: int = 60,
    device_names: Sequence[str] = DEFAULT_VQE_FLEET,
    shots: int = 4096,
    seed: int = 7,
) -> list[dict[str, object]]:
    """Compare asynchronous EQC with the barrier-synchronized variant."""
    problem = heisenberg_vqe_problem()
    theta0 = problem.random_initial_parameters(seed=seed)

    async_history = EQCEnsemble(
        EnergyObjective(problem.estimator),
        EQCConfig(device_names=tuple(device_names), shots=shots, seed=seed, label="async"),
    ).train(theta0, num_epochs=epochs)

    sync_history = SynchronousEnsembleTrainer(
        EnergyObjective(problem.estimator), device_names, shots=shots, seed=seed
    ).train(theta0, num_epochs=epochs)

    rows = []
    for history in (async_history, sync_history):
        rows.append(
            {
                "mode": history.label,
                "final_energy": history.final_loss(),
                "hours": history.total_hours(),
                "epochs_per_hour": history.epochs_per_hour(),
            }
        )
    return rows


def run_weight_refresh_ablation(
    epochs: int = 60,
    device_names: Sequence[str] = DEFAULT_VQE_FLEET,
    shots: int = 4096,
    seed: int = 7,
) -> list[dict[str, object]]:
    """Live PCorrect refresh vs weights frozen at ensemble formation."""
    problem = heisenberg_vqe_problem()
    theta0 = problem.random_initial_parameters(seed=seed)
    rows = []
    for label, refresh in (("refresh every job", True), ("frozen at formation", False)):
        history = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(
                device_names=tuple(device_names),
                shots=shots,
                seed=seed,
                refresh_weights=refresh,
                label=label,
            ),
        ).train(theta0, num_epochs=epochs)
        rows.append(
            {
                "weight_refresh": label,
                "final_energy": history.final_loss(),
                "epochs_per_hour": history.epochs_per_hour(),
            }
        )
    return rows


def run_ensemble_size_sweep(
    sizes: Sequence[int] = (1, 2, 4, 6, 8, 10),
    epochs: int = 40,
    shots: int = 4096,
    seed: int = 7,
) -> list[dict[str, object]]:
    """Throughput and error as the ensemble grows device by device."""
    problem = heisenberg_vqe_problem()
    theta0 = problem.random_initial_parameters(seed=seed)
    rows = []
    for size in sizes:
        if not 1 <= size <= len(DEFAULT_VQE_FLEET):
            raise ValueError(f"ensemble size {size} outside the available fleet")
        devices = DEFAULT_VQE_FLEET[:size]
        history = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(
                device_names=devices,
                shots=shots,
                seed=seed,
                label=f"EQC[{size}]",
            ),
        ).train(theta0, num_epochs=epochs)
        rows.append(
            {
                "ensemble_size": size,
                "devices": ",".join(devices),
                "final_energy": history.final_loss(),
                "epochs_per_hour": history.epochs_per_hour(),
                "hours": history.total_hours(),
            }
        )
    return rows
