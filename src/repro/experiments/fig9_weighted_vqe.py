"""Figure 9 — the weighted VQE sweep: no weights vs three weight bands.

The paper re-runs the Heisenberg VQE on EQC under four weighting
configurations — unweighted, [0.75, 1.25], [0.5, 1.5] and [0.25, 1.75] — and
reports, for each, the convergence epoch and the converged error relative to
the ground energy.  Wider bands converge faster (larger effective steps from
trusted devices) at some cost in final error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.reporting import format_table
from ..baselines.ideal import IdealTrainer
from ..core.ensemble import EQCConfig, EQCEnsemble
from ..core.history import TrainingHistory
from ..core.objective import EnergyObjective
from ..core.weighting import BOUNDS_MODERATE, BOUNDS_TIGHT, BOUNDS_WIDE, WeightBounds
from ..devices.catalog import DEFAULT_VQE_FLEET
from ..vqa.vqe import VQEProblem, heisenberg_vqe_problem

__all__ = [
    "WeightedVQEConfig",
    "WeightedVQEResult",
    "run_fig9_weighted_vqe",
    "render_fig9",
]

#: The paper's four weighting configurations, labelled as in Fig. 9.
DEFAULT_SWEEP: tuple[tuple[str, WeightBounds | None], ...] = (
    ("no weighting", None),
    ("weights 0.75-1.25", BOUNDS_TIGHT),
    ("weights 0.50-1.50", BOUNDS_MODERATE),
    ("weights 0.25-1.75", BOUNDS_WIDE),
)


@dataclass(frozen=True)
class WeightedVQEConfig:
    """Knobs of the Fig. 9 sweep."""

    epochs: int = 250
    shots: int = 8192
    learning_rate: float = 0.1
    ensemble_devices: tuple[str, ...] = DEFAULT_VQE_FLEET
    sweep: tuple[tuple[str, WeightBounds | None], ...] = DEFAULT_SWEEP
    seed: int = 7
    record_every: int = 1
    run_ideal_reference: bool = True


@dataclass
class WeightedVQEResult:
    """Histories of the weighting sweep plus the ideal reference."""

    problem: VQEProblem
    ideal: TrainingHistory | None
    runs: dict[str, TrainingHistory]
    config: WeightedVQEConfig

    @property
    def reference_energy(self) -> float:
        """Ideal-solution energy when available, else the exact ground energy."""
        if self.ideal is not None:
            return self.ideal.final_loss()
        return self.problem.ground_energy

    def rows(self) -> list[dict[str, object]]:
        reference = self.reference_energy
        rows: list[dict[str, object]] = []
        for label, history in self.runs.items():
            rows.append(
                {
                    "weighting": label,
                    "final_energy": history.final_loss(),
                    "error_pct": 100.0 * history.error_vs(reference),
                    "convergence_epoch": history.convergence_epoch(reference),
                    "epochs_per_hour": history.epochs_per_hour(),
                }
            )
        return rows


def run_fig9_weighted_vqe(config: WeightedVQEConfig | None = None) -> WeightedVQEResult:
    """Execute the Fig. 9 weighting sweep."""
    config = config or WeightedVQEConfig()
    problem = heisenberg_vqe_problem()
    theta0 = problem.random_initial_parameters(seed=config.seed)

    ideal = None
    if config.run_ideal_reference:
        ideal = IdealTrainer(
            problem.estimator,
            shots=config.shots,
            learning_rate=config.learning_rate,
            seed=config.seed,
        ).train(theta0, num_epochs=config.epochs, record_every=config.record_every)

    runs: dict[str, TrainingHistory] = {}
    for label, bounds in config.sweep:
        ensemble = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(
                device_names=config.ensemble_devices,
                shots=config.shots,
                learning_rate=config.learning_rate,
                weight_bounds=bounds,
                seed=config.seed,
                label=label,
            ),
        )
        runs[label] = ensemble.train(
            theta0, num_epochs=config.epochs, record_every=config.record_every
        )

    return WeightedVQEResult(problem=problem, ideal=ideal, runs=runs, config=config)


def render_fig9(result: WeightedVQEResult) -> str:
    """Text rendering of the Fig. 9 comparison."""
    header = (
        f"Reference energy: {result.reference_energy:.4f} "
        f"(ground: {result.problem.ground_energy:.4f})"
    )
    return f"{header}\n{format_table(result.rows())}"
