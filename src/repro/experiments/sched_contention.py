"""Multi-tenant contention experiment: EQC throughput under tenant storms.

The paper motivates EQC with shared cloud devices buried under community
traffic; PR 1's batched execution layer made single runs fast, and the
``sched`` subsystem makes the *cloud* real.  This driver quantifies both
axes the new layer opens:

* **load sweep** — EQC epochs/hour as the background tenant population grows
  (0 → storm), the contention analogue of the paper's epochs/hour bars;
* **policy sweep** — how the scheduling policy divides the pain between the
  EQC tenant and the background community (FIFO vs fair-share etc.),
  measured by per-tenant mean queue wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.reporting import format_kv, format_table
from ..core.ensemble import EQCConfig, EQCEnsemble
from ..core.history import TrainingHistory
from ..core.objective import EnergyObjective
from ..vqa import heisenberg_vqe_problem

__all__ = [
    "ContentionConfig",
    "ContentionCell",
    "ContentionResult",
    "run_sched_contention",
    "render_contention",
]


@dataclass(frozen=True)
class ContentionConfig:
    """One contention experiment: a (policy x tenant-load) grid."""

    device_names: tuple[str, ...] = ("x2", "Belem", "Bogota")
    tenant_levels: tuple[int, ...] = (0, 100, 1000)
    policies: tuple[str, ...] = ("fifo", "fair_share")
    num_epochs: int = 2
    shots: int = 128
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.tenant_levels:
            raise ValueError("need at least one tenant level")
        if not self.policies:
            raise ValueError("need at least one policy")
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")


@dataclass
class ContentionCell:
    """Outcome of one (policy, tenant-load) training run."""

    policy: str
    tenants: int
    history: TrainingHistory
    epochs_per_hour: float
    eqc_mean_wait_seconds: float
    tenant_mean_wait_seconds: float
    tenant_jobs_completed: int
    tenant_jobs_rejected: int


@dataclass
class ContentionResult:
    """The full grid plus the configuration that produced it."""

    config: ContentionConfig
    cells: list[ContentionCell] = field(default_factory=list)

    def cell(self, policy: str, tenants: int) -> ContentionCell:
        for entry in self.cells:
            if entry.policy == policy and entry.tenants == tenants:
                return entry
        raise KeyError(f"no cell for policy={policy!r}, tenants={tenants}")

    def epochs_per_hour_curve(self, policy: str) -> list[tuple[int, float]]:
        """(tenants, epochs/hour) points for one policy, by rising load."""
        points = [
            (entry.tenants, entry.epochs_per_hour)
            for entry in self.cells
            if entry.policy == policy
        ]
        return sorted(points)


def _run_cell(config: ContentionConfig, policy: str, tenants: int) -> ContentionCell:
    problem = heisenberg_vqe_problem()
    eqc_config = EQCConfig(
        device_names=config.device_names,
        shots=config.shots,
        seed=config.seed,
        scheduling_policy=policy,
        background_tenants=tenants,
        label=f"EQC[{policy}, {tenants} tenants]",
    )
    ensemble = EQCEnsemble(EnergyObjective(problem.estimator), eqc_config)
    theta = np.linspace(0.1, 1.6, problem.num_parameters)
    history = ensemble.train(theta, num_epochs=config.num_epochs)

    assert ensemble.scheduler is not None
    report = ensemble.scheduler.tenant_report()
    eqc_stats = report.get("eqc", {})
    background = {name: stats for name, stats in report.items() if name != "eqc"}
    tenant_jobs = int(sum(s["jobs_completed"] for s in background.values()))
    tenant_wait = (
        float(
            sum(s["jobs_completed"] * s["mean_wait_seconds"] for s in background.values())
            / tenant_jobs
        )
        if tenant_jobs
        else 0.0
    )
    rejected = sum(
        queue.jobs_rejected for queue in ensemble.scheduler.queues.values()
    )
    return ContentionCell(
        policy=policy,
        tenants=tenants,
        history=history,
        epochs_per_hour=history.epochs_per_hour(),
        eqc_mean_wait_seconds=float(eqc_stats.get("mean_wait_seconds", 0.0)),
        tenant_mean_wait_seconds=tenant_wait,
        tenant_jobs_completed=tenant_jobs,
        tenant_jobs_rejected=rejected,
    )


def run_sched_contention(config: ContentionConfig | None = None) -> ContentionResult:
    """Run the full (policy x tenant-load) grid."""
    config = config or ContentionConfig()
    result = ContentionResult(config=config)
    for policy in config.policies:
        for tenants in config.tenant_levels:
            result.cells.append(_run_cell(config, policy, tenants))
    return result


def render_contention(result: ContentionResult) -> str:
    """Text rendering of the contention grid."""
    rows = [
        {
            "policy": cell.policy,
            "tenants": cell.tenants,
            "epochs_per_hour": cell.epochs_per_hour,
            "eqc_wait_s": cell.eqc_mean_wait_seconds,
            "tenant_wait_s": cell.tenant_mean_wait_seconds,
            "tenant_jobs": cell.tenant_jobs_completed,
            "rejected": cell.tenant_jobs_rejected,
        }
        for cell in result.cells
    ]
    header = format_kv(
        {
            "devices": ",".join(result.config.device_names),
            "epochs": result.config.num_epochs,
            "shots": result.config.shots,
            "seed": result.config.seed,
        }
    )
    return f"{header}\n{format_table(rows)}"
