"""Figure 5 — QPU weights tracked over 40 hours on seven devices.

Every hour, each device's ``PCorrect`` is recomputed from its freshest
published properties (Eq. 2 over the transpiled Fig. 8 circuit) and the
ensemble's values are normalized into the configured weight band
([0.5, 1.5] in the paper).  The trace shows the weighting system adapting in
real time to calibration events, drift and noise bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..analysis.reporting import format_series
from ..circuit.library import hardware_efficient_ansatz
from ..cloud.clock import hours
from ..core.weighting import WeightBounds, estimate_p_correct, normalize_weights
from ..devices.catalog import build_qpu
from ..transpiler.transpile import transpile

__all__ = ["WeightTraceResult", "fig5_weight_trace", "render_fig5"]

DEFAULT_DEVICES: tuple[str, ...] = (
    "Belem", "Quito", "Casablanca", "Toronto", "Manila", "Bogota", "Lima",
)


@dataclass
class WeightTraceResult:
    """Hourly PCorrect and weight traces for a device fleet."""

    times_hours: list[float]
    p_correct: dict[str, list[float]]
    weights: dict[str, list[float]]
    bounds: WeightBounds

    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(self.weights.keys())

    def weight_range(self, device: str) -> tuple[float, float]:
        """Min/max weight a device received over the trace."""
        series = self.weights[device]
        return (float(min(series)), float(max(series)))

    def mean_weight(self, device: str) -> float:
        return float(np.mean(self.weights[device]))


def fig5_weight_trace(
    device_names: Sequence[str] = DEFAULT_DEVICES,
    duration_hours: float = 40.0,
    step_hours: float = 1.0,
    bounds: WeightBounds = WeightBounds(0.5, 1.5),
) -> WeightTraceResult:
    """Compute the Fig. 5 weight traces for a fleet of devices."""
    if duration_hours <= 0 or step_hours <= 0:
        raise ValueError("duration and step must be positive")
    circuit = hardware_efficient_ansatz(4)
    qpus = {name: build_qpu(name) for name in device_names}
    footprints = {
        name: transpile(circuit, qpu.topology).footprint for name, qpu in qpus.items()
    }

    times = [
        round(t, 6) for t in np.arange(0.0, duration_hours + 1e-9, step_hours)
    ]
    p_correct: dict[str, list[float]] = {name: [] for name in device_names}
    weights: dict[str, list[float]] = {name: [] for name in device_names}

    for t in times:
        now = hours(t)
        current = {
            name: estimate_p_correct(qpu.estimated_calibration(now), footprints[name])
            for name, qpu in qpus.items()
        }
        normalized = normalize_weights(current, bounds)
        for name in device_names:
            p_correct[name].append(float(current[name]))
            weights[name].append(float(normalized[name]))

    return WeightTraceResult(
        times_hours=[float(t) for t in times],
        p_correct=p_correct,
        weights=weights,
        bounds=bounds,
    )


def render_fig5(result: WeightTraceResult | None = None) -> str:
    """Text rendering of the Fig. 5 weight traces."""
    result = result if result is not None else fig5_weight_trace()
    lines = [f"QPU weights normalized to {result.bounds} over {result.times_hours[-1]:.0f} h"]
    for name in result.device_names:
        lines.append(format_series(name, result.times_hours, result.weights[name], max_points=10))
    return "\n".join(lines)
