"""Table I — the IBMQ platforms used for evaluation."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..devices.catalog import TABLE_I
from ..analysis.reporting import format_table

__all__ = ["table1_rows", "render_table1"]


def table1_rows() -> list[dict[str, object]]:
    """One row per catalogued device: name, qubits, processor, QV, topology.

    Mirrors the paper's Table I; the extra columns expose the simulator-side
    calibration medians so the substitution is auditable.
    """
    rows: list[dict[str, object]] = []
    for name, spec in TABLE_I.items():
        profile = spec.noise_profile
        rows.append(
            {
                "device": name,
                "qubits": spec.num_qubits,
                "processor": spec.processor,
                "quantum_volume": spec.quantum_volume,
                "topology": spec.topology.name,
                "avg_degree": spec.topology.average_degree,
                "median_cx_error": profile.cx_error,
                "median_readout_error": profile.readout_error,
                "median_t1_us": profile.t1 * 1e6,
                "base_job_seconds": spec.base_job_seconds,
            }
        )
    return rows


def render_table1() -> str:
    """Text rendering of Table I."""
    return format_table(
        table1_rows(),
        columns=[
            "device",
            "qubits",
            "processor",
            "quantum_volume",
            "topology",
            "avg_degree",
            "median_cx_error",
            "median_readout_error",
            "median_t1_us",
        ],
    )
