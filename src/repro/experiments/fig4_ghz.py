"""Figure 4 — validating the PCorrect analytic model on GHZ states.

The paper prepares a 5-qubit GHZ state on six devices and compares the
*calculated* chance of error (1 - PCorrect from Eq. 2, evaluated on the
published calibration data) with the *observed* error (the fraction of
measured bitstrings containing both a 0 and a 1).  A strong but imperfect
correlation results (Pearson r = 0.784, R^2 = 0.605), with the model
underestimating the error of stale calibrations.

The driver reproduces the same protocol on the simulated fleet: for each
device and each calibration age it computes the Eq. 2 estimate from the
calibration-time snapshot and measures the realized error from actual noisy
executions (which include drift and latent cross-talk), then reports the
scatter points and the correlation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.correlation import CorrelationReport, correlate
from ..analysis.reporting import format_table
from ..circuit.library import ghz_state
from ..cloud.clock import hours
from ..core.weighting import estimate_p_correct
from ..devices.catalog import build_qpu
from ..transpiler.transpile import transpile

__all__ = ["GhzPoint", "GhzValidationResult", "fig4_ghz_validation", "render_fig4"]

DEFAULT_DEVICES: tuple[str, ...] = ("Lima", "x2", "Belem", "Quito", "Manila", "Bogota")
#: "1 minute since calibration" and "12 hours since calibration" (paper Fig. 4).
DEFAULT_AGES_HOURS: tuple[float, ...] = (1.0 / 60.0, 12.0)


@dataclass(frozen=True)
class GhzPoint:
    """One scatter point: a device at a calibration age."""

    device: str
    calibration_age_hours: float
    calculated_error: float
    observed_error: float

    def as_dict(self) -> dict[str, object]:
        return {
            "device": self.device,
            "age_hours": self.calibration_age_hours,
            "calculated_error": self.calculated_error,
            "observed_error": self.observed_error,
        }


@dataclass
class GhzValidationResult:
    """The Fig. 4 scatter plus its correlation statistics."""

    points: list[GhzPoint]
    correlation: CorrelationReport

    def rows(self) -> list[dict[str, object]]:
        return [p.as_dict() for p in self.points]


def ghz_observed_error(counts) -> float:
    """Fraction of outcomes that are neither all-zeros nor all-ones."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    good = 0
    for bitstring, count in counts.items():
        if set(bitstring) in ({"0"}, {"1"}):
            good += count
    return 1.0 - good / total


def fig4_ghz_validation(
    device_names: Sequence[str] = DEFAULT_DEVICES,
    ages_hours: Sequence[float] = DEFAULT_AGES_HOURS,
    num_qubits: int = 5,
    shots: int = 8192,
    repeats: int = 3,
    seed: int = 0,
) -> GhzValidationResult:
    """Run the GHZ validation across devices and calibration ages."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    circuit = ghz_state(num_qubits)
    rng = np.random.default_rng(seed)
    points: list[GhzPoint] = []

    for name in device_names:
        qpu = build_qpu(name)
        transpiled = transpile(circuit, qpu.topology)
        for age in ages_hours:
            now = hours(age)
            # Calculated error: Eq. 2 on the data published at calibration time.
            reported = qpu.reported_calibration(now)
            calculated = 1.0 - estimate_p_correct(reported, transpiled.footprint)
            # Observed error: actual noisy executions at that age (drifted).
            observed_values = []
            for _ in range(repeats):
                result = qpu.execute(circuit, transpiled.footprint, shots, now=now, rng=rng)
                observed_values.append(ghz_observed_error(result.counts))
            points.append(
                GhzPoint(
                    device=name,
                    calibration_age_hours=float(age),
                    calculated_error=float(calculated),
                    observed_error=float(np.mean(observed_values)),
                )
            )

    correlation = correlate(
        [p.calculated_error for p in points],
        [p.observed_error for p in points],
    )
    return GhzValidationResult(points=points, correlation=correlation)


def render_fig4(result: GhzValidationResult | None = None) -> str:
    """Text rendering of the Fig. 4 scatter and statistics."""
    result = result if result is not None else fig4_ghz_validation()
    table = format_table(result.rows())
    return f"{table}\n\n{result.correlation.describe()}"
