"""Figure 6 — the 4-qubit Heisenberg VQE: single devices vs EQC vs ideal.

The driver reproduces the paper's headline VQE experiment:

* the *ideal simulator* baseline (8192 shots, no noise, no queue),
* independent training on each of several single IBMQ devices (terminated,
  like the paper's Manhattan/Santiago/Toronto runs, when the virtual wall
  clock exceeds two weeks),
* the EQC ensemble over the 10-device fleet, repeated ``eqc_runs`` times so
  the run-to-run spread can be reported,

and collects for each run its energy-vs-epoch trace, epochs/hour, converged
energy and error against the ideal solution.

Note on references: with Eq. 3 spelled in Pauli operators the exact ground
energy of the 4-site ring is -8.0, while the paper plots -4.0 a.u.; and the
16-parameter Fig. 8 ansatz bottoms out near -6.57.  Error rates are therefore
reported against the *ideal-solution energy* (what the noiseless simulator
converges to), which is the comparison the paper actually draws (its ideal
curve converges exactly to its ground line).  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..analysis.reporting import format_table
from ..baselines.ideal import IdealTrainer
from ..baselines.single_device import DEFAULT_TERMINATION_HOURS, SingleDeviceTrainer
from ..core.ensemble import EQCConfig, EQCEnsemble
from ..core.history import TrainingHistory
from ..core.objective import EnergyObjective
from ..core.weighting import WeightBounds
from ..devices.catalog import DEFAULT_VQE_FLEET
from ..vqa.vqe import VQEProblem, heisenberg_vqe_problem

__all__ = ["VQEExperimentConfig", "VQEExperimentResult", "run_fig6_vqe", "render_fig6"]

#: The single devices the paper trains independently in Fig. 6.
DEFAULT_SINGLE_DEVICES: tuple[str, ...] = (
    "x2", "Bogota", "Casablanca", "Manhattan", "Santiago", "Toronto",
)


@dataclass(frozen=True)
class VQEExperimentConfig:
    """Knobs of the Fig. 6 experiment (paper defaults unless noted)."""

    epochs: int = 250
    shots: int = 8192
    learning_rate: float = 0.1
    single_devices: tuple[str, ...] = DEFAULT_SINGLE_DEVICES
    ensemble_devices: tuple[str, ...] = DEFAULT_VQE_FLEET
    #: Fig. 6 evaluates the *unweighted* EQC system (Section V-C).
    weight_bounds: WeightBounds | None = None
    eqc_runs: int = 3
    seed: int = 7
    max_single_device_hours: float = DEFAULT_TERMINATION_HOURS
    record_every: int = 1

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.eqc_runs < 1:
            raise ValueError("epochs and eqc_runs must be >= 1")


@dataclass
class VQEExperimentResult:
    """Everything Fig. 6 plots, in history form."""

    problem: VQEProblem
    ideal: TrainingHistory
    singles: dict[str, TrainingHistory]
    eqc_runs: list[TrainingHistory]
    config: VQEExperimentConfig

    # ------------------------------------------------------------------
    @property
    def ground_energy(self) -> float:
        return self.problem.ground_energy

    @property
    def ideal_solution_energy(self) -> float:
        """The converged energy of the noiseless baseline (the reference)."""
        return self.ideal.final_loss()

    @property
    def eqc_mean_history(self) -> TrainingHistory:
        """The first EQC run (used when a single representative is needed)."""
        return self.eqc_runs[0]

    def eqc_mean_curve(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(epochs, mean loss, std loss) across the repeated EQC runs."""
        lengths = [len(run) for run in self.eqc_runs]
        n = min(lengths)
        losses = np.stack([run.losses[:n] for run in self.eqc_runs])
        epochs = self.eqc_runs[0].epochs[:n]
        return epochs, losses.mean(axis=0), losses.std(axis=0)

    # ------------------------------------------------------------------
    def error_rows(self) -> list[dict[str, object]]:
        """Converged error (%) against the ideal solution, per system."""
        reference = self.ideal_solution_energy
        rows: list[dict[str, object]] = []
        for label, history in self._all_histories():
            rows.append(
                {
                    "system": label,
                    "final_energy": history.final_loss(),
                    "error_pct": 100.0 * history.error_vs(reference),
                    "convergence_epoch": history.convergence_epoch(reference),
                    "terminated_early": str(history.terminated_early),
                }
            )
        return rows

    def speed_rows(self) -> list[dict[str, object]]:
        """Epochs/hour and total run time per system (Fig. 6 right panel)."""
        rows: list[dict[str, object]] = []
        for label, history in self._all_histories():
            rows.append(
                {
                    "system": label,
                    "epochs": float(len(history)),
                    "run_hours": history.total_hours(),
                    "epochs_per_hour": history.epochs_per_hour(),
                }
            )
        return rows

    def _all_histories(self) -> list[tuple[str, TrainingHistory]]:
        items: list[tuple[str, TrainingHistory]] = [("ideal", self.ideal)]
        items.extend((name, history) for name, history in self.singles.items())
        for index, run in enumerate(self.eqc_runs):
            items.append((f"EQC(run {index})", run))
        return items


def run_fig6_vqe(config: VQEExperimentConfig | None = None) -> VQEExperimentResult:
    """Execute the Fig. 6 experiment end to end."""
    config = config or VQEExperimentConfig()
    problem = heisenberg_vqe_problem()
    theta0 = problem.random_initial_parameters(seed=config.seed)

    ideal = IdealTrainer(
        problem.estimator,
        shots=config.shots,
        learning_rate=config.learning_rate,
        seed=config.seed,
    ).train(theta0, num_epochs=config.epochs, record_every=config.record_every)

    singles: dict[str, TrainingHistory] = {}
    for device in config.single_devices:
        trainer = SingleDeviceTrainer(
            EnergyObjective(problem.estimator),
            device,
            shots=config.shots,
            learning_rate=config.learning_rate,
            seed=config.seed,
            max_wall_hours=config.max_single_device_hours,
        )
        singles[device] = trainer.train(
            theta0, num_epochs=config.epochs, record_every=config.record_every
        )

    eqc_histories: list[TrainingHistory] = []
    for run in range(config.eqc_runs):
        ensemble = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(
                device_names=config.ensemble_devices,
                shots=config.shots,
                learning_rate=config.learning_rate,
                weight_bounds=config.weight_bounds,
                seed=config.seed + run,
                label=f"EQC(run {run})",
            ),
        )
        eqc_histories.append(
            ensemble.train(theta0, num_epochs=config.epochs, record_every=config.record_every)
        )

    return VQEExperimentResult(
        problem=problem,
        ideal=ideal,
        singles=singles,
        eqc_runs=eqc_histories,
        config=config,
    )


def render_fig6(result: VQEExperimentResult) -> str:
    """Text rendering of the Fig. 6 error and speed panels."""
    error_table = format_table(result.error_rows())
    speed_table = format_table(result.speed_rows())
    return (
        f"Ground energy (exact): {result.ground_energy:.4f}\n"
        f"Ideal solution energy: {result.ideal_solution_energy:.4f}\n\n"
        f"Converged error vs ideal solution\n{error_table}\n\n"
        f"Training speed\n{speed_table}"
    )
