"""Figure 11 — QAOA MaxCut: eight single devices vs unweighted EQC.

The paper optimizes the 2-parameter QAOA circuit of Fig. 10 for the 4-node
ring MaxCut on eight IBMQ devices independently and on the unweighted EQC
ensemble of the same eight devices, for 50 iterations.  The plotted quantity
is the MaxCut cost (the expectation of the Eq. 7 Hamiltonian, normalized per
edge so the axis lives in [-1, 0]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.reporting import format_table
from ..baselines.ideal import IdealTrainer
from ..baselines.single_device import DEFAULT_TERMINATION_HOURS, SingleDeviceTrainer
from ..core.ensemble import EQCConfig, EQCEnsemble
from ..core.history import TrainingHistory
from ..core.objective import EnergyObjective
from ..core.weighting import WeightBounds
from ..devices.catalog import DEFAULT_QAOA_FLEET
from ..vqa.qaoa import QAOAProblem, ring_maxcut_qaoa_problem

__all__ = ["QAOAExperimentConfig", "QAOAExperimentResult", "run_fig11_qaoa", "render_fig11"]


@dataclass(frozen=True)
class QAOAExperimentConfig:
    """Knobs of the Fig. 11 experiment (paper defaults unless noted)."""

    iterations: int = 50
    shots: int = 8192
    learning_rate: float = 0.1
    devices: tuple[str, ...] = DEFAULT_QAOA_FLEET
    #: Fig. 11 uses the unweighted ensemble; Fig. 12 sweeps the bounds.
    weight_bounds: WeightBounds | None = None
    eqc_runs: int = 3
    seed: int = 11
    max_single_device_hours: float = DEFAULT_TERMINATION_HOURS
    record_every: int = 1
    run_ideal_reference: bool = True


@dataclass
class QAOAExperimentResult:
    """Histories of the Fig. 11 experiment."""

    problem: QAOAProblem
    ideal: TrainingHistory | None
    singles: dict[str, TrainingHistory]
    eqc_runs: list[TrainingHistory]
    config: QAOAExperimentConfig

    # ------------------------------------------------------------------
    @property
    def eqc_history(self) -> TrainingHistory:
        return self.eqc_runs[0]

    def normalized_final_cost(self, history: TrainingHistory) -> float:
        """Converged per-edge MaxCut cost (the paper's Fig. 11/12 y-axis)."""
        return self.problem.normalized_cost(history.final_loss())

    def best_normalized_cost(self, history: TrainingHistory) -> float:
        """Best (lowest) per-edge MaxCut cost reached during training."""
        return self.problem.normalized_cost(history.best_loss())

    def rows(self) -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        items: list[tuple[str, TrainingHistory]] = []
        if self.ideal is not None:
            items.append(("ideal", self.ideal))
        items.extend(self.singles.items())
        for index, run in enumerate(self.eqc_runs):
            items.append((f"EQC(run {index})", run))
        for label, history in items:
            rows.append(
                {
                    "system": label,
                    "final_cost": self.normalized_final_cost(history),
                    "best_cost": self.best_normalized_cost(history),
                    "approx_ratio": self.problem.approximation_ratio(history.final_loss()),
                    "run_hours": history.total_hours(),
                    "iterations_per_hour": history.epochs_per_hour(),
                }
            )
        return rows


def run_fig11_qaoa(config: QAOAExperimentConfig | None = None) -> QAOAExperimentResult:
    """Execute the Fig. 11 experiment end to end."""
    config = config or QAOAExperimentConfig()
    problem = ring_maxcut_qaoa_problem()
    theta0 = problem.random_initial_parameters(seed=config.seed)

    ideal = None
    if config.run_ideal_reference:
        ideal = IdealTrainer(
            problem.estimator,
            shots=config.shots,
            learning_rate=config.learning_rate,
            seed=config.seed,
        ).train(theta0, num_epochs=config.iterations, record_every=config.record_every)

    singles: dict[str, TrainingHistory] = {}
    for device in config.devices:
        trainer = SingleDeviceTrainer(
            EnergyObjective(problem.estimator),
            device,
            shots=config.shots,
            learning_rate=config.learning_rate,
            seed=config.seed,
            max_wall_hours=config.max_single_device_hours,
        )
        singles[device] = trainer.train(
            theta0, num_epochs=config.iterations, record_every=config.record_every
        )

    eqc_histories: list[TrainingHistory] = []
    for run in range(config.eqc_runs):
        ensemble = EQCEnsemble(
            EnergyObjective(problem.estimator),
            EQCConfig(
                device_names=config.devices,
                shots=config.shots,
                learning_rate=config.learning_rate,
                weight_bounds=config.weight_bounds,
                seed=config.seed + run,
                label=f"EQC QAOA(run {run})",
            ),
        )
        eqc_histories.append(
            ensemble.train(theta0, num_epochs=config.iterations, record_every=config.record_every)
        )

    return QAOAExperimentResult(
        problem=problem,
        ideal=ideal,
        singles=singles,
        eqc_runs=eqc_histories,
        config=config,
    )


def render_fig11(result: QAOAExperimentResult) -> str:
    """Text rendering of the Fig. 11 comparison."""
    header = (
        f"Optimal cut: {result.problem.optimal_cut_value:.0f} "
        f"(bits {result.problem.optimal_cut_bits}); ground energy "
        f"{result.problem.ground_energy:.3f}"
    )
    return f"{header}\n{format_table(result.rows())}"
