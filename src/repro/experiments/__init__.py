"""Experiment drivers: one module per paper table/figure plus ablations."""

from .ablations import (
    SynchronousEnsembleTrainer,
    run_async_vs_sync,
    run_ensemble_size_sweep,
    run_weight_refresh_ablation,
)
from .fig1_overview import Fig1Row, fig1_overview, render_fig1
from .fig3_transpile import TranspilationRow, fig3_transpilation, render_fig3
from .fig4_ghz import GhzPoint, GhzValidationResult, fig4_ghz_validation, render_fig4
from .fig5_weights import WeightTraceResult, fig5_weight_trace, render_fig5
from .fig6_vqe import VQEExperimentConfig, VQEExperimentResult, render_fig6, run_fig6_vqe
from .fig9_weighted_vqe import (
    WeightedVQEConfig,
    WeightedVQEResult,
    render_fig9,
    run_fig9_weighted_vqe,
)
from .fig11_qaoa import (
    QAOAExperimentConfig,
    QAOAExperimentResult,
    render_fig11,
    run_fig11_qaoa,
)
from .fig12_weighted_qaoa import (
    WeightedQAOAConfig,
    WeightedQAOAResult,
    render_fig12,
    run_fig12_weighted_qaoa,
)
from .sched_contention import (
    ContentionCell,
    ContentionConfig,
    ContentionResult,
    render_contention,
    run_sched_contention,
)
from .speedup import render_speedup, run_speedup_summary, speedup_from_result
from .table1 import render_table1, table1_rows

__all__ = [
    "table1_rows",
    "render_table1",
    "Fig1Row",
    "fig1_overview",
    "render_fig1",
    "TranspilationRow",
    "fig3_transpilation",
    "render_fig3",
    "GhzPoint",
    "GhzValidationResult",
    "fig4_ghz_validation",
    "render_fig4",
    "WeightTraceResult",
    "fig5_weight_trace",
    "render_fig5",
    "VQEExperimentConfig",
    "VQEExperimentResult",
    "run_fig6_vqe",
    "render_fig6",
    "WeightedVQEConfig",
    "WeightedVQEResult",
    "run_fig9_weighted_vqe",
    "render_fig9",
    "QAOAExperimentConfig",
    "QAOAExperimentResult",
    "run_fig11_qaoa",
    "render_fig11",
    "WeightedQAOAConfig",
    "WeightedQAOAResult",
    "run_fig12_weighted_qaoa",
    "render_fig12",
    "speedup_from_result",
    "run_speedup_summary",
    "render_speedup",
    "ContentionConfig",
    "ContentionCell",
    "ContentionResult",
    "run_sched_contention",
    "render_contention",
    "SynchronousEnsembleTrainer",
    "run_async_vs_sync",
    "run_weight_refresh_ablation",
    "run_ensemble_size_sweep",
]
