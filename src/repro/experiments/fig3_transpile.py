"""Figure 3 — the same circuit transpiled onto three different topologies.

The paper uses Belem (T-shape), x2 (fully connected) and Manila (line) to
illustrate that the identical logical circuit acquires different SWAP
overheads on different coupling maps.  The driver reports, per device, the
routed gate counts and depth of the Fig. 3 linear-entangler demo circuit (and
optionally of the Fig. 8 VQE ansatz).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..circuit.library import hardware_efficient_ansatz, linear_entangler_demo
from ..devices.catalog import device_spec
from ..transpiler.transpile import transpile
from ..analysis.reporting import format_table

__all__ = ["TranspilationRow", "fig3_transpilation", "render_fig3"]

DEFAULT_DEVICES: tuple[str, ...] = ("Belem", "x2", "Manila")


@dataclass(frozen=True)
class TranspilationRow:
    """Transpilation cost of one circuit on one device."""

    device: str
    topology: str
    circuit: str
    num_swaps: int
    single_qubit_gates: int
    two_qubit_gates: int
    critical_depth: int
    depth: int

    def as_dict(self) -> dict[str, object]:
        return {
            "device": self.device,
            "topology": self.topology,
            "circuit": self.circuit,
            "num_swaps": self.num_swaps,
            "G1": self.single_qubit_gates,
            "G2": self.two_qubit_gates,
            "critical_depth": self.critical_depth,
            "depth": self.depth,
        }


def fig3_transpilation(
    device_names: Sequence[str] = DEFAULT_DEVICES,
    include_vqe_ansatz: bool = True,
) -> list[TranspilationRow]:
    """Transpile the demo circuit (and the VQE ansatz) onto each device."""
    circuits = [("fig3_demo", linear_entangler_demo(4))]
    if include_vqe_ansatz:
        circuits.append(("fig8_vqe_ansatz", hardware_efficient_ansatz(4)))

    rows: list[TranspilationRow] = []
    for name in device_names:
        spec = device_spec(name)
        for circuit_name, circuit in circuits:
            result = transpile(circuit, spec.topology)
            rows.append(
                TranspilationRow(
                    device=name,
                    topology=spec.topology.name,
                    circuit=circuit_name,
                    num_swaps=result.num_swaps,
                    single_qubit_gates=result.footprint.num_single_qubit_gates,
                    two_qubit_gates=result.footprint.num_two_qubit_gates,
                    critical_depth=result.footprint.critical_depth,
                    depth=result.physical_circuit.depth(),
                )
            )
    return rows


def render_fig3(rows: Sequence[TranspilationRow] | None = None) -> str:
    """Text rendering of the Fig. 3 comparison."""
    rows = list(rows) if rows is not None else fig3_transpilation()
    return format_table([row.as_dict() for row in rows])
