"""The write-ahead run journal: CRC-framed, append-only, torn-tail tolerant.

Every committed weight update appends one record line::

    <crc32 hex8> <compact JSON>\\n

The CRC covers the JSON bytes, so a reader can verify each record
independently.  Because appends are sequential, a host crash can only damage
the *tail* of the file — a partial last line, a line whose CRC does not
match, or a line cut before its newline.  :func:`read_journal` therefore
reads records until the first frame that fails verification and reports how
many bytes of tail it discarded; everything before the tear is trusted.

Recovery uses the journal as the run's committed-progress record: the
deterministic training loop re-executes from the last checkpoint, and every
regenerated update is verified bit-for-bit against its journal record (see
:class:`~repro.persist.checkpoint.TrainingCheckpointer`), so a corrupted
environment — wrong seed, drifted config, changed physics — is detected on
the first replayed update instead of silently diverging.
"""

from __future__ import annotations

import os
import json
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..telemetry import TELEMETRY as _telemetry

__all__ = ["JournalWriter", "JournalReadResult", "read_journal"]


def _frame(record: dict) -> bytes:
    body = json.dumps(record, separators=(",", ":")).encode()
    return b"%08x " % zlib.crc32(body) + body + b"\n"


@dataclass(frozen=True)
class JournalReadResult:
    """Verified journal content plus what the torn-tail scan discarded."""

    records: tuple[dict, ...]
    torn_tail_bytes: int
    path: str

    @property
    def committed_updates(self) -> int:
        """Highest update index the journal vouches for."""
        if not self.records:
            return 0
        return int(self.records[-1]["update"])


class JournalWriter:
    """Appends CRC-framed records; one syscall per record, fsyncs on demand.

    Each append is a single ``os.write`` on an ``O_APPEND`` descriptor — the
    record reaches the OS immediately (no userspace buffer), so a *process*
    crash loses nothing.  fsync (surviving a *host* crash) is batched —
    callers invoke :meth:`sync` at checkpoint boundaries — because
    per-record fsync would dominate the checkpoint overhead budget.  The
    torn-tail tolerance of :func:`read_journal` covers whatever an unsynced
    tail loses.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        self.records_written = 0
        self.fsyncs = 0

    def append(self, record: dict) -> None:
        if self._fd is None:
            raise ValueError("journal is closed")
        os.write(self._fd, _frame(record))
        self.records_written += 1
        if _telemetry.enabled:
            _telemetry.registry.counter("persist.journal_records").inc()

    def sync(self) -> None:
        """fsync the journal (called at checkpoint boundaries and on close)."""
        if self._fd is None:
            return
        os.fsync(self._fd)
        self.fsyncs += 1
        if _telemetry.enabled:
            _telemetry.registry.counter("persist.journal_fsyncs").inc()

    def close(self) -> None:
        if self._fd is not None:
            self.sync()
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_journal(path: str | os.PathLike) -> JournalReadResult:
    """Read a journal, stopping at the first torn or corrupted frame.

    A missing file is an empty journal (a run may die before its first
    update commits).  Every returned record passed its CRC; the byte count
    of the discarded tail is reported so recovery can log what was lost.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return JournalReadResult(records=(), torn_tail_bytes=0, path=str(path))

    records: list[dict] = []
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # partial last line: torn tail
        line = raw[offset:newline]
        if len(line) < 10 or line[8:9] != b" ":
            break
        try:
            expected = int(line[:8], 16)
        except ValueError:
            break
        body = line[9:]
        if zlib.crc32(body) != expected:
            break
        try:
            records.append(json.loads(body.decode()))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        offset = newline + 1
    return JournalReadResult(
        records=tuple(records),
        torn_tail_bytes=len(raw) - offset,
        path=str(path),
    )
