"""Resume-exact training checkpoints over the run store.

The :class:`TrainingCheckpointer` is the hook object the master's training
loop drives.  It owns the run's write-ahead journal and its checkpoint
generations, and implements the recovery contract:

* **record** — every committed weight update appends one journal record
  (task, client, gradient, new value, weight, version), so the run's
  committed progress survives a process kill between checkpoints;
* **checkpoint** — at every ``checkpoint_every``-th epoch boundary the
  complete training state (master loop, event heap, history, environment)
  is written as one atomic checkpoint generation, with the journal fsynced
  first so no checkpoint ever points past its own journal;
* **restore** — recovery loads the newest checkpoint that passes
  verification (a corrupted generation falls back to the previous one,
  counted in :attr:`fallbacks`), restores every captured state surface, and
  re-executes the deterministic loop from there.  Each replayed update is
  compared bit-for-bit against its journal record — the journal *is* the
  committed-progress ledger, and a wrong seed, drifted config, or changed
  physics surfaces as :class:`JournalDivergenceError` on the first replayed
  update instead of silently diverging.

Because the whole simulation is deterministic given the captured state
(every random draw comes from a restored RNG stream), re-execution after
restore is bit-exact with the uninterrupted run — the property the
resume-exactness goldens pin.
"""

from __future__ import annotations

import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING

from ..telemetry import TELEMETRY as _telemetry
from .format import (
    CheckpointCorruptError,
    atomic_write_json,
    read_checkpoint_file,
    write_checkpoint_file,
)
from .journal import JournalWriter, read_journal
from .state import (
    restore_environment,
    restore_history,
    restore_inflight,
    restore_task,
    snapshot_environment,
    snapshot_history,
    snapshot_inflight,
    snapshot_task,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cloud.provider import CloudProvider
    from ..core.history import TrainingHistory
    from ..core.master import EQCMasterNode
    from ..faults.injector import FaultInjector
    from .store import RunDirectory

__all__ = ["JournalDivergenceError", "TrainingCheckpointer"]


class JournalDivergenceError(RuntimeError):
    """A replayed update does not match its journal record bit-for-bit."""


def _checkpoint_name(epoch: int) -> str:
    return f"ckpt-{epoch:06d}.eqc"


class TrainingCheckpointer:
    """Drives journaling, checkpointing, and restore for one training run."""

    def __init__(
        self,
        run: "RunDirectory",
        checkpoint_every: int,
        retention: int = 3,
        *,
        provider: "CloudProvider",
        injector: "FaultInjector | None" = None,
        resume: bool = False,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.run = run
        self.checkpoint_every = int(checkpoint_every)
        self.retention = int(retention)
        self._provider = provider
        self._injector = injector
        self.run.checkpoints_dir.mkdir(parents=True, exist_ok=True)
        #: Checkpoint generations skipped as corrupt during restore (paths).
        self.fallbacks: list[str] = []
        self.checkpoints_written = 0
        #: Wall time spent inside the durability hooks (journal appends,
        #: checkpoint assembly + write, retention).  This is the directly
        #: attributed cost of ``checkpoint_every`` — the number the
        #: overhead benchmark pins, because on shared hosts differencing
        #: two whole-run wall times measures scheduler noise, not this.
        self.persist_seconds = 0.0
        #: Generations on disk, oldest first (seeded from the directory so a
        #: resumed checkpointer keeps applying retention to pre-crash files;
        #: maintained in memory afterwards — retention must not pay a
        #: directory scan on every checkpoint).
        self._generations: list[Path] = [
            Path(p) for p in self.run.checkpoint_paths()
        ]
        self._last_checkpoint_epoch = 0
        self._restore_sections: dict | None = None
        self._verify: deque[dict] = deque()
        if resume:
            self._prepare_restore()
        self.journal = JournalWriter(self.run.journal_path)

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def _prepare_restore(self) -> None:
        """Pick the newest verifiable checkpoint and the journal suffix.

        Generations are tried newest-first; a generation that fails any
        integrity check (truncation, bit flip, bad schema, missing file) is
        recorded in :attr:`fallbacks` and the previous one is tried — the
        retention policy guarantees older generations exist.  With no valid
        checkpoint at all (e.g. the process died before the first epoch) the
        run restarts from scratch, with the *entire* journal as the replay
        verification suffix.
        """
        for path in sorted(self.run.checkpoint_paths(), reverse=True):
            try:
                self._restore_sections = read_checkpoint_file(path)
                break
            except CheckpointCorruptError:
                self.fallbacks.append(str(path))
                if _telemetry.enabled:
                    _telemetry.registry.counter("persist.checkpoint_fallbacks").inc()
        restored_updates = 0
        if self._restore_sections is not None:
            restored_updates = int(self._restore_sections["meta"]["updates_applied"])
            self._last_checkpoint_epoch = int(
                self._restore_sections["meta"]["epoch_completed"]
            )
        journal = read_journal(self.run.journal_path)
        self._verify = deque(
            record
            for record in journal.records
            if int(record["update"]) > restored_updates
        )

    @property
    def has_restore(self) -> bool:
        return self._restore_sections is not None

    def restore_into(self, master: "EQCMasterNode", history: "TrainingHistory"):
        """Restore the captured run into a freshly built master + history.

        Returns the loop state tuple ``(pending, sequence, now,
        epoch_completed, epoch_sim_start)`` for the training loop to resume
        from, or ``None`` when there is nothing to restore (fresh run, or a
        resume that died before its first checkpoint).
        """
        if self._restore_sections is None:
            return None
        start_ns = time.time_ns() if _telemetry.enabled else 0
        sections = self._restore_sections
        meta = sections["meta"]
        ms = sections["master"]

        state = master.state
        if len(ms["values"]) != state.num_parameters:
            raise CheckpointCorruptError(
                f"checkpoint carries {len(ms['values'])} parameters, "
                f"the objective has {state.num_parameters}"
            )
        state.values[:] = [float(v) for v in ms["values"]]
        state.update_counts[:] = [int(c) for c in ms["update_counts"]]
        state.version = int(ms["version"])

        counters = ms["telemetry"]
        master.telemetry.updates_applied = int(counters["updates_applied"])
        master.telemetry.jobs_dispatched = int(counters["jobs_dispatched"])
        master.telemetry.circuits_executed = int(counters["circuits_executed"])
        master.telemetry.total_staleness = int(counters["total_staleness"])
        master.telemetry.max_staleness = int(counters["max_staleness"])

        master._p_correct = {k: float(v) for k, v in ms["p_correct"].items()}
        master._weights = {k: float(v) for k, v in ms["weights"].items()}
        master._orphans = deque(restore_task(t) for t in ms["orphans"])
        master._fleet_events = [dict(e) for e in ms["fleet_events"]]
        master._fault_stats = {k: int(v) for k, v in ms["fault_stats"].items()}
        clients_by_name = {client.name: client for client in master.clients}
        master._live = [clients_by_name[name] for name in ms["live"]]
        master.task_queue._issued = int(ms["tasks_issued"])
        master._start_time = float(meta["start_time"])

        restored = restore_history(sections["history"])
        history.records[:] = restored.records
        history.device_names = restored.device_names
        history.total_updates = restored.total_updates
        history.total_jobs = restored.total_jobs
        history.terminated_early = restored.terminated_early
        history.termination_reason = restored.termination_reason
        history.final_epoch_fraction = restored.final_epoch_fraction
        history.metadata.clear()
        history.metadata.update(restored.metadata)

        restore_environment(
            sections["environment"],
            self._provider,
            master.clients,
            injector=self._injector,
            health=master.health,
        )
        pending = [
            restore_inflight(entry, clients_by_name) for entry in sections["pending"]
        ]
        if _telemetry.enabled:
            _telemetry.tracer.add_span(
                "checkpoint restore",
                "persist",
                start_ns,
                time.time_ns(),
                args={
                    "epoch": int(meta["epoch_completed"]),
                    "journal_suffix": len(self._verify),
                    "fallbacks": len(self.fallbacks),
                },
            )
        return (
            pending,
            int(meta["sequence"]),
            float(meta["now"]),
            int(meta["epoch_completed"]),
            float(meta["epoch_sim_start"]),
        )

    # ------------------------------------------------------------------
    # record / checkpoint
    # ------------------------------------------------------------------
    def record_update(self, master: "EQCMasterNode", outcome, weight, new_value) -> None:
        """Journal one committed weight update (or verify it on replay)."""
        start = time.perf_counter()
        record = {
            "update": master.telemetry.updates_applied,
            "task_id": outcome.task.task_id,
            "parameter_index": outcome.task.parameter_index,
            "client": outcome.client_name,
            "gradient": outcome.gradient,
            "weight": float(weight),
            "new_value": float(new_value),
            "version": master.state.version,
        }
        if self._verify:
            expected = self._verify.popleft()
            if expected != record:
                mismatched = sorted(
                    key
                    for key in set(expected) | set(record)
                    if expected.get(key) != record.get(key)
                )
                raise JournalDivergenceError(
                    f"replayed update {record['update']} diverges from the "
                    f"journal in {mismatched}: journal={expected!r}, "
                    f"replayed={record!r} — the resumed environment does not "
                    f"match the one that wrote this run"
                )
            self.persist_seconds += time.perf_counter() - start
            return  # already journaled before the crash
        self.journal.append(record)
        self.persist_seconds += time.perf_counter() - start

    def after_iteration(
        self,
        master: "EQCMasterNode",
        history: "TrainingHistory",
        pending: list,
        sequence: int,
        now: float,
        epoch_completed: int,
        epoch_sim_start: float,
    ) -> None:
        """Checkpoint at configured epoch boundaries (end-of-iteration hook).

        The hook fires at the end of every job iteration; a checkpoint is
        written only in the iteration whose update completed a
        ``checkpoint_every``-multiple epoch — the loop state is then exactly
        "about to pop the next event", which is where restore re-enters.
        """
        if epoch_completed <= self._last_checkpoint_epoch:
            return
        if epoch_completed % self.checkpoint_every != 0:
            return
        self._write_checkpoint(
            master, history, pending, sequence, now, epoch_completed, epoch_sim_start
        )

    def _write_checkpoint(
        self,
        master: "EQCMasterNode",
        history: "TrainingHistory",
        pending: list,
        sequence: int,
        now: float,
        epoch_completed: int,
        epoch_sim_start: float,
    ) -> None:
        telemetry_on = _telemetry.enabled
        start = time.perf_counter()
        state = master.state
        sections = {
            "meta": {
                "updates_applied": master.telemetry.updates_applied,
                "epoch_completed": int(epoch_completed),
                "now": float(now),
                "sequence": int(sequence),
                "epoch_sim_start": float(epoch_sim_start),
                "start_time": master._start_time,
                "label": master.label,
            },
            "master": {
                "values": [float(v) for v in state.values],
                "update_counts": [int(c) for c in state.update_counts],
                "version": state.version,
                "telemetry": {
                    "updates_applied": master.telemetry.updates_applied,
                    "jobs_dispatched": master.telemetry.jobs_dispatched,
                    "circuits_executed": master.telemetry.circuits_executed,
                    "total_staleness": master.telemetry.total_staleness,
                    "max_staleness": master.telemetry.max_staleness,
                },
                "p_correct": dict(master._p_correct),
                "weights": dict(master._weights),
                "orphans": [snapshot_task(t) for t in master._orphans],
                "fleet_events": list(master._fleet_events),
                "fault_stats": dict(master._fault_stats),
                "live": [client.name for client in master._live],
                "tasks_issued": master.task_queue.tasks_issued,
            },
            "pending": [snapshot_inflight(entry) for entry in pending],
            "history": snapshot_history(history),
            "environment": snapshot_environment(
                self._provider,
                master.clients,
                injector=self._injector,
                health=master.health,
            ),
        }
        # The journal must be durable before the checkpoint that supersedes
        # its prefix commits — a checkpoint may never point past its journal.
        self.journal.sync()
        path = self.run.checkpoints_dir / _checkpoint_name(epoch_completed)
        size = write_checkpoint_file(path, sections)
        self._generations.append(path)
        self._last_checkpoint_epoch = int(epoch_completed)
        self.checkpoints_written += 1
        if telemetry_on:
            registry = _telemetry.registry
            registry.counter("persist.checkpoints").inc()
            registry.gauge("persist.checkpoint_bytes").set(size)
            registry.histogram("persist.checkpoint_seconds").observe(
                time.perf_counter() - start
            )
        self._apply_retention()
        self.persist_seconds += time.perf_counter() - start

    def _apply_retention(self) -> None:
        """Keep the newest ``retention`` generations, delete the rest."""
        while len(self._generations) > self.retention:
            path = self._generations.pop(0)
            try:
                path.unlink()
            except OSError:
                pass  # a missing generation is already what retention wants

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def finalize(self, history: "TrainingHistory") -> None:
        """Persist the finished run: final history, telemetry, manifest."""
        self.close()
        history.metadata["persist"] = {
            "journal_records": self.journal.records_written,
            "journal_fsyncs": self.journal.fsyncs,
            "checkpoints_written": self.checkpoints_written,
            "fallbacks": len(self.fallbacks),
            "persist_seconds": self.persist_seconds,
        }
        atomic_write_json(self.run.history_path, snapshot_history(history))
        if _telemetry.enabled:
            atomic_write_json(
                self.run.telemetry_path, _telemetry.registry.snapshot()
            )
        self.run.mark_complete(
            {
                "epochs": len(history.records),
                "total_updates": history.total_updates,
                "total_jobs": history.total_jobs,
                "final_loss": history.records[-1].loss if history.records else None,
                "terminated_early": history.terminated_early,
            }
        )

    def close(self) -> None:
        """Flush and close the journal (idempotent; crash-path safe)."""
        self.journal.close()
