"""Crash recovery: rebuild a run from its store directory and finish it.

``resume(run_dir, objective)`` is the whole recovery story:

1. the manifest is loaded and its serialized config rebuilt (an explicitly
   supplied config is diffed against it field by field — a mismatch on any
   trajectory-affecting field is an error that *names the fields*, in the
   reject-early style of the rest of config validation);
2. the ensemble is reconstructed exactly as the original run built it;
3. the newest verifiable checkpoint is restored (a corrupted generation
   falls back to the previous one) and the journal suffix becomes the
   replay-verification ledger;
4. training re-runs to completion — bit-exact with the uninterrupted run,
   because every stochastic stream resumes from its captured position.

The objective is the one run input that cannot be serialized (it closes
over the problem Hamiltonian); the caller supplies it, and the first
replayed update cross-checks it against the journal.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from .checkpoint import TrainingCheckpointer
from .store import RunDirectory, config_diff, config_from_dict, config_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.ensemble import EQCConfig
    from ..core.history import TrainingHistory
    from ..core.objective import VQAObjective

__all__ = ["resume"]


def resume(
    run_dir: str | os.PathLike | RunDirectory,
    objective: "VQAObjective",
    config: "EQCConfig | None" = None,
) -> "TrainingHistory":
    """Resume one stored run to completion and return its final history.

    A run that already completed returns its stored history directly.  A
    ``config`` argument is optional — the manifest's serialized config is
    authoritative — and serves as a cross-check: any trajectory-affecting
    field that differs raises ``ValueError`` naming the differing fields.
    """
    from ..core.ensemble import EQCEnsemble

    run = run_dir if isinstance(run_dir, RunDirectory) else RunDirectory(run_dir)
    manifest = run.manifest()
    if manifest.get("status") == "complete":
        return run.history()

    saved = manifest["config"]
    if config is not None:
        differing = config_diff(config_to_dict(config), saved)
        if differing:
            raise ValueError(
                f"config mismatch against run {run.run_id!r} "
                f"(hash {manifest.get('config_hash', '?')[:12]}): the fields "
                f"{differing} differ from the stored manifest; resume must "
                f"use the run's own configuration"
            )
    run_config = config_from_dict(saved)

    ensemble = EQCEnsemble(objective, run_config)
    if objective.num_parameters != len(manifest["initial_parameters"]):
        raise ValueError(
            f"objective has {objective.num_parameters} parameters but run "
            f"{run.run_id!r} was trained with "
            f"{len(manifest['initial_parameters'])}"
        )
    checkpointer = TrainingCheckpointer(
        run,
        checkpoint_every=int(run_config.checkpoint_every),
        retention=int(run_config.checkpoint_retention),
        provider=ensemble.provider,
        injector=ensemble.fault_injector,
        resume=True,
    )
    return ensemble.train(
        initial_parameters=manifest["initial_parameters"],
        num_epochs=int(manifest["num_epochs"]),
        record_every=int(manifest["record_every"]),
        _checkpointer=checkpointer,
    )
