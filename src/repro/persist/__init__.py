"""Durable state and crash recovery: checkpoints, journal, run store.

The persistence layer makes training runs survive the death of the host
process:

* :mod:`repro.persist.format` — the versioned, CRC-framed, atomically
  written checkpoint container;
* :mod:`repro.persist.journal` — the append-only, torn-tail-tolerant
  write-ahead journal of committed weight updates;
* :mod:`repro.persist.state` — bit-exact capture/restore of every live
  state surface (parameters, RNG streams, virtual clocks, breakers, the
  master's event heap);
* :mod:`repro.persist.checkpoint` — the :class:`TrainingCheckpointer`
  driving record/checkpoint/restore from inside the training loop;
* :mod:`repro.persist.store` — the persistent run database
  (:func:`list_runs` / :func:`load_run`);
* :mod:`repro.persist.resume` — :func:`resume`, which finishes an
  interrupted run bit-exactly.

Enable with ``EQCConfig(checkpoint_every=..., run_store=...)``; recover
with ``repro.persist.resume(run_dir, objective)``.
"""

from .checkpoint import JournalDivergenceError, TrainingCheckpointer
from .format import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_SCHEMA,
    CheckpointCorruptError,
    atomic_write_bytes,
    atomic_write_json,
    read_checkpoint_file,
    write_checkpoint_file,
)
from .journal import JournalReadResult, JournalWriter, read_journal
from .resume import resume
from .store import (
    RunDirectory,
    RunStore,
    config_diff,
    config_from_dict,
    config_hash,
    config_to_dict,
    list_runs,
    load_run,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA",
    "CheckpointCorruptError",
    "JournalDivergenceError",
    "JournalReadResult",
    "JournalWriter",
    "RunDirectory",
    "RunStore",
    "TrainingCheckpointer",
    "atomic_write_bytes",
    "atomic_write_json",
    "config_diff",
    "config_from_dict",
    "config_hash",
    "config_to_dict",
    "list_runs",
    "load_run",
    "read_checkpoint_file",
    "read_journal",
    "resume",
    "write_checkpoint_file",
]
