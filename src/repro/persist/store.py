"""The persistent run store: a local, queryable database of training runs.

Layout — one directory per run under the store root::

    <root>/
      run-000001/
        manifest.json        config + config hash + seeds + run inputs + status
        journal.jsonl        write-ahead journal of committed weight updates
        checkpoints/
          ckpt-000004.eqc    checkpoint generations (retention-bounded)
        history.json         final TrainingHistory (written on completion)
        telemetry.json       metrics snapshot (when telemetry was enabled)

Run ids are sequential (``run-NNNNNN``), so listings sort chronologically
without wall-clock timestamps and two runs never collide.  The manifest
records everything needed to rebuild the run's ensemble for resume: the full
serialized config, its hash (durability knobs excluded — they cannot change
the trajectory), the initial parameters, and the epoch/recording inputs.

:func:`list_runs` / :func:`load_run` are the query surface the ROADMAP's
run-database item asks for, and the substrate a future service layer's job
store sits on.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from .format import atomic_write_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.ensemble import EQCConfig
    from ..core.history import TrainingHistory

__all__ = [
    "MANIFEST_SCHEMA",
    "DURABILITY_FIELDS",
    "config_to_dict",
    "config_from_dict",
    "config_hash",
    "config_diff",
    "RunDirectory",
    "RunStore",
    "list_runs",
    "load_run",
]

#: Manifest layout version (independent of the checkpoint container schema).
MANIFEST_SCHEMA = 1

#: Config fields that select durability behaviour without affecting the
#: training trajectory — excluded from the config hash, and allowed to
#: differ on resume.
DURABILITY_FIELDS = frozenset(
    {"run_store", "checkpoint_every", "checkpoint_retention"}
)

_RUN_ID_PATTERN = re.compile(r"^run-(\d{6})$")


# ---------------------------------------------------------------------------
# config serialization
# ---------------------------------------------------------------------------

def config_to_dict(config: "EQCConfig") -> dict:
    """Serialize an :class:`EQCConfig` to plain JSON-able data.

    Only checkpointable configurations are serializable: the scheduler path
    carries a live policy object and is rejected by config validation before
    a run store is ever created.
    """
    if config.scheduling_policy is not None:
        raise ValueError(
            "configs with a scheduling_policy are not serializable "
            "(checkpointing rejects the scheduler path)"
        )
    return {
        "device_names": list(config.device_names),
        "shots": config.shots,
        "learning_rate": config.learning_rate,
        "weight_bounds": (
            None
            if config.weight_bounds is None
            else {"low": config.weight_bounds.low, "high": config.weight_bounds.high}
        ),
        "refresh_weights": config.refresh_weights,
        "seed": config.seed,
        "label": config.label,
        "queue_models": (
            None
            if config.queue_models is None
            else {name: asdict(model) for name, model in config.queue_models.items()}
        ),
        "background_tenants": config.background_tenants,
        "tenant_jobs_per_hour": config.tenant_jobs_per_hour,
        "parallel_workers": config.parallel_workers,
        "parallel_start_method": config.parallel_start_method,
        "fault_plan": (
            None if config.fault_plan is None else _plan_to_dict(config.fault_plan)
        ),
        "retry_policy": (
            None if config.retry_policy is None else asdict(config.retry_policy)
        ),
        "dispatch_deadline": config.dispatch_deadline,
        "min_live_devices": config.min_live_devices,
        "checkpoint_every": config.checkpoint_every,
        "run_store": config.run_store,
        "checkpoint_retention": config.checkpoint_retention,
    }


def _plan_to_dict(plan) -> dict:
    data = plan.describe()
    # describe() flattens worker crashes and windows already; it is the
    # canonical JSON form (infinite durations survive via JSON Infinity).
    return data


def config_from_dict(data: Mapping) -> "EQCConfig":
    """Rebuild an :class:`EQCConfig` from its serialized form."""
    from ..cloud.queueing import QueueModel
    from ..core.ensemble import EQCConfig
    from ..core.weighting import WeightBounds
    from ..faults.plan import FaultPlan, OutageWindow, WorkerCrash
    from ..faults.retry import RetryPolicy

    bounds = data["weight_bounds"]
    queue_models = data["queue_models"]
    plan = data["fault_plan"]
    retry = data["retry_policy"]
    return EQCConfig(
        device_names=tuple(data["device_names"]),
        shots=int(data["shots"]),
        learning_rate=float(data["learning_rate"]),
        weight_bounds=(
            None
            if bounds is None
            else WeightBounds(low=float(bounds["low"]), high=float(bounds["high"]))
        ),
        refresh_weights=bool(data["refresh_weights"]),
        seed=int(data["seed"]),
        label=str(data["label"]),
        queue_models=(
            None
            if queue_models is None
            else {
                name: QueueModel(**model) for name, model in queue_models.items()
            }
        ),
        background_tenants=int(data["background_tenants"]),
        tenant_jobs_per_hour=float(data["tenant_jobs_per_hour"]),
        parallel_workers=int(data["parallel_workers"]),
        parallel_start_method=data["parallel_start_method"],
        fault_plan=(
            None
            if plan is None
            else FaultPlan(
                seed=int(plan["seed"]),
                outages=tuple(OutageWindow(**w) for w in plan["outages"]),
                transient_failure_rate=float(plan["transient_failure_rate"]),
                result_timeout_rate=float(plan["result_timeout_rate"]),
                result_delay_seconds=float(plan["result_delay_seconds"]),
                calibration_blackouts=tuple(
                    OutageWindow(**w) for w in plan["calibration_blackouts"]
                ),
                worker_crashes=tuple(
                    WorkerCrash(**c) for c in plan["worker_crashes"]
                ),
            )
        ),
        retry_policy=None if retry is None else RetryPolicy(**retry),
        dispatch_deadline=data["dispatch_deadline"],
        min_live_devices=int(data["min_live_devices"]),
        checkpoint_every=data["checkpoint_every"],
        run_store=data["run_store"],
        checkpoint_retention=int(data["checkpoint_retention"]),
    )


def config_hash(data: Mapping) -> str:
    """SHA-256 over the canonical serialized config, durability knobs excluded."""
    trimmed = {k: v for k, v in data.items() if k not in DURABILITY_FIELDS}
    canonical = json.dumps(trimmed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def config_diff(a: Mapping, b: Mapping) -> list[str]:
    """Names of trajectory-affecting config fields that differ, sorted."""
    return sorted(
        key
        for key in set(a) | set(b)
        if key not in DURABILITY_FIELDS and a.get(key) != b.get(key)
    )


# ---------------------------------------------------------------------------
# run directories
# ---------------------------------------------------------------------------

class RunDirectory:
    """One run's on-disk layout (paths + manifest access)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    @property
    def run_id(self) -> str:
        return self.path.name

    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    @property
    def journal_path(self) -> Path:
        return self.path / "journal.jsonl"

    @property
    def checkpoints_dir(self) -> Path:
        return self.path / "checkpoints"

    @property
    def history_path(self) -> Path:
        return self.path / "history.json"

    @property
    def telemetry_path(self) -> Path:
        return self.path / "telemetry.json"

    # ------------------------------------------------------------------
    def manifest(self) -> dict:
        with open(self.manifest_path) as handle:
            return json.load(handle)

    def checkpoint_paths(self) -> list[Path]:
        """All checkpoint generations, oldest first."""
        if not self.checkpoints_dir.is_dir():
            return []
        return sorted(self.checkpoints_dir.glob("ckpt-*.eqc"))

    def status(self) -> str:
        return str(self.manifest().get("status", "unknown"))

    def history(self) -> "TrainingHistory":
        """The final history of a completed run."""
        from .state import restore_history

        if not self.history_path.exists():
            raise FileNotFoundError(
                f"run {self.run_id!r} has no final history "
                f"(status {self.status()!r}); resume it to completion first"
            )
        with open(self.history_path) as handle:
            return restore_history(json.load(handle))

    # ------------------------------------------------------------------
    def write_manifest(self, manifest: dict) -> None:
        atomic_write_json(self.manifest_path, manifest)

    def mark_complete(self, summary: dict) -> None:
        """Flip the manifest to ``complete`` with a result summary, atomically."""
        manifest = self.manifest()
        manifest["status"] = "complete"
        manifest["summary"] = summary
        self.write_manifest(manifest)

    def __repr__(self) -> str:
        return f"RunDirectory({str(self.path)!r})"


class RunStore:
    """The store root: creates, lists, and loads run directories."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _next_run_id(self) -> str:
        highest = 0
        for entry in self.root.iterdir():
            match = _RUN_ID_PATTERN.match(entry.name)
            if match and entry.is_dir():
                highest = max(highest, int(match.group(1)))
        return f"run-{highest + 1:06d}"

    def create_run(
        self,
        config: "EQCConfig",
        initial_parameters,
        num_epochs: int,
        record_every: int = 1,
        run_id: str | None = None,
    ) -> RunDirectory:
        """Register a new run: directory, manifest, empty journal slot."""
        run_id = run_id if run_id is not None else self._next_run_id()
        run = RunDirectory(self.root / run_id)
        if run.path.exists():
            raise FileExistsError(f"run {run_id!r} already exists in {self.root}")
        run.checkpoints_dir.mkdir(parents=True)
        serialized = config_to_dict(config)
        run.write_manifest(
            {
                "schema": MANIFEST_SCHEMA,
                "run_id": run_id,
                "status": "running",
                "config": serialized,
                "config_hash": config_hash(serialized),
                "seed": config.seed,
                "label": config.describe(),
                "initial_parameters": [float(v) for v in initial_parameters],
                "num_epochs": int(num_epochs),
                "record_every": int(record_every),
            }
        )
        return run

    # ------------------------------------------------------------------
    def run_ids(self) -> list[str]:
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / "manifest.json").exists()
        )

    def list_runs(self) -> list[dict]:
        """Manifest summaries of every run, oldest first."""
        out = []
        for run_id in self.run_ids():
            manifest = RunDirectory(self.root / run_id).manifest()
            out.append(
                {
                    "run_id": run_id,
                    "status": manifest.get("status", "unknown"),
                    "label": manifest.get("label", ""),
                    "seed": manifest.get("seed"),
                    "num_epochs": manifest.get("num_epochs"),
                    "config_hash": manifest.get("config_hash"),
                    "summary": manifest.get("summary"),
                }
            )
        return out

    def load_run(self, run_id: str) -> RunDirectory:
        run = RunDirectory(self.root / run_id)
        if not run.manifest_path.exists():
            raise KeyError(f"no run {run_id!r} in store {self.root}")
        return run


def list_runs(root: str | os.PathLike) -> list[dict]:
    """Manifest summaries of every run under a store root."""
    return RunStore(root).list_runs()


def load_run(root: str | os.PathLike, run_id: str) -> RunDirectory:
    """One run's :class:`RunDirectory` by id."""
    return RunStore(root).load_run(run_id)
