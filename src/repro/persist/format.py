"""The on-disk checkpoint container: versioned, self-describing, CRC-framed.

A checkpoint file is a sectioned container::

    EQCCKPT\\n                              magic line
    <header JSON>\\n                        schema + section directory
    <section 0 payload bytes>
    <section 1 payload bytes>
    ...

The header is one JSON object ``{"schema": N, "sections": [{"name", "length",
"crc32"}, ...]}``; each payload is the UTF-8 JSON encoding of one section's
value, and its CRC32 is recorded in the directory.  Readers verify the magic,
the schema number, every section length, and every section CRC before
returning anything — a truncated or bit-flipped file raises
:class:`CheckpointCorruptError` instead of yielding silently wrong state,
which is what lets the recovery path fall back one checkpoint generation.

Floats survive the JSON round trip bit-exactly (``json`` serializes via
``repr``, the shortest exact representation), and NumPy bit-generator states
are plain dicts of (big) integers — so a restored RNG stream continues from
exactly the captured position.

Writes are atomic: the container is assembled in full, written to a
temporary sibling, fsynced, and moved over the destination with
``os.replace``.  A crash mid-write can therefore never produce a torn
checkpoint — only the previous generation or the complete new one.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from pathlib import Path

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA",
    "CheckpointCorruptError",
    "atomic_write_bytes",
    "atomic_write_json",
    "write_checkpoint_file",
    "read_checkpoint_file",
]

#: First line of every checkpoint container.
CHECKPOINT_MAGIC = b"EQCCKPT\n"

#: Current checkpoint schema.  Bump on any incompatible layout change; the
#: reader rejects unknown schemas loudly instead of misinterpreting bytes.
CHECKPOINT_SCHEMA = 1


class CheckpointCorruptError(RuntimeError):
    """The checkpoint file is truncated, bit-flipped, or schema-incompatible."""


def atomic_write_bytes(
    path: str | os.PathLike, payload: bytes, fsync: bool = True
) -> None:
    """Write ``payload`` to ``path`` via temp file + ``os.replace``.

    Readers never observe a partial file: they see either the old content or
    the complete new content.  With ``fsync=True`` the content is also
    durable against a host crash before the rename publishes it.  Callers
    whose readers verify content integrity themselves (the CRC-framed
    checkpoint container, whose recovery falls back a generation on any
    verification failure) may pass ``fsync=False`` and skip the ~1ms sync:
    a power cut can then leave the newest file unreadable, never a torn
    half-state, and never losing anything the fsynced journal holds.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: str | os.PathLike, value: object, indent: int = 2) -> None:
    """Atomically persist one JSON document (pretty, trailing newline)."""
    atomic_write_bytes(path, (json.dumps(value, indent=indent) + "\n").encode())


def write_checkpoint_file(
    path: str | os.PathLike, sections: dict[str, object], fsync: bool = False
) -> int:
    """Assemble and atomically write one checkpoint container.

    ``sections`` maps section names to JSON-serializable values.  Returns the
    container size in bytes (telemetry records it as the checkpoint payload).

    Checkpoints default to ``fsync=False``: the run journal — fsynced before
    every checkpoint commits — is the durability anchor, and a generation
    that a power cut leaves unreadable is exactly what CRC verification and
    retention fallback recover from.  Skipping the sync keeps per-epoch
    checkpointing inside the overhead budget that ``bench_checkpoint`` pins.
    """
    payloads: list[tuple[str, bytes]] = []
    for name, value in sections.items():
        body = json.dumps(value, separators=(",", ":")).encode()
        payloads.append((name, body))
    header = {
        "schema": CHECKPOINT_SCHEMA,
        "sections": [
            {"name": name, "length": len(body), "crc32": zlib.crc32(body)}
            for name, body in payloads
        ],
    }
    blob = bytearray()
    blob += CHECKPOINT_MAGIC
    blob += (json.dumps(header, separators=(",", ":")) + "\n").encode()
    for _, body in payloads:
        blob += body
    atomic_write_bytes(path, bytes(blob), fsync=fsync)
    return len(blob)


def read_checkpoint_file(path: str | os.PathLike) -> dict[str, object]:
    """Read and fully verify one checkpoint container.

    Raises :class:`CheckpointCorruptError` on any integrity failure (missing
    file is reported as corruption too, so generation fallback handles a
    deleted-but-indexed checkpoint uniformly).
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise CheckpointCorruptError(f"cannot read checkpoint {path}: {exc}") from exc
    if not raw.startswith(CHECKPOINT_MAGIC):
        raise CheckpointCorruptError(f"{path}: bad magic (not a checkpoint container)")
    body = raw[len(CHECKPOINT_MAGIC):]
    newline = body.find(b"\n")
    if newline < 0:
        raise CheckpointCorruptError(f"{path}: truncated before the header")
    try:
        header = json.loads(body[:newline].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"{path}: unreadable header: {exc}") from exc
    schema = header.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointCorruptError(
            f"{path}: unsupported checkpoint schema {schema!r} "
            f"(this reader supports {CHECKPOINT_SCHEMA})"
        )
    directory = header.get("sections")
    if not isinstance(directory, list):
        raise CheckpointCorruptError(f"{path}: header carries no section directory")

    sections: dict[str, object] = {}
    offset = newline + 1
    for entry in directory:
        name, length, crc = entry["name"], int(entry["length"]), int(entry["crc32"])
        payload = body[offset : offset + length]
        if len(payload) != length:
            raise CheckpointCorruptError(
                f"{path}: section {name!r} truncated "
                f"({len(payload)} of {length} bytes)"
            )
        if zlib.crc32(payload) != crc:
            raise CheckpointCorruptError(f"{path}: section {name!r} failed its CRC32")
        try:
            sections[name] = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(
                f"{path}: section {name!r} is not valid JSON: {exc}"
            ) from exc
        offset += length
    if offset != len(body):
        raise CheckpointCorruptError(
            f"{path}: {len(body) - offset} trailing bytes after the last section"
        )
    return sections
