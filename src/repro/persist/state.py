"""Bit-exact capture and restoration of a training run's live state.

Everything the EQC training loop needs to continue *as if uninterrupted* is
snapshotted into JSON-friendly structures and restored symmetrically:

* the master's parameter vector, per-parameter update counts and version,
  run counters, ``PCorrect`` map, weights, orphaned tasks, fleet events;
* the master's in-flight event heap — completed-but-unconsumed outcomes,
  parked failures, stragglers and breaker probes, preserved in heap order;
* the epoch records and metadata accumulated so far;
* the cyclic task queue's issue position;
* the cloud environment: every endpoint's RNG bit-generator state, virtual
  clock (``free_at``), and utilization record, the provider's job-id counter,
  dead-device set and fault counters, and each client's job count;
* the fault machinery mid-chaos: injector stream positions and the full
  circuit-breaker state including the transition log.

Floats round-trip bit-exactly through JSON (``repr``-based serialization),
and NumPy ``Generator`` states are the bit-generator state dicts NumPy
itself exposes — a restored stream produces the same draws as the original
from the captured position onward, which is what the resume-exactness
goldens pin.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..core.client import EQCClientNode, GradientOutcome
from ..core.history import EpochRecord, TrainingHistory
from ..faults.errors import (
    DeviceOutageError,
    FaultError,
    JobDeadlineExceeded,
    JobRetriesExhausted,
    TransientJobFailure,
)
from ..vqa.tasks import GradientTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cloud.provider import CloudProvider
    from ..faults.health import DeviceHealthTracker
    from ..faults.injector import FaultInjector

__all__ = [
    "generator_state",
    "restore_generator",
    "snapshot_task",
    "restore_task",
    "snapshot_outcome",
    "restore_outcome",
    "snapshot_inflight",
    "restore_inflight",
    "snapshot_history",
    "restore_history",
    "snapshot_environment",
    "restore_environment",
]


# ---------------------------------------------------------------------------
# RNG streams
# ---------------------------------------------------------------------------

def generator_state(rng: np.random.Generator) -> dict:
    """The complete bit-generator state of one NumPy ``Generator``."""
    return rng.bit_generator.state


def restore_generator(rng: np.random.Generator, state: Mapping) -> None:
    """Restore a ``Generator`` to a captured position in its stream."""
    rng.bit_generator.state = dict(state)


# ---------------------------------------------------------------------------
# tasks / outcomes / in-flight heap events
# ---------------------------------------------------------------------------

def snapshot_task(task: GradientTask) -> dict:
    return {
        "task_id": task.task_id,
        "parameter_index": task.parameter_index,
        "data_index": task.data_index,
    }


def restore_task(data: Mapping) -> GradientTask:
    return GradientTask(
        task_id=int(data["task_id"]),
        parameter_index=int(data["parameter_index"]),
        data_index=None if data["data_index"] is None else int(data["data_index"]),
    )


def snapshot_outcome(outcome: GradientOutcome) -> dict:
    return {
        "client_name": outcome.client_name,
        "device_name": outcome.device_name,
        "task": snapshot_task(outcome.task),
        "gradient": outcome.gradient,
        "p_correct": outcome.p_correct,
        "submit_time": outcome.submit_time,
        "finish_time": outcome.finish_time,
        "theta_version": outcome.theta_version,
        "num_circuits": outcome.num_circuits,
        "success_probability_truth": outcome.success_probability_truth,
    }


def restore_outcome(data: Mapping) -> GradientOutcome:
    return GradientOutcome(
        client_name=str(data["client_name"]),
        device_name=str(data["device_name"]),
        task=restore_task(data["task"]),
        gradient=float(data["gradient"]),
        p_correct=float(data["p_correct"]),
        submit_time=float(data["submit_time"]),
        finish_time=float(data["finish_time"]),
        theta_version=int(data["theta_version"]),
        num_circuits=int(data["num_circuits"]),
        success_probability_truth=float(data["success_probability_truth"]),
    )


#: Fault classes that can be parked on the master's heap, by wire name.
_FAULT_TYPES = {
    cls.__name__: cls
    for cls in (
        FaultError,
        TransientJobFailure,
        JobRetriesExhausted,
        JobDeadlineExceeded,
        DeviceOutageError,
    )
}


def _snapshot_failure(failure: FaultError | None) -> dict | None:
    if failure is None:
        return None
    data = {
        "type": type(failure).__name__,
        "message": str(failure),
        "device_name": failure.device_name,
        "detect_time": failure.detect_time,
    }
    if isinstance(failure, DeviceOutageError):
        data["permanent"] = failure.permanent
    if isinstance(failure, JobRetriesExhausted):
        data["attempts"] = failure.attempts
    return data


def _restore_failure(data: Mapping | None) -> FaultError | None:
    if data is None:
        return None
    cls = _FAULT_TYPES.get(str(data["type"]), FaultError)
    kwargs = {
        "device_name": str(data["device_name"]),
        "detect_time": float(data["detect_time"]),
    }
    if cls is DeviceOutageError:
        kwargs["permanent"] = bool(data.get("permanent", True))
    if cls is JobRetriesExhausted:
        kwargs["attempts"] = int(data.get("attempts", 0))
    return cls(str(data["message"]), **kwargs)


def snapshot_inflight(entry) -> dict:
    """One master heap event (``repro.core.master._InFlight``) as plain data.

    Parallel dispatches (``job_id >= 0`` with no outcome) are rejected at
    configuration time — a checkpointed run is sequential, so every ``job``
    event carries its completed outcome.
    """
    return {
        "finish_time": entry.finish_time,
        "sequence": entry.sequence,
        "kind": entry.kind,
        "client": entry.client.name,
        "outcome": None if entry.outcome is None else snapshot_outcome(entry.outcome),
        "task": None if entry.task is None else snapshot_task(entry.task),
        "failure": _snapshot_failure(entry.failure),
    }


def restore_inflight(data: Mapping, clients_by_name: Mapping[str, EQCClientNode]):
    from ..core.master import _InFlight  # local: persist must not import core.master at module load

    return _InFlight(
        finish_time=float(data["finish_time"]),
        sequence=int(data["sequence"]),
        outcome=None if data["outcome"] is None else restore_outcome(data["outcome"]),
        client=clients_by_name[str(data["client"])],
        kind=str(data["kind"]),
        task=None if data["task"] is None else restore_task(data["task"]),
        failure=_restore_failure(data["failure"]),
    )


# ---------------------------------------------------------------------------
# history
# ---------------------------------------------------------------------------

def snapshot_history(history: TrainingHistory) -> dict:
    """A ``TrainingHistory`` as plain data (shared with the run store)."""
    return {
        "label": history.label,
        "device_names": list(history.device_names),
        "total_updates": history.total_updates,
        "total_jobs": history.total_jobs,
        "terminated_early": history.terminated_early,
        "termination_reason": history.termination_reason,
        "final_epoch_fraction": history.final_epoch_fraction,
        "metadata": history.metadata,
        "records": [
            {
                "epoch": r.epoch,
                "sim_time_hours": r.sim_time_hours,
                "loss": r.loss,
                "parameters": list(r.parameters),
                "weights": dict(r.weights),
                "noisy_loss": None if math.isnan(r.noisy_loss) else r.noisy_loss,
            }
            for r in history.records
        ],
    }


def restore_history(data: Mapping) -> TrainingHistory:
    history = TrainingHistory(
        label=str(data["label"]),
        device_names=tuple(data["device_names"]),
        total_updates=int(data["total_updates"]),
        total_jobs=int(data["total_jobs"]),
        terminated_early=bool(data["terminated_early"]),
        termination_reason=str(data["termination_reason"]),
        final_epoch_fraction=float(data["final_epoch_fraction"]),
        metadata=dict(data["metadata"]),
    )
    for r in data["records"]:
        history.add(
            EpochRecord(
                epoch=int(r["epoch"]),
                sim_time_hours=float(r["sim_time_hours"]),
                loss=float(r["loss"]),
                parameters=tuple(float(v) for v in r["parameters"]),
                weights={k: float(v) for k, v in r["weights"].items()},
                noisy_loss=float("nan") if r["noisy_loss"] is None else float(r["noisy_loss"]),
            )
        )
    return history


# ---------------------------------------------------------------------------
# environment (provider + clients + fault machinery)
# ---------------------------------------------------------------------------

def snapshot_environment(
    provider: "CloudProvider",
    clients: Sequence[EQCClientNode],
    injector: "FaultInjector | None" = None,
    health: "DeviceHealthTracker | None" = None,
) -> dict:
    """Capture everything outside the master that evolves during training."""
    return {
        "provider": provider.snapshot_state(),
        "clients": {client.name: client.jobs_completed for client in clients},
        "injector": None if injector is None else injector.snapshot_streams(),
        "health": None if health is None else health.snapshot_state(),
    }


def restore_environment(
    data: Mapping,
    provider: "CloudProvider",
    clients: Sequence[EQCClientNode],
    injector: "FaultInjector | None" = None,
    health: "DeviceHealthTracker | None" = None,
) -> None:
    """Restore a captured environment into freshly constructed objects."""
    provider.restore_state(data["provider"])
    counts = data["clients"]
    for client in clients:
        client.jobs_completed = int(counts[client.name])
    if injector is not None and data["injector"] is not None:
        injector.restore_streams(data["injector"])
    if health is not None and data["health"] is not None:
        health.restore_state(data["health"])
