"""Declarative fault plans: what breaks, where, and when.

A :class:`FaultPlan` is pure data — the complete description of one chaos
scenario.  Together with a run seed it fully determines every injected fault
(the :class:`~repro.faults.injector.FaultInjector` derives per-device RNG
streams from ``(seed, plan.seed, crc32(label))``, the same idiom as the sched
kernel), so any chaos run is bit-reproducible from ``(plan, seed)``.

Five fault families cover the failure modes a real quantum cloud exhibits:

* **outages** — a device goes offline for a window (or forever);
* **transient job failures** — a job reaches the device head and bombs with
  some probability (calibration glitch, control-electronics hiccup);
* **result timeouts** — the job executes but its results are delayed past
  the caller's deadline;
* **calibration blackouts** — the provider stops republishing device
  properties for a window, so ``PCorrect`` estimates go stale;
* **worker crashes** — a parallel worker process dies after N jobs
  (the ensemble executor respawns it and replays its seeded streams).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["OutageWindow", "WorkerCrash", "FaultPlan"]


@dataclass(frozen=True)
class OutageWindow:
    """One device outage: ``[start, start + duration)`` (or forever).

    ``permanent=True`` (or ``duration=inf``) models a device that never
    comes back — the fleet-shrink scenario the paper's ensemble argument is
    ultimately about.
    """

    device: str
    start: float = 0.0
    duration: float = float("inf")
    permanent: bool = False

    def __post_init__(self) -> None:
        if not self.device:
            raise ValueError("an outage window needs a device name")
        if self.start < 0:
            raise ValueError("outage start must be non-negative")
        if self.duration <= 0:
            raise ValueError("outage duration must be positive")
        if self.permanent and math.isfinite(self.duration):
            # Normalize: a permanent outage has no end.
            object.__setattr__(self, "duration", float("inf"))
        if not self.permanent and not math.isfinite(self.duration):
            object.__setattr__(self, "permanent", True)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class WorkerCrash:
    """Kill parallel worker ``worker_id`` once it has executed ``after_jobs`` jobs.

    The crash fires *before* the outcome of the ``after_jobs``-th job is
    shipped back, so the executor's respawn-and-replay recovery is always
    exercised, never just the happy path.
    """

    worker_id: int
    after_jobs: int

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("worker_id must be non-negative")
        if self.after_jobs < 1:
            raise ValueError("after_jobs must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic chaos scenario.

    Attributes:
        seed: plan-level seed folded into every injector stream; two runs
            with the same ``(plan, run seed)`` inject identical faults.
        outages: device outage windows (see :class:`OutageWindow`).
        transient_failure_rate: per-attempt probability that a job fails the
            moment it reaches the device head (absorbed by the retry loop).
        result_timeout_rate: probability that a successfully executed job's
            results are delayed by ``result_delay_seconds`` before becoming
            visible (a per-job deadline turns the delay into a failure).
        result_delay_seconds: size of one injected result delay.
        calibration_blackouts: windows during which a device's published
            properties freeze at their window-start values, so client
            ``PCorrect`` estimates go stale.
        worker_crashes: parallel-worker kill points (see :class:`WorkerCrash`).
    """

    seed: int = 0
    outages: tuple[OutageWindow, ...] = ()
    transient_failure_rate: float = 0.0
    result_timeout_rate: float = 0.0
    result_delay_seconds: float = 600.0
    calibration_blackouts: tuple[OutageWindow, ...] = ()
    worker_crashes: tuple[WorkerCrash, ...] = ()

    def __post_init__(self) -> None:
        # Accept any iterable for the window/crash collections.
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(
            self, "calibration_blackouts", tuple(self.calibration_blackouts)
        )
        object.__setattr__(self, "worker_crashes", tuple(self.worker_crashes))
        if not 0.0 <= self.transient_failure_rate < 1.0:
            raise ValueError("transient_failure_rate must be within [0, 1)")
        if not 0.0 <= self.result_timeout_rate < 1.0:
            raise ValueError("result_timeout_rate must be within [0, 1)")
        if self.result_delay_seconds <= 0:
            raise ValueError("result_delay_seconds must be positive")
        crash_points = [(c.worker_id, c.after_jobs) for c in self.worker_crashes]
        if len(set(crash_points)) != len(crash_points):
            raise ValueError("duplicate (worker_id, after_jobs) crash points")

    # ------------------------------------------------------------------
    @property
    def has_device_faults(self) -> bool:
        """True when any fault targets the device/provider layer."""
        return bool(
            self.outages
            or self.transient_failure_rate > 0.0
            or self.result_timeout_rate > 0.0
            or self.calibration_blackouts
        )

    @property
    def enabled(self) -> bool:
        """True when the plan injects anything at all."""
        return self.has_device_faults or bool(self.worker_crashes)

    def crash_points_for(self, worker_id: int) -> tuple[int, ...]:
        """Sorted job-count thresholds at which one worker crashes."""
        return tuple(
            sorted(
                crash.after_jobs
                for crash in self.worker_crashes
                if crash.worker_id == worker_id
            )
        )

    def describe(self) -> dict:
        """A JSON-friendly summary (recorded into training metadata)."""
        return {
            "seed": self.seed,
            "outages": [
                {
                    "device": w.device,
                    "start": w.start,
                    "duration": w.duration,
                    "permanent": w.permanent,
                }
                for w in self.outages
            ],
            "transient_failure_rate": self.transient_failure_rate,
            "result_timeout_rate": self.result_timeout_rate,
            "result_delay_seconds": self.result_delay_seconds,
            "calibration_blackouts": [
                {"device": w.device, "start": w.start, "duration": w.duration}
                for w in self.calibration_blackouts
            ],
            "worker_crashes": [
                {"worker_id": c.worker_id, "after_jobs": c.after_jobs}
                for c in self.worker_crashes
            ],
        }
