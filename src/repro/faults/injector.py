"""Deterministic fault injection: per-label seeded streams over a plan.

The injector is the only component that *draws* fault randomness.  Every
stream is derived from ``(run seed, plan seed, crc32(label))`` — the same
idiom as :meth:`repro.sched.kernel.EventKernel.rng_stream` — so

* one device's fault draws never depend on how many draws another device
  consumed (scheduling/partitioning order cannot leak into the chaos), and
* a worker process that rebuilds its injector from ``(plan, seed)`` and
  replays its own devices' jobs reproduces exactly the faults of the
  sequential run.

The injector never touches device endpoint RNG streams: with a disabled
plan no stream is ever created and no draw is ever made, which is what
keeps fault-free seeded histories bit-exact.
"""

from __future__ import annotations

import zlib

import numpy as np

from .plan import FaultPlan, OutageWindow

__all__ = ["FaultInjector"]

#: Domain tag folded into every injector stream seed (keeps injector draws
#: disjoint from kernel streams even under identical labels).
_STREAM_TAG = 0xFA17


class FaultInjector:
    """Draws deterministic fault decisions for one ``(plan, seed)`` pair."""

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.plan.enabled

    def stream(self, label: str) -> np.random.Generator:
        """The independent, reproducible RNG stream for one labelled entity."""
        generator = self._streams.get(label)
        if generator is None:
            generator = np.random.default_rng(
                (self.seed, self.plan.seed, zlib.crc32(label.encode()), _STREAM_TAG)
            )
            self._streams[label] = generator
        return generator

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def snapshot_streams(self) -> dict:
        """Bit-generator states of every stream created so far, by label.

        A stream that was never created needs no capture: it will be derived
        from ``(seed, plan.seed, label)`` at first use, exactly as in the
        original run.
        """
        return {
            label: generator.bit_generator.state
            for label, generator in self._streams.items()
        }

    def restore_streams(self, states: dict) -> None:
        """Restore captured streams mid-sequence (resume under active chaos)."""
        for label, state in states.items():
            self.stream(label).bit_generator.state = dict(state)

    # ------------------------------------------------------------------
    # per-fault decision draws
    # ------------------------------------------------------------------
    def transient_failure(self, device: str) -> bool:
        """One per-attempt failure draw from the device's transient stream."""
        rate = self.plan.transient_failure_rate
        if rate <= 0.0:
            return False
        return float(self.stream(f"{device}/transient").uniform()) < rate

    def result_delay(self, device: str) -> float:
        """Injected result-visibility delay for one executed job (0 = none)."""
        rate = self.plan.result_timeout_rate
        if rate <= 0.0:
            return 0.0
        if float(self.stream(f"{device}/timeout").uniform()) >= rate:
            return 0.0
        return float(self.plan.result_delay_seconds)

    def retry_stream(self, device: str) -> np.random.Generator:
        """The stream backoff jitter for one device draws from."""
        return self.stream(f"{device}/retry")

    # ------------------------------------------------------------------
    # window lookups (no randomness)
    # ------------------------------------------------------------------
    def outage_at(self, device: str, t: float) -> OutageWindow | None:
        """The outage window covering ``t`` on one device, if any."""
        for window in self.plan.outages:
            if window.device == device and window.covers(t):
                return window
        return None

    def device_dead(self, device: str, t: float) -> bool:
        """True when a permanent outage has begun for this device."""
        for window in self.plan.outages:
            if window.device == device and window.permanent and window.start <= t:
                return True
        return False

    def calibration_blackout_at(self, device: str, t: float) -> OutageWindow | None:
        """The calibration blackout covering ``t`` on one device, if any."""
        for window in self.plan.calibration_blackouts:
            if window.device == device and window.covers(t):
                return window
        return None
