"""The fault-family exception hierarchy.

Every exception the resilience machinery raises carries two pieces of
context the EQC master needs to degrade gracefully instead of crashing:
``device_name`` (which endpoint failed) and ``detect_time`` (the *virtual*
timestamp at which the failure became visible to the caller — failures cost
simulated time, exactly like successful jobs cost simulated time).
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "TransientJobFailure",
    "JobRetriesExhausted",
    "JobDeadlineExceeded",
    "DeviceOutageError",
    "FleetExhaustedError",
]


class FaultError(RuntimeError):
    """Base class of every injected-fault / resilience failure."""

    def __init__(
        self,
        message: str,
        *,
        device_name: str = "",
        detect_time: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.device_name = str(device_name)
        #: Virtual-clock timestamp at which the failure surfaced.
        self.detect_time = float(detect_time)


class TransientJobFailure(FaultError):
    """One injected per-attempt failure (normally absorbed by the retry loop)."""


class JobRetriesExhausted(FaultError):
    """Every retry attempt of one job failed transiently."""

    def __init__(
        self,
        message: str,
        *,
        device_name: str = "",
        detect_time: float = 0.0,
        attempts: int = 0,
    ) -> None:
        super().__init__(message, device_name=device_name, detect_time=detect_time)
        self.attempts = int(attempts)


class JobDeadlineExceeded(FaultError):
    """A job (or its delayed results) blew through its per-job deadline."""


class DeviceOutageError(FaultError):
    """The target device is inside an outage window it will not leave."""

    def __init__(
        self,
        message: str,
        *,
        device_name: str = "",
        detect_time: float = 0.0,
        permanent: bool = True,
    ) -> None:
        super().__init__(message, device_name=device_name, detect_time=detect_time)
        self.permanent = bool(permanent)


class FleetExhaustedError(FaultError):
    """Too few live devices remain to keep training (``min_live_devices``)."""
