"""Retry with exponential backoff, deterministic jitter, and deadlines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the provider retries transiently failing jobs.

    Attributes:
        max_attempts: total attempts per job (first try included).
        base_backoff_seconds: wait after the first failure.
        backoff_multiplier: exponential growth factor between attempts.
        max_backoff_seconds: cap on any single backoff wait.
        jitter_fraction: relative jitter band; the actual wait is
            ``backoff * (1 + jitter_fraction * u)`` with ``u ~ U(-1, 1)``
            drawn from the injector's per-device retry stream, so jitter is
            deterministic given ``(plan, seed)``.
        deadline_seconds: per-job wall budget on the *virtual* clock; once
            ``submit + deadline`` passes (backoffs included, delayed results
            included) the job fails with :class:`JobDeadlineExceeded`
            instead of retrying forever.  ``None`` disables the deadline.
    """

    max_attempts: int = 3
    base_backoff_seconds: float = 30.0
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 900.0
    jitter_fraction: float = 0.1
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_seconds < 0:
            raise ValueError("base_backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_backoff_seconds < self.base_backoff_seconds:
            raise ValueError("max_backoff_seconds must be >= base_backoff_seconds")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be within [0, 1)")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    # ------------------------------------------------------------------
    def backoff_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff after the ``attempt``-th failure (1-based), jittered."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        backoff = min(
            self.base_backoff_seconds * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_seconds,
        )
        if self.jitter_fraction > 0.0 and backoff > 0.0:
            backoff *= 1.0 + self.jitter_fraction * float(rng.uniform(-1.0, 1.0))
        return float(backoff)


#: The provider's default when faults are enabled without an explicit policy.
DEFAULT_RETRY_POLICY = RetryPolicy()
