"""Per-device circuit breakers: closed → open → half-open, with probes.

The :class:`DeviceHealthTracker` is the resilience layer's memory.  Failures
on a device accumulate until the breaker *opens* (the device is quarantined);
after ``recovery_seconds`` the breaker turns *half-open* and admits probe
jobs; enough probe successes close it again, one probe failure re-opens it.
A device whose breaker keeps re-opening (``max_reopens``) — or that suffered
a permanent outage — is marked *dead* and retired from the fleet.

Every transition is recorded with its virtual timestamp, so two identical
chaos runs can be compared transition-for-transition (the determinism pin of
``bench_faults``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..telemetry import TELEMETRY as _telemetry

__all__ = ["BreakerState", "BreakerTransition", "DeviceHealthTracker"]


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding of breaker states (for faults.breaker_state telemetry).
_STATE_GAUGE = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1, BreakerState.OPEN: 2}


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded breaker state change."""

    time: float
    device: str
    from_state: str
    to_state: str
    reason: str = ""


@dataclass
class _DeviceHealth:
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probe_successes: int = 0
    reopens: int = 0
    dead: bool = False
    failures_total: int = 0
    successes_total: int = 0


class DeviceHealthTracker:
    """Tracks per-device failure history and gates dispatch through breakers."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_seconds: float = 1800.0,
        probe_successes: int = 1,
        max_reopens: int = 8,
        max_transitions: int = 10000,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_seconds <= 0:
            raise ValueError("recovery_seconds must be positive")
        if probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        if max_reopens < 1:
            raise ValueError("max_reopens must be >= 1")
        if max_transitions < 1:
            raise ValueError("max_transitions must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.recovery_seconds = float(recovery_seconds)
        self.probe_successes = int(probe_successes)
        #: A breaker that re-opens from HALF_OPEN this many times marks the
        #: device dead — persistent failure must converge to retirement, not
        #: probe forever (the master's liveness depends on this).
        self.max_reopens = int(max_reopens)
        #: Cap on the recorded transition log so week-long chaos runs cannot
        #: grow memory without bound; ``transitions_total`` stays exact and
        #: ``transitions_dropped`` counts what the cap discarded.
        self.max_transitions = int(max_transitions)
        self._devices: dict[str, _DeviceHealth] = {}
        self.transitions: list[BreakerTransition] = []
        self.transitions_total = 0
        self.transitions_dropped = 0

    # ------------------------------------------------------------------
    def _entry(self, device: str) -> _DeviceHealth:
        entry = self._devices.get(device)
        if entry is None:
            entry = _DeviceHealth()
            self._devices[device] = entry
        return entry

    def _transition(
        self, device: str, entry: _DeviceHealth, to: BreakerState, now: float, reason: str
    ) -> None:
        self.transitions_total += 1
        if len(self.transitions) < self.max_transitions:
            self.transitions.append(
                BreakerTransition(
                    time=float(now),
                    device=device,
                    from_state=entry.state.value,
                    to_state=to.value,
                    reason=reason,
                )
            )
        else:
            # Deterministic overflow: keep the earliest max_transitions
            # entries and count the tail — identical runs drop identically.
            self.transitions_dropped += 1
        entry.state = to

    # ------------------------------------------------------------------
    def state(self, device: str) -> BreakerState:
        return self._entry(device).state

    def is_dead(self, device: str) -> bool:
        return self._entry(device).dead

    def retry_at(self, device: str) -> float:
        """Earliest virtual time at which an open breaker admits a probe."""
        entry = self._entry(device)
        if entry.dead:
            return float("inf")
        if entry.state is BreakerState.OPEN:
            return entry.opened_at + self.recovery_seconds
        return 0.0

    def allow(self, device: str, now: float) -> bool:
        """May a job be dispatched to this device at ``now``?

        An OPEN breaker whose recovery period has elapsed transitions to
        HALF_OPEN here (the caller's dispatch becomes the probe job).
        """
        entry = self._entry(device)
        if entry.dead:
            return False
        if entry.state is BreakerState.CLOSED:
            return True
        if entry.state is BreakerState.OPEN:
            if now >= entry.opened_at + self.recovery_seconds:
                entry.probe_successes = 0
                self._transition(
                    device, entry, BreakerState.HALF_OPEN, now, "recovery elapsed"
                )
                return True
            return False
        return True  # HALF_OPEN: probes flow

    # ------------------------------------------------------------------
    def record_success(self, device: str, now: float) -> None:
        entry = self._entry(device)
        entry.successes_total += 1
        if entry.state is BreakerState.HALF_OPEN:
            entry.probe_successes += 1
            if entry.probe_successes >= self.probe_successes:
                entry.consecutive_failures = 0
                self._transition(
                    device, entry, BreakerState.CLOSED, now, "probes succeeded"
                )
        elif entry.state is BreakerState.CLOSED:
            entry.consecutive_failures = 0

    def record_failure(self, device: str, now: float) -> None:
        entry = self._entry(device)
        entry.failures_total += 1
        entry.consecutive_failures += 1
        if entry.state is BreakerState.HALF_OPEN:
            entry.reopens += 1
            entry.opened_at = float(now)
            if entry.reopens >= self.max_reopens:
                entry.dead = True
                self._transition(
                    device, entry, BreakerState.OPEN, now, "max reopens: device dead"
                )
            else:
                self._transition(device, entry, BreakerState.OPEN, now, "probe failed")
        elif (
            entry.state is BreakerState.CLOSED
            and entry.consecutive_failures >= self.failure_threshold
        ):
            entry.opened_at = float(now)
            self._transition(
                device, entry, BreakerState.OPEN, now, "failure threshold"
            )

    def mark_dead(self, device: str, now: float, reason: str = "permanent outage") -> None:
        entry = self._entry(device)
        if entry.dead:
            return
        entry.dead = True
        if entry.state is not BreakerState.OPEN:
            entry.opened_at = float(now)
            self._transition(device, entry, BreakerState.OPEN, now, reason)

    # ------------------------------------------------------------------
    def live_devices(self, devices) -> list[str]:
        """The subset of ``devices`` not marked dead."""
        return [device for device in devices if not self._entry(device).dead]

    def summary(self) -> dict:
        """JSON-friendly snapshot (used for determinism pins and metadata)."""
        out = {
            "devices": {
                name: {
                    "state": entry.state.value,
                    "dead": entry.dead,
                    "failures_total": entry.failures_total,
                    "successes_total": entry.successes_total,
                    "reopens": entry.reopens,
                }
                for name, entry in sorted(self._devices.items())
            },
            "transitions": [
                {
                    "time": t.time,
                    "device": t.device,
                    "from": t.from_state,
                    "to": t.to_state,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
        }
        if self.transitions_dropped > 0:
            # The overflow marker appears only when the cap actually dropped
            # entries, so uncapped summaries stay byte-identical to the seed.
            out["transitions_total"] = self.transitions_total
            out["transitions_dropped"] = self.transitions_dropped
        return out

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Complete breaker state as JSON-able data (resume mid-chaos)."""
        return {
            "devices": {
                name: {
                    "state": entry.state.value,
                    "consecutive_failures": entry.consecutive_failures,
                    "opened_at": entry.opened_at,
                    "probe_successes": entry.probe_successes,
                    "reopens": entry.reopens,
                    "dead": entry.dead,
                    "failures_total": entry.failures_total,
                    "successes_total": entry.successes_total,
                }
                for name, entry in self._devices.items()
            },
            "transitions": [
                {
                    "time": t.time,
                    "device": t.device,
                    "from_state": t.from_state,
                    "to_state": t.to_state,
                    "reason": t.reason,
                }
                for t in self.transitions
            ],
            "transitions_total": self.transitions_total,
            "transitions_dropped": self.transitions_dropped,
        }

    def restore_state(self, data: dict) -> None:
        """Restore a captured breaker state into this (fresh) tracker."""
        self._devices = {
            name: _DeviceHealth(
                state=BreakerState(entry["state"]),
                consecutive_failures=int(entry["consecutive_failures"]),
                opened_at=float(entry["opened_at"]),
                probe_successes=int(entry["probe_successes"]),
                reopens=int(entry["reopens"]),
                dead=bool(entry["dead"]),
                failures_total=int(entry["failures_total"]),
                successes_total=int(entry["successes_total"]),
            )
            for name, entry in data["devices"].items()
        }
        self.transitions = [
            BreakerTransition(
                time=float(t["time"]),
                device=str(t["device"]),
                from_state=str(t["from_state"]),
                to_state=str(t["to_state"]),
                reason=str(t["reason"]),
            )
            for t in data["transitions"]
        ]
        self.transitions_total = int(data["transitions_total"])
        self.transitions_dropped = int(data["transitions_dropped"])

    def publish(self, registry=None, prefix: str = "faults") -> None:
        """Write breaker states and transition counts into a metrics registry."""
        if registry is None:
            registry = _telemetry.registry
        for name, entry in self._devices.items():
            registry.gauge(f"{prefix}.breaker_state", device=name).set(
                _STATE_GAUGE[entry.state]
            )
            registry.gauge(f"{prefix}.device_failures", device=name).set(
                entry.failures_total
            )
        # transitions_total, not len(transitions): the gauge stays exact even
        # after the max_transitions cap starts dropping log entries.
        registry.gauge(f"{prefix}.breaker_transitions").set(self.transitions_total)

    def __repr__(self) -> str:
        states = {name: e.state.value for name, e in self._devices.items()}
        return f"DeviceHealthTracker({states})"
