"""Deterministic fault injection and the resilience machinery that absorbs it.

The paper's core claim is that an *ensemble* of cloud QPUs makes VQA training
robust to the unreliability of any single device.  This package supplies the
failure model that makes the claim testable: a declarative
:class:`FaultPlan` (outage windows, transient job-failure rates, result
timeouts, calibration blackouts, worker crashes) injected through seeded
per-label RNG streams, plus the mechanisms that survive it — a
:class:`RetryPolicy` with exponential backoff and deadlines, a
:class:`DeviceHealthTracker` circuit breaker, and graceful fleet-shrink
degradation in the EQC master.

With a disabled plan nothing here executes beyond one predicated branch per
hot call site, and no RNG stream is ever consumed: fault-free seeded
histories stay bit-exact.
"""

from .errors import (
    DeviceOutageError,
    FaultError,
    FleetExhaustedError,
    JobDeadlineExceeded,
    JobRetriesExhausted,
    TransientJobFailure,
)
from .health import BreakerState, BreakerTransition, DeviceHealthTracker
from .injector import FaultInjector
from .plan import FaultPlan, OutageWindow, WorkerCrash
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "FaultPlan",
    "OutageWindow",
    "WorkerCrash",
    "FaultInjector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "DeviceHealthTracker",
    "BreakerState",
    "BreakerTransition",
    "FaultError",
    "TransientJobFailure",
    "JobRetriesExhausted",
    "JobDeadlineExceeded",
    "DeviceOutageError",
    "FleetExhaustedError",
]
