"""Parallel execution of EQC ensemble training.

The package hosts the multiprocess side of the training loop: the
:class:`~repro.execution.parallel.ParallelEnsembleExecutor` runs per-device
client steps in worker processes while the master keeps its deterministic
event loop, so seeded histories are bit-exact with sequential execution (see
the module docstring of :mod:`repro.execution.parallel` for the argument).
"""

from .parallel import ParallelEnsembleExecutor, WorkerContext, WorkerJobError

__all__ = ["ParallelEnsembleExecutor", "WorkerContext", "WorkerJobError"]
