"""True parallel EQC: per-device client steps in a multiprocessing pool.

The discrete-event master loop is deterministic given each job's finish time,
and each device's state — its endpoint RNG stream, ``free_at`` watermark, and
drift/calibration memoization — evolves only from the sequence of jobs that
device receives.  Those two facts make real multiprocess parallelism
compatible with bit-exact seeded histories:

* **Workers own whole per-device stacks.**  Each worker process rebuilds its
  assigned devices from their :class:`~repro.devices.qpu.QPUSpec` rows plus a
  private :class:`~repro.cloud.provider.CloudProvider` and
  :class:`~repro.core.client.EQCClientNode` per device.  Endpoint RNG streams
  are seeded ``(seed, spec.seed, 0xB0B)`` — independent of which provider
  instance hosts the endpoint — so a worker's device state is identical to
  the same device inside the sequential single-provider run.
* **Finish times are predictable before simulation.**  A job's finish time
  depends only on one queue-wait draw, the device's ``free_at``, and the
  drift-model duration arithmetic — never on the parameter vector or the
  simulated physics.  A worker therefore answers a ``submit`` with a cheap
  *timing preview* (computed against a deep copy of the endpoint RNG, leaving
  the real stream for the actual execution) and simulates the job afterwards,
  while the master already dispatches to other devices.
* **The master keeps the sequential control flow.**  Dispatch order, theta
  snapshots, weight refreshes and update order are unchanged; only the
  gradient computation moves off-process.  The heap needs nothing but the
  previewed finish times; the gradient is collected exactly at the moment the
  sequential loop would have consumed it.

Each worker runs a small listener thread that drains its inbox and answers
timing previews immediately while the worker's main thread executes the
simulation backlog — so a busy worker never stalls the master's dispatch.
The worker asserts that every executed job finishes exactly at its previewed
time; any mismatch (or any worker exception) is propagated to the master as
a ``RuntimeError``.

The scheduler path (``EQCConfig.uses_scheduler``) shares one event kernel
across all devices and therefore cannot be partitioned per worker;
:class:`~repro.core.ensemble.EQCConfig` rejects the combination up front.
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing as mp
import os
import queue as queue_module
import threading
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..backends.cache import TranspileCache
from ..cloud.provider import CloudProvider
from ..cloud.queueing import QueueModel
from ..core.client import EQCClientNode, GradientOutcome
from ..core.objective import VQAObjective
from ..devices.qpu import QPU, QPUSpec, job_slot_circuit_seconds
from ..faults.plan import FaultPlan
from ..telemetry import TELEMETRY as _telemetry
from ..vqa.tasks import GradientTask

__all__ = ["WorkerContext", "WorkerJobError", "ParallelEnsembleExecutor"]

#: Seconds between liveness checks while waiting on worker messages.
_POLL_SECONDS = 0.1

#: Seconds to wait for workers to acknowledge a stop before terminating them.
_SHUTDOWN_GRACE_SECONDS = 5.0

#: Exit code of an injected worker crash (distinguishes chaos from real
#: deaths: only this code is eligible for respawn-and-replay recovery).
_CRASH_EXIT_CODE = 47

#: Default seconds a worker may stay silent while the master waits on it.
_DEFAULT_RESPONSE_TIMEOUT_SECONDS = 600.0


class WorkerJobError(RuntimeError):
    """A worker raised while serving a job; re-raised at the master.

    Carries the structured coordinates of the failure — ``worker_id``,
    ``job_id`` and the original exception type name — on top of the full
    worker-side traceback in the message.
    """

    def __init__(
        self, message: str, *, worker_id: int, job_id: int, exc_type: str
    ) -> None:
        super().__init__(message)
        self.worker_id = int(worker_id)
        self.job_id = int(job_id)
        self.exc_type = str(exc_type)


@dataclass(frozen=True)
class WorkerContext:
    """Everything one worker process needs to rebuild its device stacks.

    The context crosses the process boundary once, at pool start-up; it must
    stay picklable under the ``spawn`` start method (the pickle round-trip
    tests pin this for the payload types).
    """

    objective: VQAObjective
    qpu_specs: tuple[QPUSpec, ...]
    client_names: tuple[str, ...]
    queue_models: dict[str, QueueModel] | None
    seed: int
    shots: int
    worker_id: int
    telemetry_enabled: bool = False
    #: Injected crash points: job counts after which this worker kills
    #: itself (``os._exit``) before shipping the outcome.
    crash_after: tuple[int, ...] = ()
    #: Crash points already fired in a previous incarnation — a respawned
    #: worker replays its job log without re-dying at the same point.
    fired_crashes: tuple[int, ...] = ()


class _WorkerRuntime:
    """The per-process device stacks plus the timing-preview arithmetic."""

    def __init__(self, context: WorkerContext) -> None:
        self.worker_id = context.worker_id
        self.objective = context.objective
        qpus = [QPU(spec) for spec in context.qpu_specs]
        #: The worker's private provider: endpoint RNG seeds derive from
        #: (seed, spec.seed) only, so per-device streams match the sequential
        #: run's single shared provider exactly.
        self.provider = CloudProvider(
            qpus,
            queue_models=context.queue_models,
            seed=context.seed,
            shots=context.shots,
        )
        transpile_cache = TranspileCache()
        self.clients: dict[str, EQCClientNode] = {
            qpu.name: EQCClientNode(
                objective=context.objective,
                qpu=qpu,
                provider=self.provider,
                shots=context.shots,
                name=name,
                transpile_cache=transpile_cache,
            )
            for qpu, name in zip(qpus, context.client_names)
        }

    # ------------------------------------------------------------------
    def predict_finish(
        self, device_name: str, num_circuits: int, submit_time: float
    ) -> float:
        """The exact finish time ``provider.submit`` will produce.

        Replicates :meth:`StatisticalQueuePolicy.start_time` (one lognormal
        draw against a *copy* of the endpoint stream, so the real stream is
        consumed by the actual execution) followed by the per-circuit
        duration accumulation of :meth:`QPU._timeline_with_metadata`, float
        op for float op — the worker asserts bitwise equality afterwards.
        """
        endpoint = self.provider._endpoint(device_name)
        preview_rng = copy.deepcopy(endpoint.rng)
        wait = endpoint.queue_model.sample_wait(submit_time, preview_rng)
        start = max(float(submit_time) + wait, endpoint.free_at)
        elapsed = 0.0
        for _ in range(num_circuits):
            duration = endpoint.qpu.job_duration_seconds(start + elapsed)
            elapsed += job_slot_circuit_seconds(duration)
        return start + elapsed

    def execute(
        self,
        device_name: str,
        task: GradientTask,
        theta: np.ndarray,
        submit_time: float,
        theta_version: int,
        num_circuits: int,
        predicted_finish: float,
    ) -> GradientOutcome:
        """Run one client step and verify the previewed finish time.

        The circuit batch is bound here, off the master's critical path —
        the timing preview only needed the circuit *count*.
        """
        job_spec = self.objective.build_job(task, theta)
        if len(job_spec.circuits) != num_circuits:
            raise RuntimeError(
                f"worker {self.worker_id}: circuits_per_job promised "
                f"{num_circuits} circuits but build_job produced "
                f"{len(job_spec.circuits)} on {device_name!r}"
            )
        client = self.clients[device_name]
        outcome = client.execute_task(
            task,
            theta=theta,
            submit_time=submit_time,
            theta_version=theta_version,
            job_spec=job_spec,
        )
        if outcome.finish_time != predicted_finish:
            raise RuntimeError(
                f"worker {self.worker_id}: predicted finish time "
                f"{predicted_finish!r} does not match executed finish time "
                f"{outcome.finish_time!r} on {device_name!r}"
            )
        return outcome

    def utilization_report(self) -> dict[str, dict[str, float]]:
        return self.provider.utilization_report()


def _worker_main(context: WorkerContext, inbox, outbox) -> None:
    """Worker process body: preview timings eagerly, simulate in order.

    A daemon listener thread drains the inbox: for a job it answers the
    timing preview immediately (the preview needs only the circuit count,
    via :meth:`VQAObjective.circuits_per_job`) and appends the work item to
    a backlog the main thread consumes FIFO — circuit binding and the
    simulation itself both stay off the master's critical path.  Control
    messages (``report``/``stop``) travel through the same backlog, so they
    serialize after every already-accepted job.
    """
    # A fork-started worker inherits the parent's telemetry state wholesale —
    # including already-recorded events, which would ship back duplicated.
    # Reset unconditionally, then adopt the master's enabled decision.
    _telemetry.reset()
    if context.telemetry_enabled:
        _telemetry.enable()
        _telemetry.set_process(context.worker_id + 1, f"worker {context.worker_id}")
    else:
        _telemetry.disable()

    try:
        runtime = _WorkerRuntime(context)
    except Exception as exc:
        outbox.put(
            ("error", -1, context.worker_id, type(exc).__name__, traceback.format_exc())
        )
        return

    backlog: deque[tuple] = deque()
    ready = threading.Condition()

    def _enqueue(item: tuple) -> None:
        with ready:
            backlog.append(item)
            ready.notify()

    def _listen() -> None:
        while True:
            try:
                message = inbox.get()
            except (EOFError, OSError):
                _enqueue(("stop",))
                return
            kind = message[0]
            if kind == "job":
                _, job_id, device, task, theta, submit_time, theta_version = message
                try:
                    num_circuits = runtime.objective.circuits_per_job(task)
                    predicted = runtime.predict_finish(
                        device, num_circuits, submit_time
                    )
                except Exception as exc:
                    outbox.put(
                        (
                            "error",
                            job_id,
                            context.worker_id,
                            type(exc).__name__,
                            traceback.format_exc(),
                        )
                    )
                    _enqueue(("stop",))
                    return
                outbox.put(("timing", job_id, predicted, num_circuits))
                _enqueue(
                    (
                        "job",
                        job_id,
                        device,
                        task,
                        theta,
                        submit_time,
                        theta_version,
                        num_circuits,
                        predicted,
                    )
                )
            elif kind == "replay":
                # Replayed job (post-crash recovery): the eager preview would
                # read endpoint state that prior replayed jobs haven't
                # re-established yet, so timing is computed by the main
                # thread in execution order instead.
                _enqueue(message)
            else:
                _enqueue(message)
                if kind == "stop":
                    return

    threading.Thread(target=_listen, daemon=True).start()

    #: Unfired injected crash points, ordered; compared against the count of
    #: jobs this incarnation has executed.
    pending_crashes = sorted(
        point for point in context.crash_after if point not in context.fired_crashes
    )
    jobs_executed = 0

    while True:
        with ready:
            while not backlog:
                ready.wait()
            item = backlog.popleft()
        kind = item[0]
        if kind == "stop":
            outbox.put(("stopped", runtime.worker_id))
            return
        if kind == "report":
            outbox.put(("report", runtime.worker_id, runtime.utilization_report()))
            continue
        if kind == "telemetry":
            outbox.put(
                (
                    "telemetry",
                    runtime.worker_id,
                    _telemetry.registry.snapshot(),
                    _telemetry.tracer.export_payload(),
                )
            )
            continue
        if kind == "replay":
            _, job_id, device, task, theta, submit_time, theta_version = item
            try:
                count = runtime.objective.circuits_per_job(task)
                predicted = runtime.predict_finish(device, count, submit_time)
            except Exception as exc:
                outbox.put(
                    (
                        "error",
                        job_id,
                        context.worker_id,
                        type(exc).__name__,
                        traceback.format_exc(),
                    )
                )
                return
            outbox.put(("timing", job_id, predicted, count))
        else:
            _, job_id, device, task, theta, submit_time, theta_version, count, predicted = item
        try:
            outcome = runtime.execute(
                device, task, theta, submit_time, theta_version, count, predicted
            )
        except Exception as exc:
            outbox.put(
                (
                    "error",
                    job_id,
                    context.worker_id,
                    type(exc).__name__,
                    traceback.format_exc(),
                )
            )
            return
        jobs_executed += 1
        if pending_crashes and jobs_executed >= pending_crashes[0]:
            # Injected crash: die *before* the outcome ships, so recovery
            # always has work to replay (never just the happy path).
            os._exit(_CRASH_EXIT_CODE)
        outbox.put(("outcome", job_id, outcome))


class ParallelEnsembleExecutor:
    """Runs per-device EQC client steps in a pool of worker processes.

    Devices are assigned round-robin to ``num_workers`` workers (capped at
    the fleet size).  :meth:`submit` returns as soon as the owning worker has
    previewed the job's finish time; :meth:`collect` blocks until the
    worker's simulation of that job lands.  Because a device's next job is
    only submitted after its previous outcome was collected, per-device
    operations are strictly serialized and every device evolves exactly as
    in the sequential loop.
    """

    def __init__(
        self,
        objective: VQAObjective,
        qpus: Sequence[QPU],
        *,
        num_workers: int,
        queue_models: Mapping[str, QueueModel] | None = None,
        seed: int = 0,
        shots: int = 8192,
        client_names: Sequence[str] | None = None,
        start_method: str | None = None,
        telemetry: bool | None = None,
        fault_plan: FaultPlan | None = None,
        response_timeout_seconds: float | None = _DEFAULT_RESPONSE_TIMEOUT_SECONDS,
    ) -> None:
        qpus = list(qpus)
        if not qpus:
            raise ValueError("the executor needs at least one device")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = min(int(num_workers), len(qpus))
        self.device_names = tuple(qpu.name for qpu in qpus)
        if client_names is None:
            client_names = [f"client_{name}" for name in self.device_names]
        if len(client_names) != len(qpus):
            raise ValueError("client_names must align with the fleet")
        if response_timeout_seconds is not None and response_timeout_seconds <= 0:
            raise ValueError("response_timeout_seconds must be positive")
        self.response_timeout_seconds = response_timeout_seconds
        self._fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        for crash in self._fault_plan.worker_crashes:
            if crash.worker_id >= self.num_workers:
                raise ValueError(
                    f"crash targets worker {crash.worker_id} but the pool has "
                    f"only {self.num_workers} workers"
                )

        #: Whether workers collect telemetry (default: mirror the master's
        #: state at construction time, so ``TELEMETRY.enable()`` before
        #: building the executor covers the whole fleet).
        self.telemetry_enabled = (
            _telemetry.enabled if telemetry is None else bool(telemetry)
        )

        self._mp_context = (
            mp.get_context(start_method) if start_method else mp.get_context()
        )
        self._outbox = self._mp_context.Queue()
        self._device_worker: dict[str, int] = {}
        assignments: list[list[tuple[QPUSpec, str]]] = [
            [] for _ in range(self.num_workers)
        ]
        for index, (qpu, client_name) in enumerate(zip(qpus, client_names)):
            worker_id = index % self.num_workers
            assignments[worker_id].append((qpu.spec, str(client_name)))
            self._device_worker[qpu.name] = worker_id

        self._contexts: list[WorkerContext] = []
        self._inboxes: list = []
        self._processes: list = []
        for worker_id, assigned in enumerate(assignments):
            self._contexts.append(
                WorkerContext(
                    objective=objective,
                    qpu_specs=tuple(spec for spec, _ in assigned),
                    client_names=tuple(name for _, name in assigned),
                    queue_models=dict(queue_models) if queue_models else None,
                    seed=int(seed),
                    shots=int(shots),
                    worker_id=worker_id,
                    telemetry_enabled=self.telemetry_enabled,
                    crash_after=self._fault_plan.crash_points_for(worker_id),
                )
            )
            self._inboxes.append(None)
            self._processes.append(None)
            self._spawn(worker_id)

        self._next_job_id = 0
        self._timings: dict[int, tuple[float, int]] = {}
        self._outcomes: dict[int, GradientOutcome] = {}
        self._reports: dict[int, dict] = {}
        self._telemetry_payloads: dict[int, tuple[dict, dict]] = {}
        self._stopped: set[int] = set()
        self._closed = False
        #: Every job message ever sent, per worker, in send order — the
        #: replay script for a respawned worker (per-device state is a pure
        #: function of the job sequence, so replay reconstructs it exactly).
        self._job_log: list[list[tuple]] = [[] for _ in range(self.num_workers)]
        #: Job ids whose timing preview / outcome was already consumed, so a
        #: replay's duplicate messages are dropped on arrival.
        self._previewed: set[int] = set()
        self._collected: set[int] = set()
        self._job_worker: dict[int, int] = {}
        #: Injected-crash recoveries, in occurrence order (metadata/benches).
        self.crash_events: list[dict] = []

    def _spawn(self, worker_id: int) -> None:
        """(Re)start one worker process from its stored context."""
        inbox = self._mp_context.Queue()
        process = self._mp_context.Process(
            target=_worker_main,
            args=(self._contexts[worker_id], inbox, self._outbox),
            daemon=True,
        )
        process.start()
        self._inboxes[worker_id] = inbox
        self._processes[worker_id] = process

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelEnsembleExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def submit(
        self,
        device_name: str,
        task: GradientTask,
        theta: np.ndarray,
        submit_time: float,
        theta_version: int,
    ) -> tuple[int, float, int]:
        """Dispatch one client step; returns ``(job_id, finish_time, num_circuits)``.

        Blocks only until the owning worker answers the timing preview — the
        simulation itself proceeds in the background.
        """
        if device_name not in self._device_worker:
            raise KeyError(f"unknown device {device_name!r}")
        job_id = self._next_job_id
        self._next_job_id += 1
        worker_id = self._device_worker[device_name]
        message = (
            "job",
            job_id,
            device_name,
            task,
            np.asarray(theta, dtype=float),
            float(submit_time),
            int(theta_version),
        )
        self._job_log[worker_id].append(message)
        self._job_worker[job_id] = worker_id
        self._inboxes[worker_id].put(message)
        self._wait(
            lambda: job_id in self._timings,
            waiting_for=f"timing preview from worker {worker_id} "
            f"for job {job_id} on {device_name!r}",
        )
        finish_time, num_circuits = self._timings.pop(job_id)
        return job_id, finish_time, num_circuits

    def collect(self, job_id: int) -> GradientOutcome:
        """Block until the worker's simulation of ``job_id`` completes."""
        worker_id = self._job_worker.get(job_id)
        self._wait(
            lambda: job_id in self._outcomes,
            waiting_for=f"outcome of job {job_id} from worker {worker_id}",
        )
        self._collected.add(job_id)
        return self._outcomes.pop(job_id)

    def utilization_report(self) -> dict[str, dict[str, float]]:
        """Merged per-device utilization, in fleet order.

        Each device's record lives in exactly one worker and evolves
        identically to the sequential provider's endpoint, so the merged
        report is numerically identical to
        :meth:`CloudProvider.utilization_report`.
        """
        self._reports.clear()
        for inbox in self._inboxes:
            inbox.put(("report",))
        self._wait(lambda: len(self._reports) == self.num_workers)
        merged: dict[str, dict[str, float]] = {}
        for report in self._reports.values():
            merged.update(report)
        return {name: merged[name] for name in self.device_names if name in merged}

    def collect_telemetry(self, registry=None, tracer=None) -> None:
        """Fold every worker's metrics and spans into the master's telemetry.

        Merging happens in worker-id order regardless of response arrival
        order, so the merged registry is deterministic (gauge overwrites are
        order-dependent; counters and histograms are commutative sums).
        No-op when the executor was built with telemetry off.
        """
        if not self.telemetry_enabled or self._closed:
            return
        if registry is None:
            registry = _telemetry.registry
        if tracer is None:
            tracer = _telemetry.tracer
        self._telemetry_payloads.clear()
        for inbox in self._inboxes:
            inbox.put(("telemetry",))
        self._wait(lambda: len(self._telemetry_payloads) == self.num_workers)
        for worker_id in sorted(self._telemetry_payloads):
            snapshot, trace_payload = self._telemetry_payloads[worker_id]
            registry.merge_snapshot(snapshot)
            tracer.ingest(trace_payload)

    def shutdown(self) -> None:
        """Stop every worker; safe to call more than once (and on errors)."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(("stop",))
            except (ValueError, OSError):
                pass
        deadline = _SHUTDOWN_GRACE_SECONDS / _POLL_SECONDS
        while len(self._stopped) < self.num_workers and deadline > 0:
            try:
                message = self._outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                deadline -= 1
                if all(not p.is_alive() for p in self._processes):
                    break
                continue
            if message[0] != "error":
                self._route(message)
        for process in self._processes:
            process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for channel in [self._outbox, *self._inboxes]:
            channel.close()
            channel.cancel_join_thread()

    # ------------------------------------------------------------------
    def _wait(self, predicate, *, waiting_for: str = "") -> None:
        """Pump worker messages until ``predicate`` holds.

        A worker that died with the injected-crash exit code and has an
        unfired crash point is respawned and its job log replayed; any other
        death — or a worker silent past ``response_timeout_seconds`` — raises
        a ``RuntimeError`` naming the worker.  Structured job errors are
        re-raised as :class:`WorkerJobError`.
        """
        if self._closed:
            raise RuntimeError("the executor is shut down")
        silent_seconds = 0.0
        while not predicate():
            try:
                message = self._outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                for worker_id, process in enumerate(self._processes):
                    if not process.is_alive() and worker_id not in self._stopped:
                        if self._can_respawn(worker_id):
                            self._respawn(worker_id)
                        else:
                            raise RuntimeError(
                                f"parallel worker {worker_id} died "
                                f"(exit code {process.exitcode})"
                            )
                silent_seconds += _POLL_SECONDS
                if (
                    self.response_timeout_seconds is not None
                    and silent_seconds >= self.response_timeout_seconds
                ):
                    detail = waiting_for or "a worker response"
                    raise RuntimeError(
                        f"timed out after {self.response_timeout_seconds:.0f}s "
                        f"waiting for {detail} (worker unresponsive)"
                    )
                continue
            silent_seconds = 0.0
            self._route(message)

    def _can_respawn(self, worker_id: int) -> bool:
        """Only an injected crash with an unfired crash point is recoverable."""
        process = self._processes[worker_id]
        if process.exitcode != _CRASH_EXIT_CODE:
            return False
        context = self._contexts[worker_id]
        return any(
            point not in context.fired_crashes for point in context.crash_after
        )

    def _respawn(self, worker_id: int) -> None:
        """Restart a crashed worker and replay its full job log.

        The smallest unfired crash point is marked fired in the replacement
        context (the crash that just happened), so the new incarnation
        replays straight through it.  Replayed jobs regenerate timing and
        outcome messages; ``_route`` drops the ones already consumed.
        """
        context = self._contexts[worker_id]
        fired = min(
            point for point in context.crash_after
            if point not in context.fired_crashes
        )
        context = dataclasses.replace(
            context, fired_crashes=context.fired_crashes + (fired,)
        )
        self._contexts[worker_id] = context
        self.crash_events.append({"worker_id": worker_id, "after_jobs": fired})
        if self.telemetry_enabled:
            _telemetry.registry.counter("faults.worker_crashes").inc()
            _telemetry.registry.counter("faults.worker_respawns").inc()
        self._spawn(worker_id)
        for message in self._job_log[worker_id]:
            self._inboxes[worker_id].put(("replay", *message[1:]))

    def _route(self, message: tuple) -> None:
        kind = message[0]
        if kind == "timing":
            _, job_id, finish_time, num_circuits = message
            if job_id in self._previewed:
                return  # duplicate from a replayed job
            self._previewed.add(job_id)
            self._timings[job_id] = (float(finish_time), int(num_circuits))
        elif kind == "outcome":
            _, job_id, outcome = message
            if job_id in self._collected or job_id in self._outcomes:
                return  # duplicate from a replayed job
            self._outcomes[job_id] = outcome
        elif kind == "report":
            _, worker_id, report = message
            self._reports[worker_id] = report
        elif kind == "telemetry":
            _, worker_id, snapshot, trace_payload = message
            self._telemetry_payloads[worker_id] = (snapshot, trace_payload)
        elif kind == "stopped":
            self._stopped.add(message[1])
        elif kind == "error":
            _, job_id, worker_id, exc_type, text = message
            raise WorkerJobError(
                f"parallel worker {worker_id} failed while serving job "
                f"{job_id} ({exc_type}):\n{text}",
                worker_id=worker_id,
                job_id=job_id,
                exc_type=exc_type,
            )
        else:  # pragma: no cover - defensive against protocol drift
            raise RuntimeError(f"unknown worker message {kind!r}")
