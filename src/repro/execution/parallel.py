"""True parallel EQC: per-device client steps in a multiprocessing pool.

The discrete-event master loop is deterministic given each job's finish time,
and each device's state — its endpoint RNG stream, ``free_at`` watermark, and
drift/calibration memoization — evolves only from the sequence of jobs that
device receives.  Those two facts make real multiprocess parallelism
compatible with bit-exact seeded histories:

* **Workers own whole per-device stacks.**  Each worker process rebuilds its
  assigned devices from their :class:`~repro.devices.qpu.QPUSpec` rows plus a
  private :class:`~repro.cloud.provider.CloudProvider` and
  :class:`~repro.core.client.EQCClientNode` per device.  Endpoint RNG streams
  are seeded ``(seed, spec.seed, 0xB0B)`` — independent of which provider
  instance hosts the endpoint — so a worker's device state is identical to
  the same device inside the sequential single-provider run.
* **Finish times are predictable before simulation.**  A job's finish time
  depends only on one queue-wait draw, the device's ``free_at``, and the
  drift-model duration arithmetic — never on the parameter vector or the
  simulated physics.  A worker therefore answers a ``submit`` with a cheap
  *timing preview* (computed against a deep copy of the endpoint RNG, leaving
  the real stream for the actual execution) and simulates the job afterwards,
  while the master already dispatches to other devices.
* **The master keeps the sequential control flow.**  Dispatch order, theta
  snapshots, weight refreshes and update order are unchanged; only the
  gradient computation moves off-process.  The heap needs nothing but the
  previewed finish times; the gradient is collected exactly at the moment the
  sequential loop would have consumed it.

Each worker runs a small listener thread that drains its inbox and answers
timing previews immediately while the worker's main thread executes the
simulation backlog — so a busy worker never stalls the master's dispatch.
The worker asserts that every executed job finishes exactly at its previewed
time; any mismatch (or any worker exception) is propagated to the master as
a ``RuntimeError``.

The scheduler path (``EQCConfig.uses_scheduler``) shares one event kernel
across all devices and therefore cannot be partitioned per worker;
:class:`~repro.core.ensemble.EQCConfig` rejects the combination up front.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import queue as queue_module
import threading
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..backends.cache import TranspileCache
from ..cloud.provider import CloudProvider
from ..cloud.queueing import QueueModel
from ..core.client import EQCClientNode, GradientOutcome
from ..core.objective import VQAObjective
from ..devices.qpu import QPU, QPUSpec, job_slot_circuit_seconds
from ..telemetry import TELEMETRY as _telemetry
from ..vqa.tasks import GradientTask

__all__ = ["WorkerContext", "ParallelEnsembleExecutor"]

#: Seconds between liveness checks while waiting on worker messages.
_POLL_SECONDS = 0.1

#: Seconds to wait for workers to acknowledge a stop before terminating them.
_SHUTDOWN_GRACE_SECONDS = 5.0


@dataclass(frozen=True)
class WorkerContext:
    """Everything one worker process needs to rebuild its device stacks.

    The context crosses the process boundary once, at pool start-up; it must
    stay picklable under the ``spawn`` start method (the pickle round-trip
    tests pin this for the payload types).
    """

    objective: VQAObjective
    qpu_specs: tuple[QPUSpec, ...]
    client_names: tuple[str, ...]
    queue_models: dict[str, QueueModel] | None
    seed: int
    shots: int
    worker_id: int
    telemetry_enabled: bool = False


class _WorkerRuntime:
    """The per-process device stacks plus the timing-preview arithmetic."""

    def __init__(self, context: WorkerContext) -> None:
        self.worker_id = context.worker_id
        self.objective = context.objective
        qpus = [QPU(spec) for spec in context.qpu_specs]
        #: The worker's private provider: endpoint RNG seeds derive from
        #: (seed, spec.seed) only, so per-device streams match the sequential
        #: run's single shared provider exactly.
        self.provider = CloudProvider(
            qpus,
            queue_models=context.queue_models,
            seed=context.seed,
            shots=context.shots,
        )
        transpile_cache = TranspileCache()
        self.clients: dict[str, EQCClientNode] = {
            qpu.name: EQCClientNode(
                objective=context.objective,
                qpu=qpu,
                provider=self.provider,
                shots=context.shots,
                name=name,
                transpile_cache=transpile_cache,
            )
            for qpu, name in zip(qpus, context.client_names)
        }

    # ------------------------------------------------------------------
    def predict_finish(
        self, device_name: str, num_circuits: int, submit_time: float
    ) -> float:
        """The exact finish time ``provider.submit`` will produce.

        Replicates :meth:`StatisticalQueuePolicy.start_time` (one lognormal
        draw against a *copy* of the endpoint stream, so the real stream is
        consumed by the actual execution) followed by the per-circuit
        duration accumulation of :meth:`QPU._timeline_with_metadata`, float
        op for float op — the worker asserts bitwise equality afterwards.
        """
        endpoint = self.provider._endpoint(device_name)
        preview_rng = copy.deepcopy(endpoint.rng)
        wait = endpoint.queue_model.sample_wait(submit_time, preview_rng)
        start = max(float(submit_time) + wait, endpoint.free_at)
        elapsed = 0.0
        for _ in range(num_circuits):
            duration = endpoint.qpu.job_duration_seconds(start + elapsed)
            elapsed += job_slot_circuit_seconds(duration)
        return start + elapsed

    def execute(
        self,
        device_name: str,
        task: GradientTask,
        theta: np.ndarray,
        submit_time: float,
        theta_version: int,
        num_circuits: int,
        predicted_finish: float,
    ) -> GradientOutcome:
        """Run one client step and verify the previewed finish time.

        The circuit batch is bound here, off the master's critical path —
        the timing preview only needed the circuit *count*.
        """
        job_spec = self.objective.build_job(task, theta)
        if len(job_spec.circuits) != num_circuits:
            raise RuntimeError(
                f"worker {self.worker_id}: circuits_per_job promised "
                f"{num_circuits} circuits but build_job produced "
                f"{len(job_spec.circuits)} on {device_name!r}"
            )
        client = self.clients[device_name]
        outcome = client.execute_task(
            task,
            theta=theta,
            submit_time=submit_time,
            theta_version=theta_version,
            job_spec=job_spec,
        )
        if outcome.finish_time != predicted_finish:
            raise RuntimeError(
                f"worker {self.worker_id}: predicted finish time "
                f"{predicted_finish!r} does not match executed finish time "
                f"{outcome.finish_time!r} on {device_name!r}"
            )
        return outcome

    def utilization_report(self) -> dict[str, dict[str, float]]:
        return self.provider.utilization_report()


def _worker_main(context: WorkerContext, inbox, outbox) -> None:
    """Worker process body: preview timings eagerly, simulate in order.

    A daemon listener thread drains the inbox: for a job it answers the
    timing preview immediately (the preview needs only the circuit count,
    via :meth:`VQAObjective.circuits_per_job`) and appends the work item to
    a backlog the main thread consumes FIFO — circuit binding and the
    simulation itself both stay off the master's critical path.  Control
    messages (``report``/``stop``) travel through the same backlog, so they
    serialize after every already-accepted job.
    """
    # A fork-started worker inherits the parent's telemetry state wholesale —
    # including already-recorded events, which would ship back duplicated.
    # Reset unconditionally, then adopt the master's enabled decision.
    _telemetry.reset()
    if context.telemetry_enabled:
        _telemetry.enable()
        _telemetry.set_process(context.worker_id + 1, f"worker {context.worker_id}")
    else:
        _telemetry.disable()

    try:
        runtime = _WorkerRuntime(context)
    except Exception:
        outbox.put(("error", -1, traceback.format_exc()))
        return

    backlog: deque[tuple] = deque()
    ready = threading.Condition()

    def _enqueue(item: tuple) -> None:
        with ready:
            backlog.append(item)
            ready.notify()

    def _listen() -> None:
        while True:
            try:
                message = inbox.get()
            except (EOFError, OSError):
                _enqueue(("stop",))
                return
            kind = message[0]
            if kind == "job":
                _, job_id, device, task, theta, submit_time, theta_version = message
                try:
                    num_circuits = runtime.objective.circuits_per_job(task)
                    predicted = runtime.predict_finish(
                        device, num_circuits, submit_time
                    )
                except Exception:
                    outbox.put(("error", job_id, traceback.format_exc()))
                    _enqueue(("stop",))
                    return
                outbox.put(("timing", job_id, predicted, num_circuits))
                _enqueue(
                    (
                        "job",
                        job_id,
                        device,
                        task,
                        theta,
                        submit_time,
                        theta_version,
                        num_circuits,
                        predicted,
                    )
                )
            else:
                _enqueue(message)
                if kind == "stop":
                    return

    threading.Thread(target=_listen, daemon=True).start()

    while True:
        with ready:
            while not backlog:
                ready.wait()
            item = backlog.popleft()
        kind = item[0]
        if kind == "stop":
            outbox.put(("stopped", runtime.worker_id))
            return
        if kind == "report":
            outbox.put(("report", runtime.worker_id, runtime.utilization_report()))
            continue
        if kind == "telemetry":
            outbox.put(
                (
                    "telemetry",
                    runtime.worker_id,
                    _telemetry.registry.snapshot(),
                    _telemetry.tracer.export_payload(),
                )
            )
            continue
        _, job_id, device, task, theta, submit_time, theta_version, count, predicted = item
        try:
            outcome = runtime.execute(
                device, task, theta, submit_time, theta_version, count, predicted
            )
        except Exception:
            outbox.put(("error", job_id, traceback.format_exc()))
            return
        outbox.put(("outcome", job_id, outcome))


class ParallelEnsembleExecutor:
    """Runs per-device EQC client steps in a pool of worker processes.

    Devices are assigned round-robin to ``num_workers`` workers (capped at
    the fleet size).  :meth:`submit` returns as soon as the owning worker has
    previewed the job's finish time; :meth:`collect` blocks until the
    worker's simulation of that job lands.  Because a device's next job is
    only submitted after its previous outcome was collected, per-device
    operations are strictly serialized and every device evolves exactly as
    in the sequential loop.
    """

    def __init__(
        self,
        objective: VQAObjective,
        qpus: Sequence[QPU],
        *,
        num_workers: int,
        queue_models: Mapping[str, QueueModel] | None = None,
        seed: int = 0,
        shots: int = 8192,
        client_names: Sequence[str] | None = None,
        start_method: str | None = None,
        telemetry: bool | None = None,
    ) -> None:
        qpus = list(qpus)
        if not qpus:
            raise ValueError("the executor needs at least one device")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = min(int(num_workers), len(qpus))
        self.device_names = tuple(qpu.name for qpu in qpus)
        if client_names is None:
            client_names = [f"client_{name}" for name in self.device_names]
        if len(client_names) != len(qpus):
            raise ValueError("client_names must align with the fleet")

        #: Whether workers collect telemetry (default: mirror the master's
        #: state at construction time, so ``TELEMETRY.enable()`` before
        #: building the executor covers the whole fleet).
        self.telemetry_enabled = (
            _telemetry.enabled if telemetry is None else bool(telemetry)
        )

        context = mp.get_context(start_method) if start_method else mp.get_context()
        self._outbox = context.Queue()
        self._device_worker: dict[str, int] = {}
        assignments: list[list[tuple[QPUSpec, str]]] = [
            [] for _ in range(self.num_workers)
        ]
        for index, (qpu, client_name) in enumerate(zip(qpus, client_names)):
            worker_id = index % self.num_workers
            assignments[worker_id].append((qpu.spec, str(client_name)))
            self._device_worker[qpu.name] = worker_id

        self._inboxes = []
        self._processes = []
        for worker_id, assigned in enumerate(assignments):
            worker_context = WorkerContext(
                objective=objective,
                qpu_specs=tuple(spec for spec, _ in assigned),
                client_names=tuple(name for _, name in assigned),
                queue_models=dict(queue_models) if queue_models else None,
                seed=int(seed),
                shots=int(shots),
                worker_id=worker_id,
                telemetry_enabled=self.telemetry_enabled,
            )
            inbox = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(worker_context, inbox, self._outbox),
                daemon=True,
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)

        self._next_job_id = 0
        self._timings: dict[int, tuple[float, int]] = {}
        self._outcomes: dict[int, GradientOutcome] = {}
        self._reports: dict[int, dict] = {}
        self._telemetry_payloads: dict[int, tuple[dict, dict]] = {}
        self._stopped: set[int] = set()
        self._closed = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelEnsembleExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def submit(
        self,
        device_name: str,
        task: GradientTask,
        theta: np.ndarray,
        submit_time: float,
        theta_version: int,
    ) -> tuple[int, float, int]:
        """Dispatch one client step; returns ``(job_id, finish_time, num_circuits)``.

        Blocks only until the owning worker answers the timing preview — the
        simulation itself proceeds in the background.
        """
        if device_name not in self._device_worker:
            raise KeyError(f"unknown device {device_name!r}")
        job_id = self._next_job_id
        self._next_job_id += 1
        self._inboxes[self._device_worker[device_name]].put(
            (
                "job",
                job_id,
                device_name,
                task,
                np.asarray(theta, dtype=float),
                float(submit_time),
                int(theta_version),
            )
        )
        self._wait(lambda: job_id in self._timings)
        finish_time, num_circuits = self._timings.pop(job_id)
        return job_id, finish_time, num_circuits

    def collect(self, job_id: int) -> GradientOutcome:
        """Block until the worker's simulation of ``job_id`` completes."""
        self._wait(lambda: job_id in self._outcomes)
        return self._outcomes.pop(job_id)

    def utilization_report(self) -> dict[str, dict[str, float]]:
        """Merged per-device utilization, in fleet order.

        Each device's record lives in exactly one worker and evolves
        identically to the sequential provider's endpoint, so the merged
        report is numerically identical to
        :meth:`CloudProvider.utilization_report`.
        """
        self._reports.clear()
        for inbox in self._inboxes:
            inbox.put(("report",))
        self._wait(lambda: len(self._reports) == self.num_workers)
        merged: dict[str, dict[str, float]] = {}
        for report in self._reports.values():
            merged.update(report)
        return {name: merged[name] for name in self.device_names if name in merged}

    def collect_telemetry(self, registry=None, tracer=None) -> None:
        """Fold every worker's metrics and spans into the master's telemetry.

        Merging happens in worker-id order regardless of response arrival
        order, so the merged registry is deterministic (gauge overwrites are
        order-dependent; counters and histograms are commutative sums).
        No-op when the executor was built with telemetry off.
        """
        if not self.telemetry_enabled or self._closed:
            return
        if registry is None:
            registry = _telemetry.registry
        if tracer is None:
            tracer = _telemetry.tracer
        self._telemetry_payloads.clear()
        for inbox in self._inboxes:
            inbox.put(("telemetry",))
        self._wait(lambda: len(self._telemetry_payloads) == self.num_workers)
        for worker_id in sorted(self._telemetry_payloads):
            snapshot, trace_payload = self._telemetry_payloads[worker_id]
            registry.merge_snapshot(snapshot)
            tracer.ingest(trace_payload)

    def shutdown(self) -> None:
        """Stop every worker; safe to call more than once (and on errors)."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(("stop",))
            except (ValueError, OSError):
                pass
        deadline = _SHUTDOWN_GRACE_SECONDS / _POLL_SECONDS
        while len(self._stopped) < self.num_workers and deadline > 0:
            try:
                message = self._outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                deadline -= 1
                if all(not p.is_alive() for p in self._processes):
                    break
                continue
            if message[0] != "error":
                self._route(message)
        for process in self._processes:
            process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for channel in [self._outbox, *self._inboxes]:
            channel.close()
            channel.cancel_join_thread()

    # ------------------------------------------------------------------
    def _wait(self, predicate) -> None:
        """Pump worker messages until ``predicate`` holds.

        Raises ``RuntimeError`` when a worker reports an exception or dies
        without reporting.
        """
        if self._closed:
            raise RuntimeError("the executor is shut down")
        while not predicate():
            try:
                message = self._outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                for worker_id, process in enumerate(self._processes):
                    if not process.is_alive() and worker_id not in self._stopped:
                        raise RuntimeError(
                            f"parallel worker {worker_id} died "
                            f"(exit code {process.exitcode})"
                        )
                continue
            self._route(message)

    def _route(self, message: tuple) -> None:
        kind = message[0]
        if kind == "timing":
            _, job_id, finish_time, num_circuits = message
            self._timings[job_id] = (float(finish_time), int(num_circuits))
        elif kind == "outcome":
            _, job_id, outcome = message
            self._outcomes[job_id] = outcome
        elif kind == "report":
            _, worker_id, report = message
            self._reports[worker_id] = report
        elif kind == "telemetry":
            _, worker_id, snapshot, trace_payload = message
            self._telemetry_payloads[worker_id] = (snapshot, trace_payload)
        elif kind == "stopped":
            self._stopped.add(message[1])
        elif kind == "error":
            _, job_id, text = message
            raise RuntimeError(
                f"parallel worker failed while serving job {job_id}:\n{text}"
            )
        else:  # pragma: no cover - defensive against protocol drift
            raise RuntimeError(f"unknown worker message {kind!r}")
