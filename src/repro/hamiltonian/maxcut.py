"""MaxCut Hamiltonians and classical cut utilities (paper Eq. 5-7).

The MaxCut objective over a weighted graph is mapped to the diagonal spin
Hamiltonian ``H = - sum_(j,k) w_jk / 2 * (1 - Z_j Z_k)`` (a minimization), so
the expectation of ``H`` equals minus the expected cut weight.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import networkx as nx

from .pauli import PauliString, PauliSum

__all__ = [
    "RING_GRAPH_EDGES",
    "maxcut_hamiltonian",
    "ring_maxcut_hamiltonian",
    "cut_value",
    "best_cut",
    "maxcut_graph",
]

#: The paper's 4-node unweighted ring graph, 0-indexed.
RING_GRAPH_EDGES: tuple[tuple[int, int], ...] = ((0, 1), (1, 2), (2, 3), (0, 3))


def maxcut_graph(
    num_nodes: int,
    edges: Iterable[tuple[int, int]],
    weights: Mapping[tuple[int, int], float] | None = None,
) -> nx.Graph:
    """Build a weighted undirected graph for a MaxCut instance."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    for a, b in edges:
        a, b = int(a), int(b)
        if a == b:
            raise ValueError("MaxCut graphs must not contain self-loops")
        weight = 1.0
        if weights is not None:
            weight = float(weights.get((a, b), weights.get((b, a), 1.0)))
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        graph.add_edge(a, b, weight=weight)
    return graph


def maxcut_hamiltonian(graph: nx.Graph) -> PauliSum:
    """The diagonal MaxCut Hamiltonian ``-1/2 sum w_jk (1 - Z_j Z_k)``."""
    num_qubits = graph.number_of_nodes()
    if num_qubits < 2:
        raise ValueError("MaxCut needs at least two nodes")
    terms: list[PauliString] = []
    identity = "I" * num_qubits
    for a, b, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        label = "".join(
            "Z" if q in (a, b) else "I" for q in range(num_qubits)
        )
        terms.append(PauliString(identity, -0.5 * weight))
        terms.append(PauliString(label, 0.5 * weight))
    return PauliSum(terms).simplify()


def ring_maxcut_hamiltonian() -> PauliSum:
    """The paper's 4-node unweighted ring MaxCut Hamiltonian."""
    return maxcut_hamiltonian(maxcut_graph(4, RING_GRAPH_EDGES))


def cut_value(graph: nx.Graph, bitstring: str) -> float:
    """Cut weight of a partition encoded as a bitstring (node i -> bit i)."""
    if len(bitstring) != graph.number_of_nodes():
        raise ValueError("bitstring length does not match the number of nodes")
    total = 0.0
    for a, b, data in graph.edges(data=True):
        if bitstring[a] != bitstring[b]:
            total += float(data.get("weight", 1.0))
    return total


def best_cut(graph: nx.Graph) -> tuple[str, float]:
    """Brute-force optimal cut (feasible for the small graphs used here)."""
    n = graph.number_of_nodes()
    if n > 20:
        raise ValueError("brute-force best_cut limited to 20 nodes")
    best_bits = "0" * n
    best_value = 0.0
    for index in range(1 << n):
        bits = format(index, f"0{n}b")
        value = cut_value(graph, bits)
        if value > best_value:
            best_value = value
            best_bits = bits
    return best_bits, best_value
