"""Pauli-string algebra for observables.

VQE/QAOA objectives are Hamiltonians expressed as weighted sums of Pauli
strings (paper Eq. 1/3/7).  This module provides the two value types the rest
of the library consumes:

* :class:`PauliString` — a coefficient times a tensor product of I/X/Y/Z,
  written as a label such as ``"XXIZ"`` whose character *i* acts on qubit *i*;
* :class:`PauliSum` — a linear combination of Pauli strings with helpers for
  simplification, matrix construction (exact diagonalization of small
  problems) and expectation values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["PauliString", "PauliSum"]

_VALID = frozenset("IXYZ")

_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

#: Single-qubit Pauli multiplication table: (left, right) -> (phase, result).
_PRODUCT: dict[tuple[str, str], tuple[complex, str]] = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


@dataclass(frozen=True)
class PauliString:
    """A weighted Pauli tensor product, e.g. ``0.5 * XXIZ``."""

    label: str
    coefficient: float = 1.0

    def __post_init__(self) -> None:
        label = self.label.upper()
        if not label:
            raise ValueError("empty Pauli label")
        if set(label) - _VALID:
            raise ValueError(f"invalid Pauli label {self.label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "coefficient", float(self.coefficient))

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def support(self) -> tuple[int, ...]:
        """Qubits on which the string acts non-trivially."""
        return tuple(i for i, c in enumerate(self.label) if c != "I")

    @property
    def is_identity(self) -> bool:
        return all(c == "I" for c in self.label)

    @property
    def is_diagonal(self) -> bool:
        """True when the string contains only I and Z (measurable in Z basis)."""
        return set(self.label) <= {"I", "Z"}

    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense matrix representation (coefficient included)."""
        mat = np.array([[1.0]], dtype=complex)
        for char in self.label:
            mat = np.kron(mat, _MATRICES[char])
        return self.coefficient * mat

    def expectation_from_probabilities(self, probabilities: np.ndarray) -> float:
        """Expectation of a *diagonal* string from a Z-basis distribution.

        Raises:
            ValueError: when the string contains X or Y (use a basis-rotated
            measurement and :meth:`eigenvalue_of_bitstring` instead).
        """
        if not self.is_diagonal:
            raise ValueError(
                f"{self.label} is not diagonal; rotate to the Z basis first"
            )
        dim = 1 << self.num_qubits
        probs = np.asarray(probabilities, dtype=float)
        if probs.size != dim:
            raise ValueError("distribution size does not match the Pauli width")
        total = 0.0
        for index in range(dim):
            total += probs[index] * self._diagonal_eigenvalue(index)
        return self.coefficient * total

    def eigenvalue_of_bitstring(self, bitstring: str) -> int:
        """Eigenvalue (+1/-1) of the *measured-basis* string for a bitstring.

        The bitstring is assumed to have been measured after rotating every
        non-identity position into the Z basis, so the eigenvalue is simply
        the parity of the measured bits on the string's support.
        """
        if len(bitstring) != self.num_qubits:
            raise ValueError("bitstring width does not match the Pauli width")
        parity = 0
        for qubit in self.support:
            parity ^= int(bitstring[qubit])
        return -1 if parity else 1

    def _diagonal_eigenvalue(self, index: int) -> int:
        parity = 0
        for qubit in self.support:
            bit = (index >> (self.num_qubits - 1 - qubit)) & 1
            parity ^= bit
        return -1 if parity else 1

    # ------------------------------------------------------------------
    def commutes_qubitwise(self, other: "PauliString") -> bool:
        """True when every qubit position commutes (shared measurement basis)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compare Pauli strings of different widths")
        for a, b in zip(self.label, other.label):
            if a != "I" and b != "I" and a != b:
                return False
        return True

    def __mul__(self, other: "PauliString | float") -> "PauliString":
        if isinstance(other, (int, float)):
            return PauliString(self.label, self.coefficient * float(other))
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot multiply Pauli strings of different widths")
        phase: complex = 1.0
        chars = []
        for a, b in zip(self.label, other.label):
            p, c = _PRODUCT[(a, b)]
            phase *= p
            chars.append(c)
        coeff = self.coefficient * other.coefficient * phase
        if abs(coeff.imag) > 1e-12:
            raise ValueError("product has an imaginary coefficient; not supported here")
        return PauliString("".join(chars), float(coeff.real))

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"{self.coefficient:+g}*{self.label}"


class PauliSum:
    """A real-weighted linear combination of Pauli strings."""

    def __init__(self, terms: Iterable[PauliString]) -> None:
        terms = list(terms)
        if not terms:
            raise ValueError("a PauliSum needs at least one term")
        widths = {t.num_qubits for t in terms}
        if len(widths) != 1:
            raise ValueError("all terms must act on the same number of qubits")
        self._terms = tuple(terms)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, mapping: Mapping[str, float]) -> "PauliSum":
        """Build from ``{label: coefficient}``."""
        return cls(PauliString(label, coeff) for label, coeff in mapping.items())

    @property
    def terms(self) -> tuple[PauliString, ...]:
        return self._terms

    @property
    def num_qubits(self) -> int:
        return self._terms[0].num_qubits

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[PauliString]:
        return iter(self._terms)

    def __add__(self, other: "PauliSum") -> "PauliSum":
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot add PauliSums of different widths")
        return PauliSum(self._terms + other._terms).simplify()

    def __mul__(self, scalar: float) -> "PauliSum":
        return PauliSum(t * float(scalar) for t in self._terms)

    __rmul__ = __mul__

    def __repr__(self) -> str:
        body = " ".join(repr(t) for t in self._terms[:6])
        suffix = " ..." if len(self._terms) > 6 else ""
        return f"PauliSum({body}{suffix})"

    # ------------------------------------------------------------------
    def simplify(self, atol: float = 1e-12) -> "PauliSum":
        """Merge duplicate labels and drop negligible terms."""
        merged: dict[str, float] = {}
        for term in self._terms:
            merged[term.label] = merged.get(term.label, 0.0) + term.coefficient
        kept = [
            PauliString(label, coeff)
            for label, coeff in merged.items()
            if abs(coeff) > atol
        ]
        if not kept:
            kept = [PauliString("I" * self.num_qubits, 0.0)]
        return PauliSum(kept)

    def to_matrix(self) -> np.ndarray:
        """Dense Hamiltonian matrix (exact diagonalization of small systems)."""
        dim = 1 << self.num_qubits
        total = np.zeros((dim, dim), dtype=complex)
        for term in self._terms:
            total += term.to_matrix()
        return total

    def ground_state_energy(self) -> float:
        """Exact minimum eigenvalue (reference "ground energy" of the paper)."""
        eigenvalues = np.linalg.eigvalsh(self.to_matrix())
        return float(eigenvalues[0])

    def expectation_from_statevector(self, amplitudes: np.ndarray) -> float:
        """Exact expectation value ``<psi|H|psi>`` for an amplitude vector."""
        vec = np.asarray(amplitudes, dtype=complex).reshape(-1)
        if vec.size != (1 << self.num_qubits):
            raise ValueError("statevector size does not match the Hamiltonian width")
        value = np.vdot(vec, self.to_matrix() @ vec)
        return float(np.real(value))

    @property
    def is_diagonal(self) -> bool:
        """True when every term is I/Z only (one measurement basis suffices)."""
        return all(term.is_diagonal for term in self._terms)
