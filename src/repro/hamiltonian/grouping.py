"""Grouping Pauli terms into simultaneously-measurable sets.

Estimating ``<H>`` on hardware requires sampling each Pauli term in its own
measurement basis.  Terms that commute *qubit-wise* (on every qubit they
either agree or at least one is the identity) can share a single basis-rotated
circuit, which is how the reproduction keeps the per-evaluation circuit count
at three for the Heisenberg Hamiltonian (an X-basis, a Y-basis and a Z-basis
group) and at one for the diagonal MaxCut Hamiltonian.

This mirrors the paper's Section III-A observation that a decomposed
Hamiltonian is a linear sum of Pauli strings which can be evaluated (and
parallelized) independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from .pauli import PauliString, PauliSum

__all__ = ["MeasurementGroup", "group_qubitwise_commuting", "measurement_basis_circuit"]


@dataclass(frozen=True)
class MeasurementGroup:
    """A set of qubit-wise commuting terms and their shared measurement basis.

    Attributes:
        terms: the Pauli strings in the group.
        basis: one character per qubit, ``I`` where every term is trivial,
            otherwise the shared Pauli axis measured on that qubit.
    """

    terms: tuple[PauliString, ...]
    basis: str

    @property
    def num_qubits(self) -> int:
        return len(self.basis)

    def expectation_from_counts(self, counts) -> float:
        """Estimate the group's contribution to ``<H>`` from measured counts.

        ``counts`` is a mapping from bitstrings (measured after the basis
        rotation) to frequencies.
        """
        total_shots = sum(counts.values())
        if total_shots == 0:
            return 0.0
        value = 0.0
        for bitstring, count in counts.items():
            weight = count / total_shots
            for term in self.terms:
                value += weight * term.coefficient * term.eigenvalue_of_bitstring(bitstring)
        return value


def group_qubitwise_commuting(hamiltonian: PauliSum) -> list[MeasurementGroup]:
    """Greedy qubit-wise commuting grouping.

    Terms are placed into the first existing group whose basis is compatible;
    the group basis is widened as terms join.  The greedy order is the term
    order of the Hamiltonian, which for the Hamiltonians in this library
    (Heisenberg, MaxCut) produces the optimal grouping.
    """
    groups: list[list[PauliString]] = []
    bases: list[list[str]] = []

    for term in hamiltonian:
        placed = False
        for index, basis in enumerate(bases):
            if _compatible(term, basis):
                groups[index].append(term)
                _merge_basis(term, basis)
                placed = True
                break
        if not placed:
            basis = ["I"] * hamiltonian.num_qubits
            _merge_basis(term, basis)
            groups.append([term])
            bases.append(basis)

    return [
        MeasurementGroup(terms=tuple(terms), basis="".join(basis))
        for terms, basis in zip(groups, bases)
    ]


def measurement_basis_circuit(basis: str) -> QuantumCircuit:
    """The basis-rotation + measurement tail for one measurement group.

    ``X`` positions get a Hadamard, ``Y`` positions an S-dagger followed by a
    Hadamard, ``Z``/``I`` positions nothing; every qubit is then measured.
    Compose this after the (measurement-free) ansatz.
    """
    num_qubits = len(basis)
    tail = QuantumCircuit(num_qubits, name=f"measure_{basis}")
    for qubit, axis in enumerate(basis.upper()):
        if axis == "X":
            tail.h(qubit)
        elif axis == "Y":
            tail.sdg(qubit)
            tail.h(qubit)
        elif axis not in ("Z", "I"):
            raise ValueError(f"invalid basis character {axis!r}")
    tail.measure_all()
    return tail


def _compatible(term: PauliString, basis: list[str]) -> bool:
    for qubit, char in enumerate(term.label):
        if char == "I":
            continue
        if basis[qubit] != "I" and basis[qubit] != char:
            return False
    return True


def _merge_basis(term: PauliString, basis: list[str]) -> None:
    for qubit, char in enumerate(term.label):
        if char != "I":
            basis[qubit] = char
