"""The 4-qubit Heisenberg model on a square lattice (paper Eq. 3).

``H = J * sum_(i,j) (X_i X_j + Y_i Y_j + Z_i Z_j) + B * sum_i Z_i``

with the paper's parameters ``J = B = 1`` and the 4-node ring
``V = [1, 2, 3, 4]``, ``E = [(1,2), (2,3), (3,4), (1,4)]`` (0-indexed here).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .pauli import PauliString, PauliSum

__all__ = ["SQUARE_LATTICE_EDGES", "heisenberg_hamiltonian", "heisenberg_square_lattice"]

#: The paper's 4-node square lattice (ring), 0-indexed.
SQUARE_LATTICE_EDGES: tuple[tuple[int, int], ...] = ((0, 1), (1, 2), (2, 3), (0, 3))


def _pauli_on(num_qubits: int, assignments: dict[int, str], coefficient: float) -> PauliString:
    label = "".join(assignments.get(q, "I") for q in range(num_qubits))
    return PauliString(label, coefficient)


def heisenberg_hamiltonian(
    num_qubits: int,
    edges: Iterable[tuple[int, int]],
    coupling: float = 1.0,
    field: float = 1.0,
) -> PauliSum:
    """Heisenberg spin Hamiltonian with a longitudinal field.

    Args:
        num_qubits: number of spins.
        edges: interacting pairs (0-indexed).
        coupling: spin-spin strength ``J``.
        field: magnetic field ``B`` along Z.
    """
    terms: list[PauliString] = []
    for a, b in edges:
        a, b = int(a), int(b)
        if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise ValueError(f"invalid edge ({a}, {b}) for {num_qubits} qubits")
        for axis in "XYZ":
            terms.append(_pauli_on(num_qubits, {a: axis, b: axis}, coupling))
    for q in range(num_qubits):
        terms.append(_pauli_on(num_qubits, {q: "Z"}, field))
    return PauliSum(terms).simplify()


def heisenberg_square_lattice(coupling: float = 1.0, field: float = 1.0) -> PauliSum:
    """The paper's 4-qubit Heisenberg model (Eq. 3 with the Fig. 6 lattice)."""
    return heisenberg_hamiltonian(4, SQUARE_LATTICE_EDGES, coupling, field)
