"""Observables: Pauli algebra, model Hamiltonians, and expectation estimation."""

from .expectation import EnergyEstimator, exact_expectation, expectation_from_group_counts
from .grouping import MeasurementGroup, group_qubitwise_commuting, measurement_basis_circuit
from .heisenberg import SQUARE_LATTICE_EDGES, heisenberg_hamiltonian, heisenberg_square_lattice
from .maxcut import (
    RING_GRAPH_EDGES,
    best_cut,
    cut_value,
    maxcut_graph,
    maxcut_hamiltonian,
    ring_maxcut_hamiltonian,
)
from .pauli import PauliString, PauliSum

__all__ = [
    "PauliString",
    "PauliSum",
    "MeasurementGroup",
    "group_qubitwise_commuting",
    "measurement_basis_circuit",
    "EnergyEstimator",
    "exact_expectation",
    "expectation_from_group_counts",
    "heisenberg_hamiltonian",
    "heisenberg_square_lattice",
    "SQUARE_LATTICE_EDGES",
    "maxcut_hamiltonian",
    "ring_maxcut_hamiltonian",
    "maxcut_graph",
    "cut_value",
    "best_cut",
    "RING_GRAPH_EDGES",
]
