"""Expectation-value estimation: exact, from distributions, and from counts."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.parameters import Parameter
from ..engine import execute_program, parameter_plan, plan_slot_values
from ..engine.cache import shared_program_cache
from ..simulator.result import Counts
from ..simulator.statevector import simulate_statevector
from .grouping import MeasurementGroup, group_qubitwise_commuting, measurement_basis_circuit
from .pauli import PauliSum

__all__ = [
    "exact_expectation",
    "expectation_from_group_counts",
    "group_sign_matrix",
    "EnergyEstimator",
]


def exact_expectation(
    circuit: QuantumCircuit,
    hamiltonian: PauliSum,
    parameter_values: Mapping[Parameter, float] | None = None,
) -> float:
    """Noise-free expectation ``<psi(theta)|H|psi(theta)>`` via statevector."""
    prepared = circuit.without_measurements()
    state = simulate_statevector(prepared, parameter_values)
    return hamiltonian.expectation_from_statevector(state.data)


def expectation_from_group_counts(
    groups: Sequence[MeasurementGroup],
    counts_per_group: Sequence[Counts | Mapping[str, int]],
) -> float:
    """Combine per-group measurement counts into one energy estimate."""
    if len(groups) != len(counts_per_group):
        raise ValueError("need exactly one Counts object per measurement group")
    return float(
        sum(group.expectation_from_counts(counts) for group, counts in zip(groups, counts_per_group))
    )


def group_sign_matrix(group: MeasurementGroup) -> np.ndarray:
    """The ``(terms, 2**n)`` eigenvalue matrix of one measurement group.

    Entry ``(t, i)`` is the ±1 eigenvalue of the group's ``t``-th term
    (after its basis rotation) on basis state ``i`` — the parity of the
    measured bits on the term's support.  Against a stack of measured
    distributions ``probs`` of shape ``(points, 2**n)``, per-term
    expectations are one matrix product ``probs @ sign.T`` instead of the
    per-qubit axis-move loop of ``Statevector.expectation_pauli``.
    """
    n = group.num_qubits
    index = np.arange(1 << n)
    signs = np.empty((len(group.terms), 1 << n), dtype=float)
    for row, term in enumerate(group.terms):
        parity = np.zeros(index.shape, dtype=np.intp)
        for qubit in term.support:
            parity ^= (index >> (n - 1 - qubit)) & 1
        signs[row] = 1.0 - 2.0 * parity
    return signs


class EnergyEstimator:
    """Pairs an ansatz with a Hamiltonian and produces measurable circuits.

    The estimator is the piece both the ideal baseline and the EQC client
    node share: it knows how to split ``H`` into qubit-wise commuting
    measurement groups, how to build the basis-rotated circuit for each
    group, and how to recombine the measured counts into an energy.

    Each group's measurement circuit is also lowered once through the
    compiled execution engine, so exact energies over whole parameter sweeps
    (:meth:`exact_energies`) run with zero circuit binding: one compiled
    pass per group plus one weight-vector dot product per point.
    """

    def __init__(self, ansatz: QuantumCircuit, hamiltonian: PauliSum) -> None:
        if ansatz.num_qubits != hamiltonian.num_qubits:
            raise ValueError(
                "ansatz width does not match the Hamiltonian width "
                f"({ansatz.num_qubits} vs {hamiltonian.num_qubits})"
            )
        self.ansatz = ansatz.without_measurements()
        self.hamiltonian = hamiltonian
        self.groups: tuple[MeasurementGroup, ...] = tuple(
            group_qubitwise_commuting(hamiltonian)
        )
        self._group_tails = [measurement_basis_circuit(g.basis) for g in self.groups]
        self.parameters = self.ansatz.ordered_parameters()
        self._templates: tuple[QuantumCircuit, ...] | None = None
        self._compiled: list[tuple] | None = None

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def bindings(self, values: Sequence[float]) -> dict[Parameter, float]:
        """Map a flat parameter vector onto the ansatz parameters."""
        if len(values) != len(self.parameters):
            raise ValueError(
                f"expected {len(self.parameters)} parameter values, got {len(values)}"
            )
        return dict(zip(self.parameters, (float(v) for v in values)))

    def measurement_circuits(self, values: Sequence[float] | None = None) -> list[QuantumCircuit]:
        """One bound (or parameterized) circuit per measurement group.

        The composed ansatz+tail templates are built once and cached;
        binding produces fresh circuits off the cached templates.
        """
        templates = self.template_circuits()
        if values is None:
            return templates
        bindings = self.bindings(values)
        return [template.bind_parameters(bindings) for template in templates]

    def template_circuits(self) -> list[QuantumCircuit]:
        """The parameterized measurement circuits (one per group, cached)."""
        if self._templates is None:
            self._templates = tuple(
                self.ansatz.compose(tail) for tail in self._group_tails
            )
        return list(self._templates)

    # ------------------------------------------------------------------
    # compiled evaluation
    # ------------------------------------------------------------------
    def _compiled_groups(self) -> list[tuple]:
        """Per group: (compiled program, parameter plan, energy weights).

        The weight vector collapses the group's ``(terms, dim)`` sign matrix
        against the term coefficients, so a group's energy contribution is a
        single dot product with the measured-basis distribution.
        """
        if self._compiled is None:
            cache = shared_program_cache()
            compiled = []
            for template, group in zip(self.template_circuits(), self.groups):
                program = cache.get_or_compile(template)
                plan = parameter_plan(template, program, self.parameters)
                coefficients = np.array([t.coefficient for t in group.terms])
                weights = coefficients @ group_sign_matrix(group)
                compiled.append((program, plan, weights))
            self._compiled = compiled
        return self._compiled

    def sweep_probabilities(
        self,
        theta_matrix: np.ndarray,
        *,
        dtype=None,
        tile: int | None = None,
    ) -> list[np.ndarray]:
        """Measured distributions of every group over a parameter sweep.

        Entry ``g`` is a ``(points, 2**n)`` stack; no circuit is bound —
        the ``(points, P)`` matrix feeds the compiled programs directly.
        ``dtype``/``tile`` select the big-``n`` execution modes (complex64
        stacks come back float32).
        """
        theta = np.atleast_2d(np.asarray(theta_matrix, dtype=float))
        out = []
        for program, plan, _ in self._compiled_groups():
            states = execute_program(
                program, plan_slot_values(plan, theta), dtype=dtype, tile=tile
            )
            out.append(np.abs(states) ** 2)
        return out

    def exact_energies(
        self,
        theta_matrix: np.ndarray,
        *,
        dtype=None,
        tile: int | None = None,
    ) -> np.ndarray:
        """Noise-free energies at every row of a ``(points, P)`` matrix.

        One compiled pass per measurement group; Z-diagonalized Pauli terms
        are evaluated through precomputed sign weights instead of per-qubit
        axis moves.  Agrees with :meth:`exact_energy` to ~1e-14 (complex64
        mode to ~1e-5), and the energy accumulator stays float64 in every
        mode.
        """
        theta = np.atleast_2d(np.asarray(theta_matrix, dtype=float))
        energies = np.zeros(theta.shape[0], dtype=float)
        for program, plan, weights in self._compiled_groups():
            states = execute_program(
                program, plan_slot_values(plan, theta), dtype=dtype, tile=tile
            )
            energies += (np.abs(states) ** 2) @ weights
        return energies

    def energy_from_counts(self, counts_per_group: Sequence[Counts | Mapping[str, int]]) -> float:
        """Energy estimate from one Counts object per measurement group."""
        return expectation_from_group_counts(self.groups, counts_per_group)

    def exact_energy(self, values: Sequence[float]) -> float:
        """Noise-free energy of the ansatz at a parameter vector.

        Retained on the dense-matrix reference path so long-standing seeded
        histories (which record this value per epoch) stay bit-exact; use
        :meth:`exact_energies` for fast sweeps.
        """
        return exact_expectation(self.ansatz, self.hamiltonian, self.bindings(values))

    def ground_energy(self) -> float:
        """Exact ground-state energy of the Hamiltonian."""
        return self.hamiltonian.ground_state_energy()
