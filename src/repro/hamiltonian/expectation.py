"""Expectation-value estimation: exact, from distributions, and from counts."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.parameters import Parameter
from ..simulator.result import Counts
from ..simulator.statevector import simulate_statevector
from .grouping import MeasurementGroup, group_qubitwise_commuting, measurement_basis_circuit
from .pauli import PauliSum

__all__ = ["exact_expectation", "expectation_from_group_counts", "EnergyEstimator"]


def exact_expectation(
    circuit: QuantumCircuit,
    hamiltonian: PauliSum,
    parameter_values: Mapping[Parameter, float] | None = None,
) -> float:
    """Noise-free expectation ``<psi(theta)|H|psi(theta)>`` via statevector."""
    prepared = circuit.without_measurements()
    state = simulate_statevector(prepared, parameter_values)
    return hamiltonian.expectation_from_statevector(state.data)


def expectation_from_group_counts(
    groups: Sequence[MeasurementGroup],
    counts_per_group: Sequence[Counts | Mapping[str, int]],
) -> float:
    """Combine per-group measurement counts into one energy estimate."""
    if len(groups) != len(counts_per_group):
        raise ValueError("need exactly one Counts object per measurement group")
    return float(
        sum(group.expectation_from_counts(counts) for group, counts in zip(groups, counts_per_group))
    )


class EnergyEstimator:
    """Pairs an ansatz with a Hamiltonian and produces measurable circuits.

    The estimator is the piece both the ideal baseline and the EQC client
    node share: it knows how to split ``H`` into qubit-wise commuting
    measurement groups, how to build the basis-rotated circuit for each
    group, and how to recombine the measured counts into an energy.
    """

    def __init__(self, ansatz: QuantumCircuit, hamiltonian: PauliSum) -> None:
        if ansatz.num_qubits != hamiltonian.num_qubits:
            raise ValueError(
                "ansatz width does not match the Hamiltonian width "
                f"({ansatz.num_qubits} vs {hamiltonian.num_qubits})"
            )
        self.ansatz = ansatz.without_measurements()
        self.hamiltonian = hamiltonian
        self.groups: tuple[MeasurementGroup, ...] = tuple(
            group_qubitwise_commuting(hamiltonian)
        )
        self._group_tails = [measurement_basis_circuit(g.basis) for g in self.groups]
        self.parameters = self.ansatz.ordered_parameters()

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def bindings(self, values: Sequence[float]) -> dict[Parameter, float]:
        """Map a flat parameter vector onto the ansatz parameters."""
        if len(values) != len(self.parameters):
            raise ValueError(
                f"expected {len(self.parameters)} parameter values, got {len(values)}"
            )
        return dict(zip(self.parameters, (float(v) for v in values)))

    def measurement_circuits(self, values: Sequence[float] | None = None) -> list[QuantumCircuit]:
        """One bound (or parameterized) circuit per measurement group."""
        circuits = []
        for tail in self._group_tails:
            circuit = self.ansatz.compose(tail)
            if values is not None:
                circuit = circuit.bind_parameters(self.bindings(values))
            circuits.append(circuit)
        return circuits

    def template_circuits(self) -> list[QuantumCircuit]:
        """The parameterized measurement circuits (one per group)."""
        return self.measurement_circuits(values=None)

    def energy_from_counts(self, counts_per_group: Sequence[Counts | Mapping[str, int]]) -> float:
        """Energy estimate from one Counts object per measurement group."""
        return expectation_from_group_counts(self.groups, counts_per_group)

    def exact_energy(self, values: Sequence[float]) -> float:
        """Noise-free energy of the ansatz at a parameter vector."""
        return exact_expectation(self.ansatz, self.hamiltonian, self.bindings(values))

    def ground_energy(self) -> float:
        """Exact ground-state energy of the Hamiltonian."""
        return self.hamiltonian.ground_state_energy()
