"""Pluggable execution backends for the submit→simulate→sample path.

This package defines the :class:`ExecutionBackend` protocol and its three
engines:

* :class:`StatevectorBackend` — ideal, sequential; the bit-exact reference.
* :class:`BatchedStatevectorBackend` — ideal, vectorized: a whole batch of
  bindings of one circuit structure is simulated as a stacked
  ``(batch, 2**n)`` NumPy pass (parameter-shift sweeps become one pass
  instead of 2·P sequential simulations).
* :class:`NoisyBackend` — the analytic channel/mixing device path, adapted
  to the protocol; one per cloud device endpoint.

It also owns the shared structure-keyed :class:`TranspileCache` that the
clients of an ensemble populate cooperatively.
"""

from .base import ExecutionBackend, measured_register, normalize_batch
from .batched import (
    BatchedStatevectorBackend,
    batched_probabilities,
    simulate_statevector_batch,
    structure_signature,
)
from .cache import CacheStats, TranspileCache, template_structure_key
from .noisy import NoisyBackend
from .statevector import StatevectorBackend

__all__ = [
    "ExecutionBackend",
    "StatevectorBackend",
    "BatchedStatevectorBackend",
    "NoisyBackend",
    "TranspileCache",
    "CacheStats",
    "normalize_batch",
    "measured_register",
    "simulate_statevector_batch",
    "batched_probabilities",
    "structure_signature",
    "template_structure_key",
]
