"""Pluggable execution backends for the submit→simulate→sample path.

This package defines the :class:`ExecutionBackend` protocol and its three
engines:

* :class:`StatevectorBackend` — ideal, sequential semantics (one circuit,
  one sample draw at a time) executed through the compiled engine.
* :class:`BatchedStatevectorBackend` — ideal, vectorized: a whole batch of
  bindings of one circuit structure runs as one compiled-program pass over
  a ``(batch, 2**n)`` state stack; template sweeps (:meth:`run_sweep`)
  never bind a circuit at all.
* :class:`NoisyBackend` — the analytic channel/mixing device path, adapted
  to the protocol; one per cloud device endpoint (its ideal sub-path also
  runs compiled programs).

It also owns the shared structure-keyed caches: :class:`TranspileCache`
(templates → routed circuits) and the re-exported
:class:`~repro.engine.cache.ProgramCache` (structures → compiled gate
programs).
"""

from .base import ExecutionBackend, measured_register, normalize_batch
from .batched import (
    BatchedStatevectorBackend,
    batched_probabilities,
    simulate_statevector_batch,
    simulate_statevector_batch_v1,
    structure_signature,
    sweep_probabilities,
)
from .cache import (
    ProgramCache,
    TranspileCache,
    shared_program_cache,
    template_structure_key,
)
from .noisy import NoisyBackend
from .statevector import StatevectorBackend

__all__ = [
    "ExecutionBackend",
    "StatevectorBackend",
    "BatchedStatevectorBackend",
    "NoisyBackend",
    "TranspileCache",
    "ProgramCache",
    "shared_program_cache",
    "normalize_batch",
    "measured_register",
    "simulate_statevector_batch",
    "simulate_statevector_batch_v1",
    "sweep_probabilities",
    "batched_probabilities",
    "structure_signature",
    "template_structure_key",
]
