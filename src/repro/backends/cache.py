"""The shared, structure-keyed caches owned by the backend layer.

Every EQC client used to keep a private ``dict`` of transpiled templates.
That worked, but it re-transpiled the same ansatz for every client whose
device shares a topology, and it gave the rest of the stack (baselines,
benchmarks, experiments) no way to reuse the work.  :class:`TranspileCache`
centralizes it: entries are keyed by the *structure* of the template circuit
(gate sequence + symbolic parameter slots) and the target topology, so any
two callers transpiling the same template for the same topology share one
entry regardless of which naming scheme they use for their templates.

The compiled execution engine follows the same pattern one layer down:
:class:`~repro.engine.cache.ProgramCache` (re-exported here, with the
process-wide instance behind :func:`shared_program_cache`) keys compiled
:class:`~repro.engine.program.GateProgram` objects by
``QuantumCircuit.structure_key``, so a parameter sweep compiles its ansatz
exactly once no matter which backend, estimator, or noisy device runs it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..devices.topology import Topology
from ..engine.cache import ProgramCache, shared_program_cache
from ..transpiler.transpile import TranspileResult, transpile

__all__ = [
    "template_structure_key",
    "CacheStats",
    "TranspileCache",
    "ProgramCache",
    "shared_program_cache",
]


def template_structure_key(circuit: QuantumCircuit):
    """A hashable key capturing a template's full gate content.

    Unlike the batch engine's signature (which deliberately ignores parameter
    values so bindings can be stacked), the transpile key includes parameter
    content — symbolic parameters by name, bound angles by value — because
    transpilation output depends on nothing else about the circuit.
    """
    body = []
    for inst in circuit.instructions:
        params = tuple(
            ("sym", p.name) if hasattr(p, "name") else ("val", float(p))
            for p in inst.params
        )
        body.append((inst.name, inst.qubits, params))
    return (circuit.num_qubits, tuple(body))


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TranspileCache:
    """Structure-keyed cache of :class:`TranspileResult` objects.

    One instance is shared across every client of an ensemble (and may be
    shared wider — the key includes the topology, so mixing devices is safe).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, TranspileResult] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_transpile(
        self, template: QuantumCircuit, topology: Topology
    ) -> TranspileResult:
        """Return the cached transpilation of ``template`` for ``topology``.

        On a miss the template is transpiled and the result stored; the
        deterministic pipeline means all callers observe identical results.
        """
        key = (
            template_structure_key(template),
            topology.name,
            topology.num_qubits,
            topology.edges,
        )
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        entry = transpile(template, topology)
        self._entries[key] = entry
        return entry

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()
