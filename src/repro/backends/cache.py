"""The shared, structure-keyed caches owned by the backend layer.

Every EQC client used to keep a private ``dict`` of transpiled templates.
That worked, but it re-transpiled the same ansatz for every client whose
device shares a topology, and it gave the rest of the stack (baselines,
benchmarks, experiments) no way to reuse the work.  :class:`TranspileCache`
centralizes it: entries are keyed by the *structure* of the template circuit
(gate sequence + symbolic parameter slots) and the target topology, so any
two callers transpiling the same template for the same topology share one
entry regardless of which naming scheme they use for their templates.

The compiled execution engine follows the same pattern one layer down:
:class:`~repro.engine.cache.ProgramCache` (re-exported here, with the
process-wide instance behind :func:`shared_program_cache`) keys compiled
:class:`~repro.engine.program.GateProgram` objects by
``QuantumCircuit.structure_key``, so a parameter sweep compiles its ansatz
exactly once no matter which backend, estimator, or noisy device runs it.
"""

from __future__ import annotations

import time

from ..circuit.circuit import QuantumCircuit
from ..devices.topology import Topology
from ..engine.cache import ProgramCache, shared_program_cache
from ..telemetry import TELEMETRY as _telemetry
from ..transpiler.transpile import TranspileResult, transpile

__all__ = [
    "template_structure_key",
    "TranspileCache",
    "ProgramCache",
    "shared_program_cache",
]


def template_structure_key(circuit: QuantumCircuit):
    """A hashable key capturing a template's full gate content.

    Unlike the batch engine's signature (which deliberately ignores parameter
    values so bindings can be stacked), the transpile key includes parameter
    content — symbolic parameters by name, bound angles by value — because
    transpilation output depends on nothing else about the circuit.
    """
    body = []
    for inst in circuit.instructions:
        params = tuple(
            ("sym", p.name) if hasattr(p, "name") else ("val", float(p))
            for p in inst.params
        )
        body.append((inst.name, inst.qubits, params))
    return (circuit.num_qubits, tuple(body))


class TranspileCache:
    """Structure-keyed cache of :class:`TranspileResult` objects.

    One instance is shared across every client of an ensemble (and may be
    shared wider — the key includes the topology, so mixing devices is safe).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, TranspileResult] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get_or_transpile(
        self, template: QuantumCircuit, topology: Topology
    ) -> TranspileResult:
        """Return the cached transpilation of ``template`` for ``topology``.

        On a miss the template is transpiled and the result stored; the
        deterministic pipeline means all callers observe identical results.
        """
        key = (
            template_structure_key(template),
            topology.name,
            topology.num_qubits,
            topology.edges,
        )
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            if _telemetry.enabled:
                _telemetry.registry.counter("backends.transpile_cache.hits").inc()
            return entry
        self.misses += 1
        start = time.perf_counter() if _telemetry.enabled else 0.0
        entry = transpile(template, topology)
        self._entries[key] = entry
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("backends.transpile_cache.misses").inc()
            registry.histogram("backends.transpile_seconds").observe(
                time.perf_counter() - start
            )
            registry.gauge("backends.transpile_cache.size").set(len(self._entries))
        return entry

    def stats(self) -> dict[str, float]:
        """Hit/miss/size counters (cache effectiveness at a glance)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "hit_rate": self.hit_rate,
        }

    def publish(self, registry=None, prefix: str = "backends.transpile_cache") -> None:
        """Write the current :meth:`stats` into a metrics registry as gauges."""
        if registry is None:
            registry = _telemetry.registry
        for field, value in self.stats().items():
            registry.gauge(f"{prefix}.{field}").set(value)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        self._entries.clear()
