"""The noisy device backend: the channel/mixing execution path as a backend.

:class:`NoisyBackend` adapts one :class:`~repro.devices.qpu.QPU` to the
:class:`~repro.backends.base.ExecutionBackend` protocol.  It preserves the
analytic mixing semantics — per-circuit noise is evaluated at that circuit's
position on the device clock and samples are drawn from the device's RNG
stream in batch order, so seeded results are bit-exact with the pre-backend
execution code — while the whole batch underneath runs through the
vectorized mixing pipeline
(:func:`~repro.simulator.mixing.noisy_probabilities_batch`): one compiled
program execution per structure group over the batch's angle matrix (with
per-circuit coherent biases applied by scaling rotation slots), a broadcast
depolarizing mix, and one batched readout-confusion pass.
:meth:`NoisyBackend.run_sweep` is the sweep-aware entry: a parameter-shift
batch executes straight off its ``(points, P)`` shift matrix without binding
a single circuit.  The cloud layer owns one backend per device endpoint.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..devices.qpu import QPU, CircuitFootprint
from ..simulator.result import ExecutionResult
from .base import ParameterBinding, normalize_batch

__all__ = ["NoisyBackend"]


class NoisyBackend:
    """Execution backend running batches through one simulated QPU."""

    def __init__(self, qpu: QPU) -> None:
        self.qpu = qpu
        self.name = qpu.name

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        parameter_bindings: Sequence[ParameterBinding] | None = None,
        shots: int = 8192,
        seed: int | None = None,
        *,
        footprint: CircuitFootprint | None = None,
        now: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> list[ExecutionResult]:
        """Execute a batch with this device's current (drifting) noise.

        Args:
            circuits: a template or a sequence of circuits.
            parameter_bindings: optional bindings (see :mod:`repro.backends.base`).
            shots: measurement shots per circuit.
            seed: sampling seed for a fresh RNG (ignored when ``rng`` given;
                with neither, the device's own stream is used).
            footprint: structural cost of the transpiled form on this device;
                defaults to the logical footprint of the first circuit.
            now: simulation time the batch starts executing.
            rng: externally-owned RNG (the cloud endpoint's stream).
        """
        bound = normalize_batch(circuits, parameter_bindings)
        if footprint is None:
            footprint = CircuitFootprint.from_circuit(bound[0])
        if rng is None and seed is not None:
            rng = np.random.default_rng(seed)
        return self.qpu.execute_batch(bound, footprint, shots, now=now, rng=rng)

    def run_sweep(
        self,
        templates: Sequence[QuantumCircuit],
        theta_matrix: np.ndarray,
        shots: int = 8192,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        *,
        footprint: CircuitFootprint | None = None,
        now: float = 0.0,
    ) -> list[ExecutionResult]:
        """Execute a zero-rebind parameter sweep under the device's noise.

        The flat result order is point-major with templates inner, matching
        :func:`repro.vqa.gradient.parameter_shift_batch`, and each flat
        position occupies its own device job slot — results (counts, noise
        metadata, durations) are identical to binding the circuits and
        submitting them through :meth:`run`, but no circuit is ever built.
        """
        templates = list(templates)
        if not templates:
            raise ValueError("a sweep needs at least one template")
        if footprint is None:
            footprint = CircuitFootprint.from_circuit(templates[0])
        if rng is None and seed is not None:
            rng = np.random.default_rng(seed)
        return self.qpu.execute_sweep(
            templates, theta_matrix, footprint, shots, now=now, rng=rng
        )
