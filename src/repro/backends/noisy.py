"""The noisy device backend: the channel/mixing execution path as a backend.

:class:`NoisyBackend` adapts one :class:`~repro.devices.qpu.QPU` to the
:class:`~repro.backends.base.ExecutionBackend` protocol.  It preserves the
analytic mixing semantics — per-circuit noise is evaluated at that circuit's
position on the device clock and samples are drawn from the device's RNG
stream in batch order, so seeded results are bit-exact with the pre-backend
execution code — while the ideal sub-path underneath
(:func:`~repro.simulator.mixing.noisy_probabilities`) runs compiled gate
programs from the shared structure-keyed cache, including the coherent
over-rotation bias, which is applied by scaling rotation slots instead of
rebuilding circuits.  The cloud layer owns one per device endpoint.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..devices.qpu import QPU, CircuitFootprint
from ..simulator.result import ExecutionResult
from .base import ParameterBinding, normalize_batch

__all__ = ["NoisyBackend"]


class NoisyBackend:
    """Execution backend running batches through one simulated QPU."""

    def __init__(self, qpu: QPU) -> None:
        self.qpu = qpu
        self.name = qpu.name

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        parameter_bindings: Sequence[ParameterBinding] | None = None,
        shots: int = 8192,
        seed: int | None = None,
        *,
        footprint: CircuitFootprint | None = None,
        now: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> list[ExecutionResult]:
        """Execute a batch with this device's current (drifting) noise.

        Args:
            circuits: a template or a sequence of circuits.
            parameter_bindings: optional bindings (see :mod:`repro.backends.base`).
            shots: measurement shots per circuit.
            seed: sampling seed for a fresh RNG (ignored when ``rng`` given;
                with neither, the device's own stream is used).
            footprint: structural cost of the transpiled form on this device;
                defaults to the logical footprint of the first circuit.
            now: simulation time the batch starts executing.
            rng: externally-owned RNG (the cloud endpoint's stream).
        """
        bound = normalize_batch(circuits, parameter_bindings)
        if footprint is None:
            footprint = CircuitFootprint.from_circuit(bound[0])
        if rng is None and seed is not None:
            rng = np.random.default_rng(seed)
        return self.qpu.execute_batch(bound, footprint, shots, now=now, rng=rng)
