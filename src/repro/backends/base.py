"""The :class:`ExecutionBackend` protocol and batch normalization helpers.

Every execution engine in the library — the ideal statevector simulator, the
vectorized batch engine, and the noisy device path — implements one uniform
entry point::

    backend.run(circuits, parameter_bindings, shots, seed) -> list[ExecutionResult]

``circuits`` may be a single circuit or a sequence; ``parameter_bindings``
lets callers ship one *template* circuit together with many parameter
bindings (the parameter-shift pattern: 2·P structurally identical circuits
that differ only in bound values), which is what the batched engine exploits.

Binding semantics
-----------------
* ``parameter_bindings is None`` — every circuit must already be bound.
* one circuit, N bindings — the template is broadcast across the bindings
  (N executions).
* N circuits, N bindings — bound pairwise.

Each binding is either a ``Mapping[Parameter, float]`` or a flat sequence of
floats assigned in first-appearance order (``assign_by_order``).
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, runtime_checkable

from ..circuit.circuit import QuantumCircuit
from ..simulator.result import ExecutionResult

__all__ = ["ExecutionBackend", "ParameterBinding", "normalize_batch", "measured_register"]

#: One set of parameter values for a circuit template.
ParameterBinding = Mapping | Sequence


@runtime_checkable
class ExecutionBackend(Protocol):
    """Uniform execution interface over ideal, batched, and noisy engines.

    Implementations may accept additional keyword-only context (a device
    footprint, a simulation timestamp, an externally-owned RNG), but every
    backend understands the four core arguments.
    """

    name: str

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        parameter_bindings: Sequence[ParameterBinding] | None = None,
        shots: int = 8192,
        seed: int | None = None,
        **context,
    ) -> list[ExecutionResult]:
        """Execute a batch of circuits and return one result per circuit."""
        ...


def _bind(template: QuantumCircuit, binding: ParameterBinding) -> QuantumCircuit:
    """Bind one template with either a mapping or an ordered value vector."""
    if isinstance(binding, Mapping):
        return template.bind_parameters(binding)
    return template.assign_by_order([float(v) for v in binding])


def normalize_batch(
    circuits: QuantumCircuit | Sequence[QuantumCircuit],
    parameter_bindings: Sequence[ParameterBinding] | None = None,
) -> list[QuantumCircuit]:
    """Resolve the (circuits, bindings) calling conventions into bound circuits.

    Raises:
        ValueError: on an empty batch, a circuits/bindings length mismatch, or
            circuits left with unbound parameters.
    """
    if isinstance(circuits, QuantumCircuit):
        circuits = [circuits]
    else:
        circuits = list(circuits)
    if not circuits:
        raise ValueError("a backend batch needs at least one circuit")

    if parameter_bindings is None:
        bound = circuits
    else:
        bindings = list(parameter_bindings)
        if not bindings:
            raise ValueError("parameter_bindings must not be empty when given")
        if len(circuits) == 1 and len(bindings) != 1:
            bound = [_bind(circuits[0], b) for b in bindings]
        elif len(circuits) == len(bindings):
            bound = [_bind(c, b) for c, b in zip(circuits, bindings)]
        else:
            raise ValueError(
                f"cannot align {len(circuits)} circuits with "
                f"{len(bindings)} parameter bindings"
            )

    for circuit in bound:
        if not circuit.is_bound:
            missing = ", ".join(sorted(p.name for p in circuit.parameters))
            raise ValueError(f"unbound parameters remain after binding: {missing}")
    return bound


def measured_register(circuit: QuantumCircuit) -> tuple[int, ...]:
    """The qubits a backend samples: explicit measurements, else all qubits."""
    return circuit.measured_qubits or tuple(range(circuit.num_qubits))
