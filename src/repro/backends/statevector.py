"""The sequential ideal backend: one looped statevector pass per circuit.

This is the retained reference implementation of :class:`ExecutionBackend`
semantics — it performs exactly the operations the library has always used
(:func:`~repro.simulator.statevector.simulate_statevector` followed by
multinomial sampling), circuit by circuit, so seeded results are bit-exact
with the pre-backend code paths.  The batched engine is validated against it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..simulator.result import ExecutionResult
from ..simulator.sampler import sample_distribution
from ..simulator.statevector import simulate_statevector
from .base import ParameterBinding, measured_register, normalize_batch

__all__ = ["StatevectorBackend"]


class StatevectorBackend:
    """Ideal (noise-free) backend executing each circuit sequentially."""

    def __init__(self, name: str = "statevector") -> None:
        self.name = name

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        parameter_bindings: Sequence[ParameterBinding] | None = None,
        shots: int = 8192,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        **_context,
    ) -> list[ExecutionResult]:
        """Simulate and sample every circuit in input order.

        Device context (``footprint``, ``now``) is accepted and ignored so an
        ideal backend can serve a cloud endpoint directly.

        Args:
            circuits: a template or a sequence of circuits.
            parameter_bindings: optional bindings (see :mod:`repro.backends.base`).
            shots: measurement shots per circuit.
            seed: sampling seed (ignored when ``rng`` is given).
            rng: externally-owned RNG; takes precedence over ``seed``.
        """
        bound = normalize_batch(circuits, parameter_bindings)
        rng = rng if rng is not None else np.random.default_rng(seed)
        results: list[ExecutionResult] = []
        for circuit in bound:
            measured = measured_register(circuit)
            state = simulate_statevector(circuit)
            probs = state.probabilities(list(measured))
            counts = sample_distribution(probs, shots, rng, num_bits=len(measured))
            results.append(
                ExecutionResult(counts=counts, shots=shots, backend_name=self.name)
            )
        return results

    def probabilities(self, circuits: Sequence[QuantumCircuit]) -> list[np.ndarray]:
        """Exact measured-register distributions, one looped pass per circuit."""
        out = []
        for circuit in circuits:
            state = simulate_statevector(circuit)
            out.append(state.probabilities(list(measured_register(circuit))))
        return out
