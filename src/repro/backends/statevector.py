"""The sequential ideal backend, now running compiled gate programs.

This backend retains the *semantics* of the historical per-circuit path —
circuits simulate and sample one at a time, in input order, off a single RNG
stream — but each circuit executes through the compiled engine
(:mod:`repro.engine`) as a batch of one, so repeated structures (every
parameter-shift sweep) compile once and skip the per-gate Python overhead.
The looped :func:`~repro.simulator.statevector.simulate_statevector` remains
the bit-level reference implementation the engine is validated against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..engine import execute_program, marginal_probabilities, slot_values_from_circuits
from ..engine.cache import ProgramCache, shared_program_cache
from ..simulator.result import ExecutionResult
from ..simulator.sampler import sample_distribution
from .base import ParameterBinding, measured_register, normalize_batch
from .batched import sampled_sweep_results

__all__ = ["StatevectorBackend"]


class StatevectorBackend:
    """Ideal (noise-free) backend executing each circuit sequentially."""

    def __init__(
        self,
        name: str = "statevector",
        program_cache: ProgramCache | None = None,
    ) -> None:
        self.name = name
        self.program_cache = (
            program_cache if program_cache is not None else shared_program_cache()
        )

    def _circuit_probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        program = self.program_cache.get_or_compile(circuit)
        thetas = slot_values_from_circuits(program, [circuit])
        states = execute_program(program, thetas)
        measured = measured_register(circuit)
        return marginal_probabilities(states, measured, circuit.num_qubits)[0]

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        parameter_bindings: Sequence[ParameterBinding] | None = None,
        shots: int = 8192,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        **_context,
    ) -> list[ExecutionResult]:
        """Simulate and sample every circuit in input order.

        Device context (``footprint``, ``now``) is accepted and ignored so an
        ideal backend can serve a cloud endpoint directly.

        Args:
            circuits: a template or a sequence of circuits.
            parameter_bindings: optional bindings (see :mod:`repro.backends.base`).
            shots: measurement shots per circuit.
            seed: sampling seed (ignored when ``rng`` is given).
            rng: externally-owned RNG; takes precedence over ``seed``.
        """
        bound = normalize_batch(circuits, parameter_bindings)
        rng = rng if rng is not None else np.random.default_rng(seed)
        results: list[ExecutionResult] = []
        for circuit in bound:
            measured = measured_register(circuit)
            probs = self._circuit_probabilities(circuit)
            counts = sample_distribution(probs, shots, rng, num_bits=len(measured))
            results.append(
                ExecutionResult(counts=counts, shots=shots, backend_name=self.name)
            )
        return results

    def run_sweep(
        self,
        templates: Sequence[QuantumCircuit],
        theta_matrix: np.ndarray,
        shots: int = 8192,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[ExecutionResult]:
        """Execute a zero-rebind parameter sweep (see the batched backend).

        Sampling stays strictly sequential in point-major order, so the RNG
        stream is consumed exactly as if each bound circuit had been
        submitted through :meth:`run` one by one.
        """
        return sampled_sweep_results(
            self.name,
            templates,
            theta_matrix,
            shots,
            seed,
            rng,
            program_cache=self.program_cache,
        )

    def probabilities(self, circuits: Sequence[QuantumCircuit]) -> list[np.ndarray]:
        """Exact measured-register distributions, one circuit at a time."""
        return [self._circuit_probabilities(circuit) for circuit in circuits]
