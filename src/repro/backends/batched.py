"""The vectorized batch statevector engine, v2: compiled gate programs.

A parameter-shift sweep submits 2·P circuits that share one gate structure
and differ only in bound rotation angles.  The v1 engine (retained below as
:func:`simulate_statevector_batch_v1` — the benchmark baseline) stacked the
batch into one ``(batch, 2**n)`` array but still re-walked the instruction
list per gate, rebuilt rotation matrices ad hoc, and paid two full-state
copies per gate.  The v2 path lowers the structure once through
:mod:`repro.engine` — adjacent-gate fusion, diagonal phase fast paths,
ping-pong state buffers — and executes the whole batch as pure array math;
for template+bindings submissions (and :meth:`run_sweep`) no per-point
``QuantumCircuit`` binding happens at all.

Gate semantics are identical to
:class:`~repro.simulator.statevector.Statevector` (same bit ordering, same
tensor contraction), so batched probabilities agree with the looped
reference to floating-point accumulation error (~1e-15; the equivalence
suite asserts ≤1e-10).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import GATE_SPECS, gate_matrix
from ..engine import (
    execute_program,
    marginal_probabilities,
    plan_slot_values,
    shared_program_cache,
    slot_values_from_circuits,
)
from ..engine.cache import ProgramCache
from ..simulator.result import ExecutionResult
from ..simulator.sampler import sample_distribution
from .base import ParameterBinding, measured_register, normalize_batch

__all__ = [
    "structure_signature",
    "simulate_statevector_batch",
    "simulate_statevector_batch_v1",
    "batched_probabilities",
    "sweep_probabilities",
    "sampled_sweep_results",
    "BatchedStatevectorBackend",
]


def structure_signature(circuit: QuantumCircuit):
    """A hashable key identifying a circuit's gate *structure*.

    Two circuits share a signature exactly when they apply the same gate
    names to the same qubits in the same order (parameter values excluded),
    which is the condition for simulating them as one stacked batch.  The
    key is computed (and cached) by the circuit itself.
    """
    return circuit.structure_key


def simulate_statevector_batch(
    circuits: Sequence[QuantumCircuit],
    *,
    program_cache: ProgramCache | None = None,
    dtype=None,
    tile: int | None = None,
) -> np.ndarray:
    """Simulate a batch of structurally identical bound circuits at once.

    The shared structure is compiled once (cached across calls by the
    structure-keyed program cache) and executed over the angle matrix read
    straight off the bound instruction records.

    Args:
        circuits: bound circuits sharing one :func:`structure_signature`.
        program_cache: compilation cache (default: the process-wide one).
        dtype: execution precision (``complex64`` opt-in; default complex128).
        tile: optional row-chunk size for memory-bounded execution (see
            :func:`repro.engine.execute_program`).

    Returns:
        A ``(batch, 2**n)`` complex array; row ``i`` is the final statevector
        of ``circuits[i]``.

    Raises:
        ValueError: on an empty batch, unbound circuits, or mixed structures.
    """
    circuits = list(circuits)
    if not circuits:
        raise ValueError("batch simulation needs at least one circuit")
    signature = structure_signature(circuits[0])
    for circuit in circuits[1:]:
        if structure_signature(circuit) != signature:
            raise ValueError(
                "all circuits in one batch must share the same gate structure; "
                "use BatchedStatevectorBackend.run, which partitions mixed batches"
            )
    for circuit in circuits:
        if not circuit.is_bound:
            raise ValueError("batch simulation requires fully bound circuits")

    cache = program_cache if program_cache is not None else shared_program_cache()
    program = cache.get_or_compile(circuits[0])
    thetas = slot_values_from_circuits(program, circuits)
    return execute_program(program, thetas, dtype=dtype, tile=tile)


def sweep_probabilities(
    templates: Sequence[QuantumCircuit],
    theta_matrix: np.ndarray,
    *,
    program_cache: ProgramCache | None = None,
    dtype=None,
    tile: int | None = None,
) -> list[np.ndarray]:
    """Measured-register distributions of a zero-rebind parameter sweep.

    Each template is compiled once and executed over the whole ``(points, P)``
    parameter matrix; entry ``g`` of the result is the ``(points, 2**m)``
    distribution stack of template ``g``.  No circuit is ever bound.
    ``dtype``/``tile`` select the big-``n`` execution modes (complex64
    distributions come back float32).
    """
    cache = program_cache if program_cache is not None else shared_program_cache()
    theta = np.atleast_2d(np.asarray(theta_matrix, dtype=float))
    out: list[np.ndarray] = []
    for template in templates:
        program = cache.get_or_compile(template)
        plan = cache.plan_for(template, program)
        states = execute_program(
            program, plan_slot_values(plan, theta), dtype=dtype, tile=tile
        )
        measured = measured_register(template)
        out.append(marginal_probabilities(states, measured, template.num_qubits))
    return out


def sampled_sweep_results(
    backend_name: str,
    templates: Sequence[QuantumCircuit],
    theta_matrix: np.ndarray,
    shots: int,
    seed: int | None,
    rng: np.random.Generator | None,
    *,
    program_cache: ProgramCache | None = None,
    dtype=None,
    tile: int | None = None,
) -> list[ExecutionResult]:
    """Sample a zero-rebind sweep in point-major, templates-inner order.

    This is the single implementation behind every backend's ``run_sweep``:
    the flat sampling order matches
    :func:`repro.vqa.gradient.parameter_shift_batch`, so one seeded RNG
    stream is consumed exactly as if the bound circuits had been submitted
    through ``run`` — the ordering contract seeded histories depend on.
    """
    templates = list(templates)
    theta = np.atleast_2d(np.asarray(theta_matrix, dtype=float))
    probabilities = sweep_probabilities(
        templates, theta, program_cache=program_cache, dtype=dtype, tile=tile
    )
    widths = [len(measured_register(t)) for t in templates]
    rng = rng if rng is not None else np.random.default_rng(seed)
    results: list[ExecutionResult] = []
    for point in range(theta.shape[0]):
        for probs, num_bits in zip(probabilities, widths):
            counts = sample_distribution(probs[point], shots, rng, num_bits=num_bits)
            results.append(
                ExecutionResult(
                    counts=counts,
                    shots=shots,
                    backend_name=backend_name,
                    metadata={
                        "sweep_points": int(theta.shape[0]),
                        "sweep_templates": len(templates),
                    },
                )
            )
    return results


# ---------------------------------------------------------------------------
# v1 engine — the PR-1 stacked-matmul path, retained as the benchmark
# baseline the compiled engine is measured against.
# ---------------------------------------------------------------------------


def _batched_rotation_matrices(name: str, thetas: np.ndarray) -> np.ndarray:
    """Stacked ``(batch, dim, dim)`` unitaries for one rotation gate (v1)."""
    half = 0.5 * thetas
    if name == "rx":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -1j * s
        mats[:, 1, 0] = -1j * s
        mats[:, 1, 1] = c
        return mats
    if name == "ry":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -s
        mats[:, 1, 0] = s
        mats[:, 1, 1] = c
        return mats
    if name == "rz":
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = np.exp(-1j * half)
        mats[:, 1, 1] = np.exp(1j * half)
        return mats
    if name == "rzz":
        phase = np.exp(-1j * half)
        conj = np.exp(1j * half)
        mats = np.zeros((thetas.size, 4, 4), dtype=complex)
        mats[:, 0, 0] = phase
        mats[:, 1, 1] = conj
        mats[:, 2, 2] = conj
        mats[:, 3, 3] = phase
        return mats
    raise ValueError(f"no batched matrix rule for gate {name!r}")


def _apply_batched(
    states: np.ndarray,
    matrices: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply one gate to every state in a ``(batch, 2**n)`` stack (v1).

    ``matrices`` is either a single ``(2**k, 2**k)`` unitary (broadcast over
    the batch) or a stacked ``(batch, 2**k, 2**k)`` array.
    """
    batch = states.shape[0]
    k = len(qubits)
    tensor = states.reshape([batch] + [2] * num_qubits)
    src = [q + 1 for q in qubits]
    dest = list(range(1, k + 1))
    tensor = np.moveaxis(tensor, src, dest)
    tensor = tensor.reshape(batch, 1 << k, -1)
    tensor = matrices @ tensor
    tensor = tensor.reshape([batch] + [2] * num_qubits)
    tensor = np.moveaxis(tensor, dest, src)
    return np.ascontiguousarray(tensor.reshape(batch, -1))


def simulate_statevector_batch_v1(circuits: Sequence[QuantumCircuit]) -> np.ndarray:
    """The PR-1 stacked-matmul batch engine (benchmark baseline).

    One broadcast/stacked matmul per gate, with a ``moveaxis`` pair and a
    contiguous copy per application — the costs the compiled engine removes.
    Accepts exactly what :func:`simulate_statevector_batch` accepts (one
    shared structure, fully bound).
    """
    circuits = list(circuits)
    if not circuits:
        raise ValueError("batch simulation needs at least one circuit")
    signature = structure_signature(circuits[0])
    for circuit in circuits[1:]:
        if structure_signature(circuit) != signature:
            raise ValueError(
                "all circuits in one batch must share the same gate structure; "
                "use BatchedStatevectorBackend.run, which partitions mixed batches"
            )
    for circuit in circuits:
        if not circuit.is_bound:
            raise ValueError("batch simulation requires fully bound circuits")
    n = circuits[0].num_qubits
    batch = len(circuits)
    states = np.zeros((batch, 1 << n), dtype=complex)
    states[:, 0] = 1.0

    # Instruction tuples are cached on the circuits themselves now; the
    # snapshot just keeps the per-gate indexing loop tight.
    instruction_lists = [c.instructions for c in circuits]
    reference = instruction_lists[0]
    for position, inst in enumerate(reference):
        if not inst.is_unitary:
            continue
        spec = GATE_SPECS[inst.name]
        if spec.num_params == 0:
            states = _apply_batched(states, gate_matrix(inst.name), inst.qubits, n)
            continue
        thetas = np.fromiter(
            (float(insts[position].params[0]) for insts in instruction_lists),
            dtype=float,
            count=batch,
        )
        if np.all(thetas == thetas[0]):
            matrix = gate_matrix(inst.name, (thetas[0],))
            states = _apply_batched(states, matrix, inst.qubits, n)
        else:
            matrices = _batched_rotation_matrices(inst.name, thetas)
            states = _apply_batched(states, matrices, inst.qubits, n)
    return states


def batched_probabilities(
    states: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Measurement probabilities over ``qubits`` for every state in a stack.

    Returns a ``(batch, 2**len(qubits))`` array matching
    :meth:`Statevector.probabilities` row by row.
    """
    return marginal_probabilities(states, qubits, num_qubits)


class BatchedStatevectorBackend:
    """Ideal execution backend running compiled programs over batches.

    ``run`` partitions an arbitrary batch by :func:`structure_signature`,
    executes each partition through one compiled-program pass, and samples
    the per-circuit counts in input order so a single seeded RNG stream is
    consumed identically to a sequential backend.  A single template with
    ordered parameter bindings — the parameter-shift shape — skips circuit
    binding entirely.
    """

    def __init__(
        self,
        name: str = "batched_statevector",
        program_cache: ProgramCache | None = None,
        *,
        dtype=None,
        tile: int | None = None,
    ) -> None:
        self.name = name
        self.program_cache = (
            program_cache if program_cache is not None else shared_program_cache()
        )
        #: Execution mode for every pass this backend runs (see
        #: :func:`repro.engine.execute_program`); the defaults keep the
        #: bit-exact complex128 untiled path.
        self.dtype = dtype
        self.tile = tile

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        parameter_bindings: Sequence[ParameterBinding] | None = None,
        shots: int = 8192,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        **_context,
    ) -> list[ExecutionResult]:
        """Execute a batch ideally; one compiled pass per structure group.

        Device context (``footprint``, ``now``) is accepted and ignored so the
        batched engine can serve a cloud endpoint directly.

        Args:
            circuits: a template or a sequence of circuits.
            parameter_bindings: optional bindings (see :mod:`repro.backends.base`).
            shots: measurement shots per circuit.
            seed: sampling seed (ignored when ``rng`` is given).
            rng: externally-owned RNG; takes precedence over ``seed``.
        """
        if (
            isinstance(circuits, QuantumCircuit)
            and parameter_bindings is not None
            and len(parameter_bindings) > 1
            and all(
                not hasattr(binding, "keys") for binding in parameter_bindings
            )
        ):
            # Zero-rebind fast path: one template + ordered value vectors.
            theta = np.asarray(
                [[float(v) for v in binding] for binding in parameter_bindings],
                dtype=float,
            )
            probabilities = sweep_probabilities(
                [circuits],
                theta,
                program_cache=self.program_cache,
                dtype=self.dtype,
                tile=self.tile,
            )[0]
            rng = rng if rng is not None else np.random.default_rng(seed)
            num_bits = len(measured_register(circuits))
            return [
                ExecutionResult(
                    counts=sample_distribution(row, shots, rng, num_bits=num_bits),
                    shots=shots,
                    backend_name=self.name,
                    metadata={"batch_size": theta.shape[0], "structure_groups": 1},
                )
                for row in probabilities
            ]

        bound = normalize_batch(circuits, parameter_bindings)
        partitions = self._partition(bound)
        probabilities = self._partition_probabilities(bound, partitions)
        rng = rng if rng is not None else np.random.default_rng(seed)
        results: list[ExecutionResult] = []
        groups = len(partitions)
        for circuit, probs in zip(bound, probabilities):
            counts = sample_distribution(
                probs, shots, rng, num_bits=len(measured_register(circuit))
            )
            results.append(
                ExecutionResult(
                    counts=counts,
                    shots=shots,
                    backend_name=self.name,
                    metadata={"batch_size": len(bound), "structure_groups": groups},
                )
            )
        return results

    def run_sweep(
        self,
        templates: Sequence[QuantumCircuit],
        theta_matrix: np.ndarray,
        shots: int = 8192,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[ExecutionResult]:
        """Execute a zero-rebind parameter sweep over template circuits.

        The result order is point-major with templates inner —
        ``[point0 × templates..., point1 × templates..., ...]`` — matching
        the flat circuit order of :func:`repro.vqa.gradient.parameter_shift_batch`,
        so a single seeded RNG stream is consumed identically to submitting
        the bound circuits through :meth:`run`.
        """
        return sampled_sweep_results(
            self.name,
            templates,
            theta_matrix,
            shots,
            seed,
            rng,
            program_cache=self.program_cache,
            dtype=self.dtype,
            tile=self.tile,
        )

    def probabilities(self, circuits: Sequence[QuantumCircuit]) -> list[np.ndarray]:
        """Exact measured-register distributions for a batch, in input order."""
        circuits = list(circuits)
        return self._partition_probabilities(circuits, self._partition(circuits))

    @staticmethod
    def _partition(circuits: Sequence[QuantumCircuit]) -> dict[object, list[int]]:
        """Group batch indices by structure signature (one pass)."""
        partitions: dict[object, list[int]] = {}
        for index, circuit in enumerate(circuits):
            partitions.setdefault(structure_signature(circuit), []).append(index)
        return partitions

    def _partition_probabilities(
        self, circuits: Sequence[QuantumCircuit], partitions: dict[object, list[int]]
    ) -> list[np.ndarray]:
        out: list[np.ndarray | None] = [None] * len(circuits)
        for indices in partitions.values():
            members = [circuits[i] for i in indices]
            states = simulate_statevector_batch(
                members,
                program_cache=self.program_cache,
                dtype=self.dtype,
                tile=self.tile,
            )
            measured = measured_register(members[0])
            probs = marginal_probabilities(states, measured, members[0].num_qubits)
            for row, index in enumerate(indices):
                out[index] = probs[row]
        return out  # type: ignore[return-value]
