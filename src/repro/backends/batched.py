"""The vectorized batch statevector engine.

A parameter-shift sweep submits 2·P circuits that share one gate structure
and differ only in bound rotation angles.  The sequential path re-simulates
each one from scratch — 2·P passes over the gate list, each paying the full
Python-level overhead of reshapes and axis moves per gate.  This engine
instead stacks the whole batch into one ``(batch, 2**n)`` complex array and
applies every gate across the batch at once:

* fixed gates (H, CX, ...) and rotations whose angle is shared by the whole
  batch are one broadcast matmul ``(2**k, 2**k) @ (batch, 2**k, rest)``,
* rotations whose angles differ across the batch build a stacked
  ``(batch, 2**k, 2**k)`` matrix array analytically (no per-element Python
  loop) and apply it with one batched matmul.

Gate semantics are identical to :class:`~repro.simulator.statevector.Statevector`
(same bit ordering, same tensor reshaping), so batched probabilities agree
with the looped reference to floating-point accumulation error (~1e-15; the
equivalence suite asserts ≤1e-10).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import GATE_SPECS, gate_matrix
from ..simulator.result import ExecutionResult
from ..simulator.sampler import sample_distribution
from .base import ParameterBinding, measured_register, normalize_batch

__all__ = [
    "structure_signature",
    "simulate_statevector_batch",
    "batched_probabilities",
    "BatchedStatevectorBackend",
]


def structure_signature(circuit: QuantumCircuit):
    """A hashable key identifying a circuit's gate *structure*.

    Two circuits share a signature exactly when they apply the same gate
    names to the same qubits in the same order (parameter values excluded),
    which is the condition for simulating them as one stacked batch.
    """
    return (
        circuit.num_qubits,
        tuple((inst.name, inst.qubits) for inst in circuit.instructions),
    )


def _batched_rotation_matrices(name: str, thetas: np.ndarray) -> np.ndarray:
    """Stacked ``(batch, dim, dim)`` unitaries for one rotation gate."""
    half = 0.5 * thetas
    if name == "rx":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -1j * s
        mats[:, 1, 0] = -1j * s
        mats[:, 1, 1] = c
        return mats
    if name == "ry":
        c, s = np.cos(half), np.sin(half)
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = c
        mats[:, 0, 1] = -s
        mats[:, 1, 0] = s
        mats[:, 1, 1] = c
        return mats
    if name == "rz":
        mats = np.zeros((thetas.size, 2, 2), dtype=complex)
        mats[:, 0, 0] = np.exp(-1j * half)
        mats[:, 1, 1] = np.exp(1j * half)
        return mats
    if name == "rzz":
        phase = np.exp(-1j * half)
        conj = np.exp(1j * half)
        mats = np.zeros((thetas.size, 4, 4), dtype=complex)
        mats[:, 0, 0] = phase
        mats[:, 1, 1] = conj
        mats[:, 2, 2] = conj
        mats[:, 3, 3] = phase
        return mats
    raise ValueError(f"no batched matrix rule for gate {name!r}")


def _apply_batched(
    states: np.ndarray,
    matrices: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply one gate to every state in a ``(batch, 2**n)`` stack.

    ``matrices`` is either a single ``(2**k, 2**k)`` unitary (broadcast over
    the batch) or a stacked ``(batch, 2**k, 2**k)`` array.
    """
    batch = states.shape[0]
    k = len(qubits)
    tensor = states.reshape([batch] + [2] * num_qubits)
    src = [q + 1 for q in qubits]
    dest = list(range(1, k + 1))
    tensor = np.moveaxis(tensor, src, dest)
    tensor = tensor.reshape(batch, 1 << k, -1)
    tensor = matrices @ tensor
    tensor = tensor.reshape([batch] + [2] * num_qubits)
    tensor = np.moveaxis(tensor, dest, src)
    return np.ascontiguousarray(tensor.reshape(batch, -1))


def simulate_statevector_batch(circuits: Sequence[QuantumCircuit]) -> np.ndarray:
    """Simulate a batch of structurally identical bound circuits at once.

    Args:
        circuits: bound circuits sharing one :func:`structure_signature`.

    Returns:
        A ``(batch, 2**n)`` complex array; row ``i`` is the final statevector
        of ``circuits[i]``.

    Raises:
        ValueError: on an empty batch, unbound circuits, or mixed structures.
    """
    circuits = list(circuits)
    if not circuits:
        raise ValueError("batch simulation needs at least one circuit")
    signature = structure_signature(circuits[0])
    for circuit in circuits[1:]:
        if structure_signature(circuit) != signature:
            raise ValueError(
                "all circuits in one batch must share the same gate structure; "
                "use BatchedStatevectorBackend.run, which partitions mixed batches"
            )
    for circuit in circuits:
        if not circuit.is_bound:
            raise ValueError("batch simulation requires fully bound circuits")

    n = circuits[0].num_qubits
    batch = len(circuits)
    states = np.zeros((batch, 1 << n), dtype=complex)
    states[:, 0] = 1.0

    # QuantumCircuit.instructions rebuilds a tuple per access; snapshot once.
    instruction_lists = [c.instructions for c in circuits]
    reference = instruction_lists[0]
    for position, inst in enumerate(reference):
        if not inst.is_unitary:
            continue
        spec = GATE_SPECS[inst.name]
        if spec.num_params == 0:
            states = _apply_batched(states, gate_matrix(inst.name), inst.qubits, n)
            continue
        thetas = np.fromiter(
            (float(insts[position].params[0]) for insts in instruction_lists),
            dtype=float,
            count=batch,
        )
        if np.all(thetas == thetas[0]):
            matrix = gate_matrix(inst.name, (thetas[0],))
            states = _apply_batched(states, matrix, inst.qubits, n)
        else:
            matrices = _batched_rotation_matrices(inst.name, thetas)
            states = _apply_batched(states, matrices, inst.qubits, n)
    return states


def batched_probabilities(
    states: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Measurement probabilities over ``qubits`` for every state in a stack.

    Returns a ``(batch, 2**len(qubits))`` array matching
    :meth:`Statevector.probabilities` row by row.
    """
    full = np.abs(states) ** 2
    qubits = list(qubits)
    if tuple(qubits) == tuple(range(num_qubits)):
        return full
    batch = states.shape[0]
    tensor = full.reshape([batch] + [2] * num_qubits)
    keep = set(qubits)
    trace_axes = tuple(ax + 1 for ax in range(num_qubits) if ax not in keep)
    marg = tensor.sum(axis=trace_axes) if trace_axes else tensor
    current = sorted(qubits)
    perm = [0] + [current.index(q) + 1 for q in qubits]
    marg = np.transpose(marg, perm)
    return marg.reshape(batch, -1)


class BatchedStatevectorBackend:
    """Ideal execution backend that vectorizes over structure-shared batches.

    ``run`` partitions an arbitrary batch by :func:`structure_signature`,
    simulates each partition through one stacked NumPy pass, and samples the
    per-circuit counts in input order so a single seeded RNG stream is
    consumed identically to a sequential backend.
    """

    def __init__(self, name: str = "batched_statevector") -> None:
        self.name = name

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        parameter_bindings: Sequence[ParameterBinding] | None = None,
        shots: int = 8192,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        **_context,
    ) -> list[ExecutionResult]:
        """Execute a batch ideally; one vectorized pass per structure group.

        Device context (``footprint``, ``now``) is accepted and ignored so the
        batched engine can serve a cloud endpoint directly.

        Args:
            circuits: a template or a sequence of circuits.
            parameter_bindings: optional bindings (see :mod:`repro.backends.base`).
            shots: measurement shots per circuit.
            seed: sampling seed (ignored when ``rng`` is given).
            rng: externally-owned RNG; takes precedence over ``seed``.
        """
        bound = normalize_batch(circuits, parameter_bindings)
        partitions = self._partition(bound)
        probabilities = self._partition_probabilities(bound, partitions)
        rng = rng if rng is not None else np.random.default_rng(seed)
        results: list[ExecutionResult] = []
        groups = len(partitions)
        for circuit, probs in zip(bound, probabilities):
            counts = sample_distribution(
                probs, shots, rng, num_bits=len(measured_register(circuit))
            )
            results.append(
                ExecutionResult(
                    counts=counts,
                    shots=shots,
                    backend_name=self.name,
                    metadata={"batch_size": len(bound), "structure_groups": groups},
                )
            )
        return results

    def probabilities(self, circuits: Sequence[QuantumCircuit]) -> list[np.ndarray]:
        """Exact measured-register distributions for a batch, in input order."""
        circuits = list(circuits)
        return self._partition_probabilities(circuits, self._partition(circuits))

    @staticmethod
    def _partition(circuits: Sequence[QuantumCircuit]) -> dict[object, list[int]]:
        """Group batch indices by structure signature (one pass)."""
        partitions: dict[object, list[int]] = {}
        for index, circuit in enumerate(circuits):
            partitions.setdefault(structure_signature(circuit), []).append(index)
        return partitions

    @staticmethod
    def _partition_probabilities(
        circuits: Sequence[QuantumCircuit], partitions: dict[object, list[int]]
    ) -> list[np.ndarray]:
        out: list[np.ndarray | None] = [None] * len(circuits)
        for indices in partitions.values():
            members = [circuits[i] for i in indices]
            states = simulate_statevector_batch(members)
            measured = measured_register(members[0])
            probs = batched_probabilities(states, measured, members[0].num_qubits)
            for row, index in enumerate(indices):
                out[index] = probs[row]
        return out  # type: ignore[return-value]
