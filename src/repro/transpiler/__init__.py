"""Topology-aware transpilation to the IBMQ basis-gate set."""

from .decompose import decompose_instruction, decompose_to_basis
from .layout import Layout, select_layout
from .metrics import circuit_footprint, swap_overhead
from .routing import RoutingResult, route_circuit
from .transpile import TranspileResult, transpile

__all__ = [
    "decompose_to_basis",
    "decompose_instruction",
    "Layout",
    "select_layout",
    "RoutingResult",
    "route_circuit",
    "circuit_footprint",
    "swap_overhead",
    "TranspileResult",
    "transpile",
]
