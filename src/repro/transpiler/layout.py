"""Initial layout selection: mapping logical qubits onto physical qubits.

The layout pass chooses which physical qubits host the circuit.  Two
strategies are provided:

* ``trivial`` — logical qubit *i* on physical qubit *i* (useful for tests and
  for devices whose numbering already matches the circuit).
* ``greedy`` (default) — pick a well-connected region of the device and place
  the most interaction-heavy logical qubits on the best-connected physical
  qubits, which minimizes the SWAP count the router has to pay.
"""

from __future__ import annotations

from collections import Counter
from typing import Literal, Mapping

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import is_two_qubit
from ..devices.topology import Topology

__all__ = ["Layout", "select_layout"]

LayoutStrategy = Literal["trivial", "greedy"]


class Layout:
    """A bijective map from logical qubits to physical qubits."""

    def __init__(self, logical_to_physical: Mapping[int, int], num_physical: int) -> None:
        mapping = {int(k): int(v) for k, v in logical_to_physical.items()}
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("layout maps two logical qubits to one physical qubit")
        for phys in mapping.values():
            if not 0 <= phys < num_physical:
                raise ValueError(f"physical qubit {phys} out of range")
        self._map = mapping
        self.num_physical = int(num_physical)

    def physical(self, logical: int) -> int:
        """Physical qubit hosting ``logical``."""
        return self._map[logical]

    def logical(self, physical: int) -> int | None:
        """Logical qubit hosted on ``physical`` (None when idle)."""
        for log, phys in self._map.items():
            if phys == physical:
                return log
        return None

    def as_dict(self) -> dict[int, int]:
        return dict(self._map)

    def swapped(self, phys_a: int, phys_b: int) -> "Layout":
        """Layout after physically swapping the contents of two qubits."""
        mapping = dict(self._map)
        log_a = self.logical(phys_a)
        log_b = self.logical(phys_b)
        if log_a is not None:
            mapping[log_a] = phys_b
        if log_b is not None:
            mapping[log_b] = phys_a
        return Layout(mapping, self.num_physical)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}->{v}" for k, v in sorted(self._map.items()))
        return f"Layout({items})"


def interaction_counts(circuit: QuantumCircuit) -> Counter:
    """How often each logical qubit participates in a two-qubit gate."""
    counts: Counter = Counter()
    for inst in circuit:
        if inst.is_unitary and is_two_qubit(inst.name):
            for q in inst.qubits:
                counts[q] += 1
    return counts


def select_layout(
    circuit: QuantumCircuit,
    topology: Topology,
    strategy: LayoutStrategy = "greedy",
) -> Layout:
    """Choose an initial logical-to-physical mapping.

    Raises:
        ValueError: when the device has fewer qubits than the circuit (the
            paper's master node filters such devices out of the ensemble).
    """
    if circuit.num_qubits > topology.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but device "
            f"{topology.name!r} has only {topology.num_qubits}"
        )
    if strategy == "trivial":
        return Layout({q: q for q in range(circuit.num_qubits)}, topology.num_qubits)
    if strategy != "greedy":
        raise ValueError(f"unknown layout strategy {strategy!r}")

    # Greedy: grow a connected physical region from the best-connected qubit,
    # then assign busy logical qubits to well-connected physical slots.
    start = max(range(topology.num_qubits), key=lambda q: (topology.degree(q), -q))
    region = [start]
    frontier = set(topology.neighbors(start))
    while len(region) < circuit.num_qubits:
        if not frontier:
            remaining = [q for q in range(topology.num_qubits) if q not in region]
            region.append(remaining[0])
            frontier |= set(topology.neighbors(remaining[0])) - set(region)
            continue
        best = max(
            frontier,
            key=lambda q: (
                sum(1 for nb in topology.neighbors(q) if nb in region),
                topology.degree(q),
                -q,
            ),
        )
        frontier.discard(best)
        region.append(best)
        frontier |= set(topology.neighbors(best)) - set(region)

    busy_logical = [
        q for q, _ in sorted(
            interaction_counts(circuit).items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    for q in range(circuit.num_qubits):
        if q not in busy_logical:
            busy_logical.append(q)

    region_by_connectivity = sorted(
        region,
        key=lambda q: (
            -sum(1 for nb in topology.neighbors(q) if nb in region),
            q,
        ),
    )
    mapping = {
        logical: physical
        for logical, physical in zip(busy_logical, region_by_connectivity)
    }
    return Layout(mapping, topology.num_qubits)
