"""The transpilation pipeline: decompose, lay out, route, summarize.

:func:`transpile` is the entry point the EQC client node calls once per
device (Algorithm 2, ``Transpile(C, Q)``): the resulting
:class:`TranspileResult` carries both the physical circuit template (still
parameterized) and its :class:`~repro.devices.qpu.CircuitFootprint`, which is
what the ``PCorrect`` weighting model and the device execution path consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..devices.qpu import CircuitFootprint
from ..devices.topology import Topology
from .decompose import decompose_to_basis
from .layout import Layout, LayoutStrategy, select_layout
from .metrics import circuit_footprint
from .routing import RoutingResult, route_circuit

__all__ = ["TranspileResult", "transpile"]


@dataclass
class TranspileResult:
    """Everything produced by transpiling one logical circuit for one device.

    Attributes:
        logical_circuit: the input circuit (untouched).
        physical_circuit: basis-gate circuit on physical qubits, SWAPs
            expanded; still parameterized if the input was.
        initial_layout: logical-to-physical map before routing.
        final_layout: logical-to-physical map after routing.
        footprint: structural cost summary (G1, G2, CD, M, used couplings).
        num_swaps: SWAPs inserted by the router.
        topology_name: device topology the circuit was routed for.
    """

    logical_circuit: QuantumCircuit
    physical_circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    footprint: CircuitFootprint
    num_swaps: int
    topology_name: str

    @property
    def swap_cnot_overhead(self) -> int:
        """CNOTs added purely for routing (three per SWAP)."""
        return 3 * self.num_swaps


def transpile(
    circuit: QuantumCircuit,
    topology: Topology,
    layout_strategy: LayoutStrategy = "greedy",
) -> TranspileResult:
    """Transpile a logical circuit for a device topology.

    The pipeline is: basis decomposition -> initial layout -> SWAP routing ->
    footprint extraction.  Parameterized circuits stay parameterized (only
    structural rewriting happens), so a single transpilation can be reused for
    every parameter binding during training — exactly how EQC client nodes
    amortize the cost.
    """
    basis = decompose_to_basis(circuit)
    layout = select_layout(basis, topology, strategy=layout_strategy)
    routed: RoutingResult = route_circuit(basis, topology, layout)
    footprint = circuit_footprint(routed.circuit)
    return TranspileResult(
        logical_circuit=circuit,
        physical_circuit=routed.circuit,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        footprint=footprint,
        num_swaps=routed.num_swaps,
        topology_name=topology.name,
    )
