"""Transpilation metrics: the structural footprint EQC's weighting consumes."""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import is_two_qubit
from ..devices.qpu import CircuitFootprint

__all__ = ["circuit_footprint", "swap_overhead"]


def circuit_footprint(circuit: QuantumCircuit) -> CircuitFootprint:
    """Compute the :class:`CircuitFootprint` of a (routed) physical circuit.

    ``used_qubits`` are the physical qubits touched by any gate or
    measurement; ``used_couplings`` the physical pairs touched by a two-qubit
    gate.  Both feed the per-qubit/per-pair terms of the weighting model.
    """
    used_qubits: set[int] = set()
    used_couplings: set[tuple[int, int]] = set()
    for inst in circuit:
        if inst.is_barrier:
            continue
        used_qubits.update(inst.qubits)
        if inst.is_unitary and is_two_qubit(inst.name):
            a, b = inst.qubits[0], inst.qubits[1]
            used_couplings.add((min(a, b), max(a, b)))
    return CircuitFootprint(
        num_single_qubit_gates=circuit.num_single_qubit_gates,
        num_two_qubit_gates=circuit.num_two_qubit_gates,
        critical_depth=circuit.critical_depth(),
        num_measurements=circuit.num_measurements,
        used_qubits=tuple(sorted(used_qubits)),
        used_couplings=tuple(sorted(used_couplings)),
    )


def swap_overhead(logical: QuantumCircuit, routed: QuantumCircuit) -> int:
    """Extra CNOTs the routed circuit pays compared to the logical circuit."""
    return routed.num_two_qubit_gates - logical.num_two_qubit_gates
