"""SWAP-insertion routing against a device coupling map.

Two-qubit gates can only be applied to physically coupled qubits (paper
Section II-A).  The router walks the instruction list, tracking the live
logical-to-physical mapping; whenever a CNOT's operands are not adjacent it
moves them together along a shortest physical path, emitting SWAPs (each
expanded into three CNOTs, the cost they carry on hardware) and updating the
mapping.  The measurement directives at the end of the circuit are remapped to
wherever their logical qubit ended up.

This is the classic "naive shortest-path" router — not SABRE-quality, but the
EQC quantities it feeds (``G2``, critical depth) only need the right *order of
magnitude* of SWAP overhead per topology, and the relative ordering
(fully-connected < line < T-shape for a linear entangler) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Instruction, is_two_qubit
from ..devices.topology import Topology
from .layout import Layout

__all__ = ["RoutingResult", "route_circuit"]


@dataclass
class RoutingResult:
    """Output of the routing pass.

    Attributes:
        circuit: the physical-qubit circuit (width = device width) with SWAPs
            expanded into CNOT triplets.
        initial_layout: the layout the pass started from.
        final_layout: logical-to-physical mapping after all inserted SWAPs.
        num_swaps: number of SWAPs inserted.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int


def route_circuit(
    circuit: QuantumCircuit,
    topology: Topology,
    layout: Layout,
) -> RoutingResult:
    """Map a logical circuit onto the device, inserting SWAPs where needed."""
    if len(layout) < circuit.num_qubits:
        raise ValueError("layout does not cover every logical qubit")

    routed = QuantumCircuit(topology.num_qubits, name=f"{circuit.name}@{topology.name}")
    current = layout
    num_swaps = 0

    for inst in circuit:
        if inst.is_barrier:
            routed.barrier()
            continue
        if inst.is_measurement:
            routed.measure(current.physical(inst.qubits[0]))
            continue
        if not is_two_qubit(inst.name):
            physical = tuple(current.physical(q) for q in inst.qubits)
            routed.append(Instruction(inst.name, physical, inst.params))
            continue

        # Two-qubit gate: bring the operands next to each other.
        log_a, log_b = inst.qubits
        phys_a, phys_b = current.physical(log_a), current.physical(log_b)
        if not topology.are_connected(phys_a, phys_b):
            path = topology.shortest_path(phys_a, phys_b)
            # Swap the first operand along the path until it neighbours the
            # second operand's position.
            for hop in path[1:-1]:
                _emit_swap(routed, phys_a, hop)
                current = current.swapped(phys_a, hop)
                num_swaps += 1
                phys_a = hop
            phys_b = current.physical(log_b)
        physical = (phys_a, phys_b)
        routed.append(Instruction(inst.name, physical, inst.params))

    return RoutingResult(
        circuit=routed,
        initial_layout=layout,
        final_layout=current,
        num_swaps=num_swaps,
    )


def _emit_swap(circuit: QuantumCircuit, a: int, b: int) -> None:
    """Append a SWAP as its three-CNOT expansion."""
    circuit.cx(a, b)
    circuit.cx(b, a)
    circuit.cx(a, b)
