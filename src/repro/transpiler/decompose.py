"""Decomposition of logical gates into the IBMQ basis set.

Every circuit sent to a device must be expressed in the device's native
alphabet ``{ID, RZ, SX, X, CX}`` (paper Section II-A).  Single-qubit gates are
rewritten through the standard ZSX Euler decomposition

    ``U3(theta, phi, lam) = RZ(phi + pi) . SX . RZ(theta + pi) . SX . RZ(lam)``

(up to global phase), and the remaining two-qubit gates are expanded into CNOT
conjugations.  Decomposition only applies to *bound* gates when the angles are
symbolic — parameterized RZ/RY/RX decompositions keep the parameter expression
in the appropriate RZ slot so the transpiled template can still be bound later
(which is exactly how the EQC client node reuses one transpilation across all
parameter updates).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import BASIS_GATES, Instruction
from ..circuit.parameters import ParameterValue

__all__ = ["decompose_to_basis", "decompose_instruction"]

_PI = math.pi


def _u3(qubit: int, theta: ParameterValue, phi: float, lam: float) -> list[Instruction]:
    """ZSX decomposition of a U3 gate; ``theta`` may stay symbolic."""
    if isinstance(theta, (int, float)):
        middle: ParameterValue = float(theta) + _PI
    else:
        middle = theta + _PI
    return [
        Instruction("rz", (qubit,), (lam,)),
        Instruction("sx", (qubit,)),
        Instruction("rz", (qubit,), (middle,)),
        Instruction("sx", (qubit,)),
        Instruction("rz", (qubit,), (phi + _PI,)),
    ]


def decompose_instruction(inst: Instruction) -> list[Instruction]:
    """Rewrite one instruction into basis gates (identity for basis gates)."""
    name = inst.name
    if name in BASIS_GATES or inst.spec.is_directive:
        return [inst]

    q = inst.qubits[0]
    if name == "h":
        return _u3(q, _PI / 2.0, 0.0, _PI)
    if name == "y":
        return _u3(q, _PI, _PI / 2.0, _PI / 2.0)
    if name == "z":
        return [Instruction("rz", (q,), (_PI,))]
    if name == "s":
        return [Instruction("rz", (q,), (_PI / 2.0,))]
    if name == "sdg":
        return [Instruction("rz", (q,), (-_PI / 2.0,))]
    if name == "t":
        return [Instruction("rz", (q,), (_PI / 4.0,))]
    if name == "ry":
        return _u3(q, inst.params[0], 0.0, 0.0)
    if name == "rx":
        return _u3(q, inst.params[0], -_PI / 2.0, _PI / 2.0)

    if name == "cz":
        control, target = inst.qubits
        return (
            _u3(target, _PI / 2.0, 0.0, _PI)
            + [Instruction("cx", (control, target))]
            + _u3(target, _PI / 2.0, 0.0, _PI)
        )
    if name == "swap":
        a, b = inst.qubits
        return [
            Instruction("cx", (a, b)),
            Instruction("cx", (b, a)),
            Instruction("cx", (a, b)),
        ]
    if name == "rzz":
        a, b = inst.qubits
        return [
            Instruction("cx", (a, b)),
            Instruction("rz", (b,), (inst.params[0],)),
            Instruction("cx", (a, b)),
        ]
    raise ValueError(f"no basis decomposition rule for gate {name!r}")


def decompose_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a circuit entirely into the ``{id, rz, sx, x, cx}`` basis."""
    out = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_basis")
    for inst in circuit:
        for piece in decompose_instruction(inst):
            out.append(piece)
    return out
