"""Baselines: single-device training and the ideal simulator reference."""

from .ideal import IdealTrainer
from .single_device import DEFAULT_TERMINATION_HOURS, SingleDeviceTrainer

__all__ = ["IdealTrainer", "SingleDeviceTrainer", "DEFAULT_TERMINATION_HOURS"]
