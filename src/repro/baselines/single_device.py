"""Single-device VQA training: the paper's per-machine baselines.

This is the workflow EQC replaces: one QPU, sequential stochastic gradient
descent, every forward/backward circuit pair waiting in that device's queue.
Its history shows both pathologies the paper documents — wall-clock times of
days to months on slow or congested devices, and device-specific bias/drift
pulling the learned parameters away from the ideal solution.

Runs are terminated (like the paper's Manhattan/Santiago/Toronto experiments)
when the virtual wall clock exceeds ``max_wall_hours``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cloud.clock import SECONDS_PER_HOUR
from ..cloud.provider import BackendFactory, CloudProvider
from ..cloud.queueing import QueueModel
from ..devices.catalog import build_qpu
from ..devices.qpu import QPU

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.scheduler import CloudScheduler
from ..vqa.optimizer import AsgdRule
from ..vqa.tasks import CyclicTaskQueue, vqe_task_cycle
from ..core.client import EQCClientNode
from ..core.history import EpochRecord, TrainingHistory
from ..core.objective import VQAObjective

__all__ = ["SingleDeviceTrainer", "DEFAULT_TERMINATION_HOURS"]

#: The paper terminates single-device experiments after two weeks of training.
DEFAULT_TERMINATION_HOURS = 14 * 24.0


class SingleDeviceTrainer:
    """Sequential SGD training of a VQA on one (noisy, queued) device."""

    def __init__(
        self,
        objective: VQAObjective,
        device_name: str,
        shots: int = 8192,
        learning_rate: float = 0.1,
        seed: int = 0,
        max_wall_hours: float = DEFAULT_TERMINATION_HOURS,
        queue_model: QueueModel | None = None,
        qpu: QPU | None = None,
        backend_factory: BackendFactory | None = None,
        scheduler: "CloudScheduler | None" = None,
    ) -> None:
        self.objective = objective
        self.qpu = qpu if qpu is not None else build_qpu(device_name)
        queue_models = {self.qpu.name: queue_model} if queue_model is not None else None
        # Execution flows through the device endpoint's ExecutionBackend
        # (NoisyBackend unless overridden), like every other trainer; an
        # optional scheduler makes the device a contended shared resource.
        self.provider = CloudProvider(
            [self.qpu],
            queue_models=queue_models,
            seed=seed,
            shots=shots,
            backend_factory=backend_factory,
            scheduler=scheduler,
        )
        self.client = EQCClientNode(
            objective=objective, qpu=self.qpu, provider=self.provider, shots=shots
        )
        self.rule = AsgdRule(learning_rate=learning_rate)
        self.max_wall_hours = float(max_wall_hours)
        self.label = f"single[{self.qpu.name}]"

    # ------------------------------------------------------------------
    def train(
        self,
        initial_parameters,
        num_epochs: int,
        task_queue: CyclicTaskQueue | None = None,
        record_every: int = 1,
    ) -> TrainingHistory:
        """Run sequential single-device SGD for up to ``num_epochs`` epochs."""
        if num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        theta = np.asarray(initial_parameters, dtype=float).copy()
        queue = task_queue or vqe_task_cycle(self.objective.num_parameters)

        history = TrainingHistory(
            label=self.label,
            device_names=(self.qpu.name,),
            metadata={"learning_rate": self.rule.learning_rate},
        )

        now = 0.0
        jobs = 0
        for epoch in range(1, num_epochs + 1):
            for _ in range(queue.cycle_length):
                task = queue.next_task()
                outcome = self.client.execute_task(
                    task, theta=tuple(theta), submit_time=now, theta_version=jobs
                )
                jobs += 1
                now = outcome.finish_time
                index = task.parameter_index
                theta[index] = self.rule.step(theta[index], outcome.gradient, weight=1.0)

            if epoch % record_every == 0 or epoch == num_epochs:
                history.add(
                    EpochRecord(
                        epoch=epoch,
                        sim_time_hours=now / SECONDS_PER_HOUR,
                        loss=self.objective.exact_loss(tuple(theta)),
                        parameters=tuple(float(v) for v in theta),
                    )
                )
            if now / SECONDS_PER_HOUR > self.max_wall_hours:
                history.terminated_early = True
                history.termination_reason = (
                    f"exceeded {self.max_wall_hours:.0f} simulated hours "
                    f"after {epoch} epochs"
                )
                break

        history.total_updates = jobs
        history.total_jobs = jobs
        return history
