"""The ideal-simulator baseline: noiseless, queueless training.

The paper's reference curve ("Ideal Solution" in Fig. 6/9/11) comes from
training the same ansatz on a noise-free simulator with 8192 shots.  This
trainer reproduces it: energies are estimated either exactly or by sampling
an ideal distribution (finite-shot noise only), there is no queue, and the
wall-clock per epoch is negligible.

Sampled execution is routed through an
:class:`~repro.backends.base.ExecutionBackend`: the default
:class:`~repro.backends.statevector.StatevectorBackend` keeps seeded results
bit-exact with the historical sequential path, while passing
``BatchedStatevectorBackend()`` turns every parameter step's forward/backward
circuit family into one vectorized pass.
"""

from __future__ import annotations

import numpy as np

from ..backends.base import ExecutionBackend
from ..backends.statevector import StatevectorBackend
from ..hamiltonian.expectation import EnergyEstimator
from ..vqa.gradient import (
    gradient_from_energies,
    sampled_parameter_shift_gradient,
    shifted_parameter_vectors,
)
from ..vqa.optimizer import AsgdRule
from ..core.history import EpochRecord, TrainingHistory

__all__ = ["IdealTrainer"]


class IdealTrainer:
    """Sequential SGD on a noise-free simulator (finite shots optional)."""

    def __init__(
        self,
        estimator: EnergyEstimator,
        shots: int = 8192,
        learning_rate: float = 0.1,
        exact: bool = False,
        seed: int = 0,
        seconds_per_epoch: float = 30.0,
        backend: ExecutionBackend | None = None,
    ) -> None:
        """Args:
            estimator: the shared ansatz + Hamiltonian estimator.
            shots: shots per circuit when sampling (paper: 8192).
            learning_rate: SGD step size.
            exact: use exact expectation values instead of sampled counts.
            seed: sampling seed.
            seconds_per_epoch: nominal simulator wall time per epoch, used
                only so the history has a meaningful epochs/hour.
            backend: ideal execution backend for sampled mode; defaults to
                the sequential :class:`StatevectorBackend` (bit-exact with
                historical results for a fixed seed).
        """
        self.estimator = estimator
        self.shots = int(shots)
        self.rule = AsgdRule(learning_rate=learning_rate)
        self.exact = bool(exact)
        self.rng = np.random.default_rng(seed)
        self.seconds_per_epoch = float(seconds_per_epoch)
        self.backend: ExecutionBackend = backend if backend is not None else StatevectorBackend()
        self.label = "ideal_simulator"

    # ------------------------------------------------------------------
    def _energy(self, values) -> float:
        if self.exact:
            return self.estimator.exact_energy(values)
        if hasattr(self.backend, "run_sweep"):
            # Zero-rebind: the compiled backends evaluate a one-point sweep
            # straight from the value vector, sampling each measurement group
            # in the same order as a bound-circuit submission.
            results = self.backend.run_sweep(
                self.estimator.template_circuits(),
                np.asarray([[float(v) for v in values]]),
                shots=self.shots,
                rng=self.rng,
            )
        else:
            circuits = self.estimator.measurement_circuits(values)
            results = self.backend.run(circuits, shots=self.shots, rng=self.rng)
        return self.estimator.energy_from_counts([r.counts for r in results])

    def train(
        self,
        initial_parameters,
        num_epochs: int,
        record_every: int = 1,
    ) -> TrainingHistory:
        """Run noiseless sequential SGD for ``num_epochs`` epochs."""
        if num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        theta = np.asarray(initial_parameters, dtype=float).copy()
        history = TrainingHistory(
            label=self.label,
            device_names=("ideal",),
            metadata={
                "learning_rate": self.rule.learning_rate,
                "shots": self.shots,
                "backend": self.backend.name if not self.exact else "exact",
            },
        )
        num_parameters = theta.size
        for epoch in range(1, num_epochs + 1):
            for index in range(num_parameters):
                if self.exact:
                    pair = shifted_parameter_vectors(theta, index)
                    gradient = gradient_from_energies(
                        self._energy(pair.forward), self._energy(pair.backward)
                    )
                else:
                    # Both shift evaluations run as one backend batch.
                    gradient = sampled_parameter_shift_gradient(
                        self.estimator,
                        theta,
                        self.backend,
                        shots=self.shots,
                        rng=self.rng,
                        parameter_indices=[index],
                    )[0]
                theta[index] = self.rule.step(theta[index], gradient)
            if epoch % record_every == 0 or epoch == num_epochs:
                history.add(
                    EpochRecord(
                        epoch=epoch,
                        sim_time_hours=epoch * self.seconds_per_epoch / 3600.0,
                        loss=self.estimator.exact_energy(theta),
                        parameters=tuple(float(v) for v in theta),
                    )
                )
        history.total_updates = num_epochs * num_parameters
        return history
