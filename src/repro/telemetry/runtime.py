"""The global telemetry switchboard and its no-op fast path.

Instrumentation sites throughout the stack import the module-level
:data:`TELEMETRY` singleton and guard every recording with a single
attribute check::

    from ..telemetry import TELEMETRY as _telemetry

    if _telemetry.enabled:
        _telemetry.registry.counter("engine.executions").inc()

Disabled (the default), the entire observability layer costs one branch per
instrumented call site on the *outermost* hot-path functions — never per
gate, per event, or per sweep point — which is what keeps the disabled-mode
overhead on the engine micro-benchmark under 2% (enforced by
``benchmarks/bench_telemetry.py``).  Telemetry consumes no RNG in either
mode, so seeded golden histories are bit-exact with telemetry on or off.

Set ``REPRO_TELEMETRY=1`` in the environment (or call
:func:`TELEMETRY.enable`) to collect; :func:`telemetry_session` scopes
collection to a block and restores the previous state on exit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Mapping

from .registry import MetricsRegistry
from .trace import Tracer

__all__ = ["Telemetry", "TELEMETRY", "telemetry_session"]


class Telemetry:
    """One registry + one tracer behind an enabled flag."""

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected metrics and spans (the flag is untouched)."""
        self.registry.reset()
        self.tracer.reset()

    def span(self, name: str, cat: str = "app", args: Mapping | None = None):
        """Shorthand for ``TELEMETRY.tracer.span`` (call only when enabled)."""
        return self.tracer.span(name, cat, args)

    def set_process(self, pid: int, name: str) -> None:
        """Label this process's wall-clock track (workers call this)."""
        self.tracer.pid = int(pid)
        self.tracer.process_name = str(name)


#: The process-wide telemetry instance every instrumentation site shares.
TELEMETRY = Telemetry()

if os.environ.get("REPRO_TELEMETRY", "0") not in ("", "0"):
    TELEMETRY.enable()


@contextmanager
def telemetry_session(reset: bool = True):
    """Enable collection for a block; restores the prior enabled state.

    ``reset=True`` (default) starts the block from an empty registry and
    tracer so the session captures exactly one run.
    """
    previous = TELEMETRY.enabled
    if reset:
        TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        yield TELEMETRY
    finally:
        TELEMETRY.enabled = previous
