"""Cross-layer observability: metrics registry, tracing spans, run reports.

The telemetry layer gives the whole stack — compiled engine, execution
backends, the cloud provider, the discrete-event scheduler, and EQC
training — one shared, dependency-free substrate for quantitative
visibility:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket histograms
  (with p50/p95/p99 extraction) whose snapshots are plain dicts, so worker
  processes ship their metrics back through a queue and the master merges
  them deterministically in fleet order;
* :class:`Tracer` — wall-clock spans (per-process Chrome pids) plus
  simulated-clock spans (per-device lanes), exported as Chrome trace-event
  JSON loadable in Perfetto or ``chrome://tracing``;
* :mod:`repro.telemetry.report` — text/JSON run summaries and the
  percentile/fairness arithmetic behind the scheduler's SLO metrics.

Collection is off by default and gated behind one branch per hot call site
(see :data:`TELEMETRY`); enable with ``REPRO_TELEMETRY=1``, ``TELEMETRY
.enable()``, or the scoped :func:`telemetry_session`.  Telemetry never
consumes RNG, so seeded histories are bit-exact with collection on or off.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_time_buckets,
    metric_key,
)
from .report import jains_index, percentile, render_text, run_report, write_report
from .runtime import TELEMETRY, Telemetry, telemetry_session
from .trace import SIM_PID, Tracer, validate_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_time_buckets",
    "metric_key",
    "Telemetry",
    "TELEMETRY",
    "telemetry_session",
    "Tracer",
    "SIM_PID",
    "validate_chrome_trace",
    "jains_index",
    "percentile",
    "run_report",
    "render_text",
    "write_report",
]
