"""Span tracing with Chrome trace-event JSON export.

The tracer records two clock domains into one trace file:

* **wall spans** — real compute time, stamped with ``time.time_ns()`` so
  spans recorded in different *processes* share one time base; the master
  and every :class:`~repro.execution.parallel.ParallelEnsembleExecutor`
  worker get their own Chrome ``pid`` (with ``process_name`` metadata), so
  a parallel EQC epoch renders as one aligned multi-process timeline.
* **sim spans** — events on the *simulated* clock (scheduler service
  windows, calibration downtime, EQC epochs).  They live under a dedicated
  ``pid`` (:data:`SIM_PID`) with one named lane (``tid``) per device, so
  the discrete-event schedule renders as a per-device Gantt chart next to
  the wall-clock tracks.

Exports are standard Chrome trace-event JSON — load the file at
``chrome://tracing`` or https://ui.perfetto.dev.  Wall timestamps are
normalized so the earliest event sits at t=0; sim timestamps map simulated
seconds to trace microseconds and start at the simulation origin.

The tracer never touches any RNG and never blocks: events above
``max_events`` are counted in :attr:`Tracer.dropped` and discarded, so an
unexpectedly hot instrumentation site cannot exhaust memory.
"""

from __future__ import annotations

import json
import time
from typing import Mapping, Sequence

__all__ = ["Tracer", "SIM_PID", "validate_chrome_trace"]

#: Chrome pid hosting all simulated-clock lanes.
SIM_PID = 9999

_PH_ALLOWED = {"X", "M", "i", "I"}


class _SpanHandle:
    """Context manager recording one wall span on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_SpanHandle":
        self._start_ns = time.time_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.add_span(
            self._name, self._cat, self._start_ns, time.time_ns(), self._args
        )


class Tracer:
    """Collects spans and exports them as Chrome trace events."""

    def __init__(self, max_events: int = 200_000) -> None:
        self.max_events = int(max_events)
        #: This process's Chrome pid (workers set their worker id + 1).
        self.pid = 0
        self.process_name = "main"
        self.dropped = 0
        self._events: list[dict] = []
        #: pid -> display name, accumulated across ingested worker payloads.
        self._process_names: dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "app", args: Mapping | None = None):
        """Context manager timing a wall-clock span."""
        return _SpanHandle(self, name, cat, dict(args) if args else None)

    def add_span(
        self,
        name: str,
        cat: str,
        start_ns: int,
        end_ns: int,
        args: Mapping | None = None,
    ) -> None:
        """Record one completed wall-clock span (timestamps from time.time_ns)."""
        self._append(
            {
                "name": name,
                "cat": cat,
                "domain": "wall",
                "pid": self.pid,
                "tid": 0,
                "ts_ns": int(start_ns),
                "dur_ns": max(0, int(end_ns) - int(start_ns)),
                "args": dict(args) if args else None,
            }
        )

    def add_sim_span(
        self,
        name: str,
        cat: str,
        lane: str,
        start_seconds: float,
        duration_seconds: float,
        args: Mapping | None = None,
    ) -> None:
        """Record one simulated-clock span on the named lane."""
        self._append(
            {
                "name": name,
                "cat": cat,
                "domain": "sim",
                "pid": SIM_PID,
                "tid": str(lane),
                "ts_s": float(start_seconds),
                "dur_s": max(0.0, float(duration_seconds)),
                "args": dict(args) if args else None,
            }
        )

    def instant(self, name: str, cat: str = "app", args: Mapping | None = None) -> None:
        """Record a zero-duration wall-clock marker."""
        self._append(
            {
                "name": name,
                "cat": cat,
                "domain": "wall",
                "pid": self.pid,
                "tid": 0,
                "ts_ns": time.time_ns(),
                "dur_ns": None,
                "args": dict(args) if args else None,
            }
        )

    def _append(self, event: dict) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    # ------------------------------------------------------------------
    # cross-process shipping
    # ------------------------------------------------------------------
    def export_payload(self) -> dict:
        """Everything a worker ships back: events plus pid display names."""
        names = dict(self._process_names)
        names[self.pid] = self.process_name
        return {"process_names": names, "events": list(self._events)}

    def ingest(self, payload: Mapping) -> None:
        """Fold a worker's :meth:`export_payload` into this tracer."""
        for pid, name in payload.get("process_names", {}).items():
            self._process_names[int(pid)] = str(name)
        for event in payload.get("events", ()):
            self._append(event)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        wall_origin = min(
            (e["ts_ns"] for e in self._events if e["domain"] == "wall"),
            default=0,
        )
        lane_tids: dict[str, int] = {}
        events: list[dict] = []

        process_names = dict(self._process_names)
        process_names.setdefault(self.pid, self.process_name)
        used_pids = {e["pid"] for e in self._events if e["domain"] == "wall"}
        for pid in sorted(used_pids):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process_names.get(pid, f"process-{pid}")},
                }
            )
        if any(e["domain"] == "sim" for e in self._events):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": SIM_PID,
                    "tid": 0,
                    "args": {"name": "simulated timeline"},
                }
            )

        body: list[dict] = []
        for event in self._events:
            if event["domain"] == "sim":
                lane = event["tid"]
                tid = lane_tids.get(lane)
                if tid is None:
                    tid = lane_tids[lane] = len(lane_tids)
                    events.append(
                        {
                            "name": "thread_name",
                            "ph": "M",
                            "pid": SIM_PID,
                            "tid": tid,
                            "args": {"name": lane},
                        }
                    )
                ts = event["ts_s"] * 1e6
                dur = event["dur_s"] * 1e6
            else:
                tid = event["tid"]
                ts = (event["ts_ns"] - wall_origin) / 1e3
                dur = None if event["dur_ns"] is None else event["dur_ns"] / 1e3
            out = {
                "name": event["name"],
                "cat": event["cat"],
                "ph": "i" if dur is None else "X",
                "pid": event["pid"],
                "tid": tid,
                "ts": ts,
            }
            if dur is not None:
                out["dur"] = dur
            else:
                out["s"] = "t"
            if event["args"]:
                out["args"] = event["args"]
            body.append(out)
        body.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e.get("dur", 0.0)))
        return {
            "traceEvents": events + body,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)

    def reset(self) -> None:
        self._events.clear()
        self._process_names.clear()
        self.dropped = 0


def validate_chrome_trace(trace: Mapping) -> dict:
    """Validate a Chrome trace object; returns a per-category summary.

    Checks the structural schema (required keys and types per event phase)
    and span-nesting consistency: on every ``(pid, tid)`` track, complete
    events must be properly nested — each span either disjoint from or fully
    contained in any span it overlaps.  Raises ``ValueError`` on the first
    violation.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, (list, tuple)):
        raise ValueError("trace must carry a traceEvents list")
    categories: dict[str, dict] = {}
    tracks: dict[tuple, list[tuple[float, float, str]]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ValueError(f"event {index} is not an object")
        ph = event.get("ph")
        if ph not in _PH_ALLOWED:
            raise ValueError(f"event {index} has unsupported phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {index} is missing {key!r}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {index} has invalid ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {index} has invalid dur {dur!r}")
            tracks.setdefault((event["pid"], event["tid"]), []).append(
                (float(ts), float(dur), str(event["name"]))
            )
            stats = categories.setdefault(
                str(event.get("cat", "")), {"spans": 0, "total_dur_us": 0.0}
            )
            stats["spans"] += 1
            stats["total_dur_us"] += float(dur)

    tolerance = 1e-6
    for track, spans in tracks.items():
        spans.sort(key=lambda item: (item[0], -item[1]))
        stack: list[tuple[float, str]] = []  # (end, name)
        for start, dur, name in spans:
            end = start + dur
            while stack and stack[-1][0] <= start + tolerance:
                stack.pop()
            if stack and end > stack[-1][0] + tolerance:
                raise ValueError(
                    f"span {name!r} on track {track} ends at {end:.3f} "
                    f"outside its enclosing span (ends {stack[-1][0]:.3f})"
                )
            stack.append((end, name))
    return {
        "events": len(events),
        "tracks": len(tracks),
        "categories": categories,
    }
