"""Process-mergeable metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the observability layer (spans live in
:mod:`repro.telemetry.trace`).  Three design constraints shape it:

* **dependency-free and picklable** — metrics are plain Python objects and
  :meth:`MetricsRegistry.snapshot` is a plain dict of floats/lists, so a
  worker process can ship its metrics through a multiprocessing queue and
  the master can merge them without importing anything;
* **deterministic merges** — counters and histograms are commutative sums;
  gauges are explicitly *order-dependent* (an incoming gauge that was ever
  set overwrites the local value), so callers merge worker snapshots in
  fleet order and two identical runs produce identical merged registries;
* **fixed buckets** — histograms never store samples, only per-bucket
  counts plus exact count/sum/min/max, so memory is bounded no matter how
  hot the instrumented path is, and p50/p95/p99 come from linear
  interpolation inside the covering bucket (clamped to the observed
  min/max, so single-sample histograms report the sample exactly).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_time_buckets",
    "metric_key",
]

#: Quantiles every histogram reports in snapshots and run reports.
REPORTED_QUANTILES = (0.5, 0.95, 0.99)


def default_time_buckets() -> tuple[float, ...]:
    """Geometric upper bucket edges covering ~1 µs to ~10^6 s.

    Five edges per decade keeps quantile interpolation error under ~30% of
    the value anywhere in the range, which is plenty for latency SLOs, at
    61 buckets per histogram.
    """
    edges: list[float] = []
    for decade in range(-6, 6):
        for step in (1.0, 1.6, 2.5, 4.0, 6.3):
            edges.append(step * 10.0**decade)
    edges.append(1e6)
    return tuple(edges)


_DEFAULT_TIME_BUCKETS = default_time_buckets()


def metric_key(name: str, labels: Mapping[str, object] | None = None) -> str:
    """The registry key for a metric: ``name`` or ``name{k=v,...}``.

    Labels are sorted so call sites never have to agree on keyword order.
    """
    if not labels:
        return name
    body = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """A monotone accumulator (merge = sum)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (merge = incoming overwrites, if ever set)."""

    __slots__ = ("value", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``bounds`` are strictly increasing *upper* bucket edges; one overflow
    bucket catches everything above the last edge.  Two histograms merge
    only when their bounds are identical.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min_value", "max_value")

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        bounds = tuple(bounds) if bounds is not None else _DEFAULT_TIME_BUCKETS
        if len(bounds) < 1 or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) via bucket interpolation."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min_value
        if q >= 1.0:
            return self.max_value
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lower = self.bounds[index - 1] if index > 0 else self.min_value
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.max_value
                )
                lower = max(lower, self.min_value)
                upper = min(upper, self.max_value)
                if upper <= lower:
                    return lower
                return lower + (target - previous) / bucket_count * (upper - lower)
        return self.max_value  # pragma: no cover - cumulative covers count

    def to_dict(self) -> dict:
        quantiles = {f"p{int(q * 100)}": self.quantile(q) for q in REPORTED_QUANTILES}
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "mean": self.mean,
            **quantiles,
        }

    def merge_dict(self, data: Mapping) -> None:
        if tuple(data["bounds"]) != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{tuple(data['bounds'])} vs {self.bounds}"
            )
        for index, bucket_count in enumerate(data["counts"]):
            self.counts[index] += bucket_count
        incoming = int(data["count"])
        self.count += incoming
        self.total += float(data["sum"])
        if incoming:
            self.min_value = min(self.min_value, float(data["min"]))
            self.max_value = max(self.max_value, float(data["max"]))


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metric accessors create on first use, so instrumentation sites never
    need registration ceremony; the ``bounds`` of a histogram are fixed by
    whichever call site touches it first (all sites for one metric must
    agree — a mismatch raises).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None, **labels
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(bounds)
        elif bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
            raise ValueError(f"histogram {key!r} already exists with other bounds")
        return metric

    # ------------------------------------------------------------------
    def counters(self) -> Iterator[tuple[str, float]]:
        for key in sorted(self._counters):
            yield key, self._counters[key].value

    def gauges(self) -> Iterator[tuple[str, float]]:
        for key in sorted(self._gauges):
            yield key, self._gauges[key].value

    def histograms(self) -> Iterator[tuple[str, Histogram]]:
        for key in sorted(self._histograms):
            yield key, self._histograms[key]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict copy safe to pickle, JSON-encode, and merge."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {
                k: {"value": g.value, "updates": g.updates}
                for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                k: h.to_dict() for k, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram contents add; a gauge that was ever set in
        the incoming snapshot overwrites the local value — merging worker
        snapshots in fleet order therefore yields one deterministic result.
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key).inc(value)
        for key, payload in snapshot.get("gauges", {}).items():
            if payload["updates"]:
                gauge = self.gauge(key)
                gauge.value = float(payload["value"])
                gauge.updates += int(payload["updates"])
        for key, payload in snapshot.get("histograms", {}).items():
            self.histogram(key, bounds=payload["bounds"]).merge_dict(payload)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
