"""Run summaries (text + JSON) and the SLO arithmetic they share.

:func:`run_report` collapses a registry + tracer into one JSON-able dict —
counters, gauges, histogram quantiles, and a per-category span summary —
and :func:`render_text` formats it for a terminal.  The SLO helpers at the
bottom (:func:`percentile`, :func:`jains_index`) are the single home of the
percentile/fairness arithmetic: :meth:`CloudScheduler.metrics` uses them to
compute p50/p99 queue wait and the per-tenant fairness index that
``benchmarks/bench_sched.py`` records in ``BENCH_sched.json``.

Everything here is dependency-free (stdlib only) so the report can run in
any process, including CI smoke jobs with no numpy import cost.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from .registry import MetricsRegistry
from .trace import Tracer

__all__ = [
    "jains_index",
    "percentile",
    "tournament_table",
    "run_report",
    "render_text",
    "write_report",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile(..., method="linear")`` so metrics computed
    here agree with any analysis notebook; returns 0.0 on empty input.
    """
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + fraction * (ordered[upper] - ordered[lower])


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``, in ``(0, 1]``.

    1.0 means every party received an equal share; ``1/n`` means one party
    received everything.  Empty or all-zero inputs report 1.0 (a system
    that allocated nothing was not unfair to anyone).
    """
    values = [float(v) for v in values]
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0.0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def _parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split ``name{k=v,...}`` back into ``(name, labels)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, body = key.partition("{")
    labels: dict[str, str] = {}
    for pair in body[:-1].split(","):
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


def tournament_table(gauges: Mapping[str, float]) -> list[dict]:
    """Collect ``sched.tournament.*`` gauges into per-cell rows.

    :func:`repro.sched.tournament.publish_tournament` writes one gauge per
    (metric, policy, devices, tenants) combination; this inverts that into a
    sorted list of rows, one per grid cell, each carrying its coordinates
    plus every published metric — the shape :func:`render_text` formats as
    the tournament table.
    """
    cells: dict[tuple[int, int, str], dict] = {}
    prefix = "sched.tournament."
    for key, value in gauges.items():
        name, labels = _parse_metric_key(key)
        if not name.startswith(prefix) or "policy" not in labels:
            continue
        coord = (
            int(labels.get("devices", 0)),
            int(labels.get("tenants", 0)),
            labels["policy"],
        )
        row = cells.setdefault(
            coord,
            {"devices": coord[0], "tenants": coord[1], "policy": coord[2]},
        )
        row[name[len(prefix):]] = value
    return [cells[coord] for coord in sorted(cells)]


def run_report(
    registry: MetricsRegistry | None = None, tracer: Tracer | None = None
) -> dict:
    """One JSON-able summary of everything collected this run.

    Defaults to the global :data:`~repro.telemetry.TELEMETRY` instance when
    called with no arguments.
    """
    if registry is None or tracer is None:
        from .runtime import TELEMETRY

        registry = registry if registry is not None else TELEMETRY.registry
        tracer = tracer if tracer is not None else TELEMETRY.tracer
    histograms = {}
    for key, histogram in registry.histograms():
        data = histogram.to_dict()
        # The bucket vectors are merge plumbing, not summary material.
        del data["bounds"], data["counts"]
        histograms[key] = data
    spans: dict[str, dict] = {}
    for event in tracer.export_payload()["events"]:
        duration = event.get("dur_ns")
        seconds = (
            duration / 1e9 if duration is not None else event.get("dur_s", 0.0) or 0.0
        )
        stats = spans.setdefault(event["cat"], {"spans": 0, "total_seconds": 0.0})
        stats["spans"] += 1
        stats["total_seconds"] += seconds
    return {
        "counters": dict(registry.counters()),
        "gauges": dict(registry.gauges()),
        "histograms": histograms,
        "spans_by_category": {k: spans[k] for k in sorted(spans)},
        "dropped_trace_events": tracer.dropped,
    }


def render_text(report: Mapping) -> str:
    """Format a :func:`run_report` dict for a terminal."""
    lines = ["=== telemetry report ==="]
    if report["counters"]:
        lines.append("counters:")
        for key, value in report["counters"].items():
            lines.append(f"  {key:<48} {value:,.0f}")
    if report["gauges"]:
        lines.append("gauges:")
        for key, value in report["gauges"].items():
            lines.append(f"  {key:<48} {value:,.4g}")
    if report["histograms"]:
        lines.append("histograms (p50 / p95 / p99):")
        for key, data in report["histograms"].items():
            lines.append(
                f"  {key:<48} n={data['count']:<8} "
                f"{data['p50']:.4g} / {data['p95']:.4g} / {data['p99']:.4g}"
            )
    rows = tournament_table(report.get("gauges", {}))
    if rows:
        lines.append(
            "tournament (devices x tenants x policy | epochs/h, p99 wait, "
            "rejected, fairness):"
        )
        for row in rows:
            lines.append(
                f"  {row['devices']:>4}d {row['tenants']:>6}t "
                f"{row['policy']:<16} "
                f"{row.get('epochs_per_hour', 0.0):8.2f} eph | "
                f"p99 {row.get('queue_wait_p99', 0.0):10,.0f}s | "
                f"rej {row.get('rejected_fraction', 0.0):6.1%} | "
                f"jain {row.get('fairness_jain', 0.0):.3f}"
            )
    if report["spans_by_category"]:
        lines.append("spans:")
        for cat, stats in report["spans_by_category"].items():
            lines.append(
                f"  {cat:<48} {stats['spans']} spans, "
                f"{stats['total_seconds']:.4g} s total"
            )
    if report.get("dropped_trace_events"):
        lines.append(f"dropped trace events: {report['dropped_trace_events']}")
    return "\n".join(lines)


def write_report(
    json_path,
    text_path=None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> dict:
    """Render the run report to disk (JSON, optionally text); returns it."""
    report = run_report(registry, tracer)
    with open(json_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    if text_path is not None:
        with open(text_path, "w") as handle:
            handle.write(render_text(report) + "\n")
    return report
