"""Pluggable scheduling policies: who runs next, and on which device.

A :class:`SchedulingPolicy` answers the two questions a multi-tenant cloud
scheduler faces:

* **ordering** — when a device frees up, which waiting job starts
  (:meth:`SchedulingPolicy.next_job`), and
* **placement** — when a job arrives without a pinned device, where it goes
  (:meth:`SchedulingPolicy.select_device`).

All decisions are deterministic functions of queue state: ties break by
arrival order (ordering) or device name (placement), never by RNG or dict
iteration accidents, so policy sweeps are exactly reproducible.

:class:`StatisticalQueuePolicy` is the odd one out: it is the pre-kernel
closed-form queue model (lognormal congestion wait against the device's
``free_at``), kept as the :class:`~repro.cloud.provider.CloudProvider`
default so every seeded history recorded before the scheduler existed stays
bit-exact.  It never touches the event kernel.  (It lives in
:mod:`repro.cloud.queueing` next to the model it wraps, so the ``cloud``
layer never imports ``sched``; it is re-exported here as part of the policy
family.)
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..cloud.queueing import StatisticalQueuePolicy
from .queues import DeviceServiceQueue, SchedJob

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "LeastLoadedPolicy",
    "CalibrationAwarePolicy",
    "StatisticalQueuePolicy",
    "POLICY_REGISTRY",
    "resolve_policy",
]


class SchedulingPolicy:
    """Base policy: FIFO ordering, least-backlog placement for unpinned jobs."""

    name = "base"

    def next_job(
        self,
        waiting: Sequence[SchedJob],
        queue: DeviceServiceQueue,
        now: float,
    ) -> int:
        """Index into ``waiting`` (arrival-ordered) of the job to start."""
        return 0

    def select_device(
        self,
        job: SchedJob,
        queues: Mapping[str, DeviceServiceQueue],
        now: float,
    ) -> str:
        """Target device for a job (pinned jobs are returned as-is)."""
        if job.device_name is not None:
            return job.device_name
        return min(
            queues.values(), key=lambda q: (q.backlog_seconds(now), q.name)
        ).name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoPolicy(SchedulingPolicy):
    """First come, first served — the baseline every cloud queue starts as."""

    name = "fifo"


class PriorityPolicy(SchedulingPolicy):
    """Highest :attr:`SchedJob.priority` first; FIFO among equals."""

    name = "priority"

    def next_job(self, waiting, queue, now):
        return min(range(len(waiting)), key=lambda i: (-waiting[i].priority, i))


class FairSharePolicy(SchedulingPolicy):
    """Serve the tenant with the least accumulated device time.

    A tenant that floods the queue accrues service quickly and yields to
    light tenants, which bounds the latency a sparse tenant pays under a
    storm — the separation ``tests/test_sched`` pins against FIFO.
    """

    name = "fair_share"

    def next_job(self, waiting, queue, now):
        given = queue.service_given
        return min(
            range(len(waiting)),
            key=lambda i: (given.get(waiting[i].tenant, 0.0), i),
        )


class LeastLoadedPolicy(SchedulingPolicy):
    """Place unpinned jobs on the device with the smallest backlog."""

    name = "least_loaded"


class CalibrationAwarePolicy(SchedulingPolicy):
    """Place unpinned jobs on the freshest-calibrated available device.

    Devices inside a calibration window are penalized by their time until
    reopening; among open devices the one with the youngest calibration (the
    best expected ``PCorrect``, per the paper's Fig. 4 freshness effect) wins.
    """

    name = "calibration_aware"

    def select_device(self, job, queues, now):
        if job.device_name is not None:
            return job.device_name

        def key(q: DeviceServiceQueue):
            reopen = max(0.0, q.downtime_until - float(now))
            visible = max(float(now), q.downtime_until)
            return (reopen, q.qpu.hours_since_calibration(visible), q.name)

        return min(queues.values(), key=key).name


POLICY_REGISTRY: dict[str, type[SchedulingPolicy]] = {
    policy.name: policy
    for policy in (
        FifoPolicy,
        PriorityPolicy,
        FairSharePolicy,
        LeastLoadedPolicy,
        CalibrationAwarePolicy,
    )
}


def resolve_policy(policy: "SchedulingPolicy | str | None") -> SchedulingPolicy:
    """Normalize a policy argument (instance, registry name, or ``None``)."""
    if policy is None:
        return FifoPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICY_REGISTRY[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; "
            f"known: {sorted(POLICY_REGISTRY)}"
        ) from None
