"""Pluggable scheduling policies: who runs next, and on which device.

A :class:`SchedulingPolicy` answers the three questions a multi-tenant cloud
scheduler faces:

* **admission** — when a job reaches a device, does it enter the waiting
  list at all (:meth:`SchedulingPolicy.admit`; the default replicates the
  fixed background-job cap, :class:`BackpressurePolicy` sheds load smoothly
  against queue depth instead),
* **ordering** — when a device frees up, which waiting job starts
  (:meth:`SchedulingPolicy.next_job`), and
* **placement** — when a job arrives without a pinned device, where it goes
  (:meth:`SchedulingPolicy.select_device`).

All decisions are deterministic functions of queue state: ties break by
arrival order (ordering) or device name (placement), never by RNG or dict
iteration accidents, so policy sweeps are exactly reproducible.

:class:`StatisticalQueuePolicy` is the odd one out: it is the pre-kernel
closed-form queue model (lognormal congestion wait against the device's
``free_at``), kept as the :class:`~repro.cloud.provider.CloudProvider`
default so every seeded history recorded before the scheduler existed stays
bit-exact.  It never touches the event kernel.  (It lives in
:mod:`repro.cloud.queueing` next to the model it wraps, so the ``cloud``
layer never imports ``sched``; it is re-exported here as part of the policy
family.)
"""

from __future__ import annotations

import zlib
from typing import Mapping, Sequence

from ..cloud.queueing import StatisticalQueuePolicy
from .queues import DeviceServiceQueue, SchedJob

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "LeastLoadedPolicy",
    "CalibrationAwarePolicy",
    "BackpressurePolicy",
    "DeadlinePolicy",
    "StatisticalQueuePolicy",
    "POLICY_REGISTRY",
    "resolve_policy",
]


def _shed_hash(job_id: int) -> float:
    """Deterministic uniform-ish value in [0, 1) from a job id.

    Knuth's multiplicative hash: consecutive job ids (the common case — the
    scheduler assigns them monotonically) scatter across the unit interval,
    so fractional shedding drops an unbiased sample of a burst rather than a
    contiguous run of it, while staying a pure function of the id — two runs
    shed exactly the same jobs.
    """
    return ((job_id * 2654435761) & 0xFFFFFFFF) / 4294967296.0


class SchedulingPolicy:
    """Base policy: capped admission, FIFO ordering, least-backlog placement."""

    name = "base"

    def admit(
        self,
        job: SchedJob,
        queue: DeviceServiceQueue,
        now: float,
    ) -> bool:
        """Whether ``job`` may join ``queue.waiting`` (False = rejected).

        The default is the classic bounded queue: background jobs bounce off
        the device's ``max_queue_length`` cap, foreground (EQC) jobs always
        enter.  Policies may also annotate the job here (e.g.
        :class:`DeadlinePolicy` stamps ``job.deadline``).
        """
        return (
            job.foreground
            or queue.max_queue_length is None
            or queue.queue_length < queue.max_queue_length
        )

    def next_job(
        self,
        waiting: Sequence[SchedJob],
        queue: DeviceServiceQueue,
        now: float,
    ) -> int:
        """Index into ``waiting`` (arrival-ordered) of the job to start."""
        return 0

    def select_device(
        self,
        job: SchedJob,
        queues: Mapping[str, DeviceServiceQueue],
        now: float,
    ) -> str:
        """Target device for a job (pinned jobs are returned as-is)."""
        if job.device_name is not None:
            return job.device_name
        return min(
            queues.values(), key=lambda q: (q.backlog_seconds(now), q.name)
        ).name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoPolicy(SchedulingPolicy):
    """First come, first served — the baseline every cloud queue starts as."""

    name = "fifo"


class PriorityPolicy(SchedulingPolicy):
    """Highest :attr:`SchedJob.priority` first; FIFO among equals."""

    name = "priority"

    def next_job(self, waiting, queue, now):
        best = 0
        best_priority = waiting[0].priority
        for i in range(1, len(waiting)):
            p = waiting[i].priority
            if p > best_priority:
                best, best_priority = i, p
        return best


class FairSharePolicy(SchedulingPolicy):
    """Serve the tenant with the least accumulated device time.

    A tenant that floods the queue accrues service quickly and yields to
    light tenants, which bounds the latency a sparse tenant pays under a
    storm — the separation ``tests/test_sched`` pins against FIFO.
    """

    name = "fair_share"

    def next_job(self, waiting, queue, now):
        given = queue.service_given
        get = given.get
        best = 0
        best_given = get(waiting[0].tenant, 0.0)
        for i in range(1, len(waiting)):
            g = get(waiting[i].tenant, 0.0)
            if g < best_given:
                best, best_given = i, g
        return best


class LeastLoadedPolicy(SchedulingPolicy):
    """Place unpinned jobs on the device with the smallest backlog."""

    name = "least_loaded"


class CalibrationAwarePolicy(SchedulingPolicy):
    """Place unpinned jobs on the freshest-calibrated available device.

    Devices inside a calibration window are penalized by their time until
    reopening; among open devices the one with the youngest calibration (the
    best expected ``PCorrect``, per the paper's Fig. 4 freshness effect) wins.
    """

    name = "calibration_aware"

    def select_device(self, job, queues, now):
        if job.device_name is not None:
            return job.device_name

        def key(q: DeviceServiceQueue):
            reopen = max(0.0, q.downtime_until - float(now))
            visible = max(float(now), q.downtime_until)
            return (reopen, q.qpu.hours_since_calibration(visible), q.name)

        return min(queues.values(), key=key).name


class BackpressurePolicy(SchedulingPolicy):
    """Shed background load smoothly against queue depth (CodaLab-style).

    Instead of a hard cliff at the admission cap, the gate opens fully below
    ``low_watermark`` waiting jobs, closes fully at ``high_watermark``, and
    sheds a deterministic fraction of arrivals in between (the fill fraction,
    compared against a multiplicative hash of the job id — no RNG, so two
    runs shed identical jobs).  Early shedding keeps queues short: what *is*
    admitted waits far less, and foreground jobs — always admitted — see a
    near-empty device instead of a saturated one.  The hard cap still holds
    as a final backstop.  Ordering stays FIFO.
    """

    name = "backpressure"

    def __init__(self, low_watermark: int = 8, high_watermark: int = 24) -> None:
        if not 0 <= low_watermark < high_watermark:
            raise ValueError("need 0 <= low_watermark < high_watermark")
        self.low_watermark = int(low_watermark)
        self.high_watermark = int(high_watermark)

    def admit(self, job, queue, now):
        if job.foreground:
            return True
        depth = queue.queue_length
        cap = queue.max_queue_length
        if cap is not None and depth >= cap:
            return False
        if depth < self.low_watermark:
            return True
        if depth >= self.high_watermark:
            return False
        fill = (depth - self.low_watermark) / (
            self.high_watermark - self.low_watermark
        )
        return _shed_hash(job.job_id) >= fill

    def __repr__(self) -> str:
        return (
            f"BackpressurePolicy(low={self.low_watermark}, "
            f"high={self.high_watermark})"
        )


class DeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first with per-tenant deadline tiers.

    Admission stamps every job with an absolute deadline: foreground jobs
    get a tight slack (EQC training epochs are latency-critical), background
    tenants land in one of ``tier_slacks`` by a stable hash of their name —
    a fixed community mix of interactive, batch, and bulk users.  When the
    device frees up, the waiting job with the earliest deadline starts, so
    interactive work overtakes bulk work exactly when it matters and the
    bulk tier absorbs the queueing.  Admission keeps the default cap.
    """

    name = "deadline"

    def __init__(
        self,
        foreground_slack: float = 600.0,
        tier_slacks: Sequence[float] = (900.0, 3600.0, 7200.0),
    ) -> None:
        if foreground_slack <= 0 or any(s <= 0 for s in tier_slacks):
            raise ValueError("deadline slacks must be positive")
        self.foreground_slack = float(foreground_slack)
        self.tier_slacks = tuple(float(s) for s in tier_slacks)

    def slack_for(self, job: SchedJob) -> float:
        if job.foreground:
            return self.foreground_slack
        tier = zlib.crc32(job.tenant.encode()) % len(self.tier_slacks)
        return self.tier_slacks[tier]

    def admit(self, job, queue, now):
        if not super().admit(job, queue, now):
            return False
        if job.deadline is None:
            job.deadline = float(now) + self.slack_for(job)
        return True

    def next_job(self, waiting, queue, now):
        best = 0
        first = waiting[0].deadline
        best_deadline = first if first is not None else float("inf")
        for i in range(1, len(waiting)):
            d = waiting[i].deadline
            if d is None:
                d = float("inf")
            if d < best_deadline:
                best, best_deadline = i, d
        return best

    def __repr__(self) -> str:
        return (
            f"DeadlinePolicy(foreground={self.foreground_slack}, "
            f"tiers={self.tier_slacks})"
        )


POLICY_REGISTRY: dict[str, type[SchedulingPolicy]] = {
    policy.name: policy
    for policy in (
        FifoPolicy,
        PriorityPolicy,
        FairSharePolicy,
        LeastLoadedPolicy,
        CalibrationAwarePolicy,
        BackpressurePolicy,
        DeadlinePolicy,
    )
}


def resolve_policy(policy: "SchedulingPolicy | str | None") -> SchedulingPolicy:
    """Normalize a policy argument (instance, registry name, or ``None``)."""
    if policy is None:
        return FifoPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICY_REGISTRY[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; "
            f"known: {sorted(POLICY_REGISTRY)}"
        ) from None
