"""Synthetic background tenant traffic for the multi-tenant cloud.

The paper motivates EQC with devices shared by a whole community: queue
delays are congestion-dependent because *other people's jobs* are in front of
yours.  The :class:`WorkloadGenerator` makes that literal — it injects a
Poisson stream of tenant jobs per device into the event kernel, so EQC
gradient jobs genuinely compete for capacity-1 devices instead of sampling a
closed-form wait.

Arrival rates follow the same structure as the statistical
:class:`~repro.cloud.queueing.QueueModel` they replace: each device's rate is
the fleet-wide tenant rate scaled by the device's ``popularity`` (users pile
onto well-rated devices) and its diurnal ``congestion_factor`` (community
load swings by time of day).  The process is a piecewise-homogeneous
approximation of the non-homogeneous Poisson process: each inter-arrival gap
is drawn at the rate in force when the previous arrival fired, which is
accurate because the rate varies on a multi-hour scale while gaps are
seconds to minutes.

Determinism: every device draws from its own kernel RNG stream
(``workload/<device>``), so the traffic on one device is a pure function of
the kernel seed — independent of fleet composition order or of how far other
devices have been simulated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..cloud.clock import SECONDS_PER_HOUR
from ..cloud.queueing import QueueModel
from .queues import EVENT_PRIORITY, DeviceServiceQueue, SchedJob

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import CloudScheduler

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Poisson background tenant traffic across a device fleet.

    Attributes:
        num_tenants: size of the simulated community (0 disables traffic).
        jobs_per_tenant_hour: fleet-wide submission rate per tenant before
            popularity/diurnal scaling.
        circuit_range: inclusive (lo, hi) batch size of one tenant job.
        max_priority: tenant jobs draw a priority in [0, max_priority]
            (0 keeps every tenant job at the EQC default priority).
    """

    def __init__(
        self,
        num_tenants: int,
        jobs_per_tenant_hour: float = 1.0,
        circuit_range: tuple[int, int] = (2, 8),
        max_priority: int = 0,
    ) -> None:
        if num_tenants < 0:
            raise ValueError("num_tenants must be non-negative")
        if jobs_per_tenant_hour <= 0:
            raise ValueError("jobs_per_tenant_hour must be positive")
        lo, hi = circuit_range
        if not 1 <= lo <= hi:
            raise ValueError("circuit_range must satisfy 1 <= lo <= hi")
        if max_priority < 0:
            raise ValueError("max_priority must be non-negative")
        self.num_tenants = int(num_tenants)
        self.jobs_per_tenant_hour = float(jobs_per_tenant_hour)
        self.circuit_range = (int(lo), int(hi))
        self.max_priority = int(max_priority)
        self.jobs_injected = 0

    # ------------------------------------------------------------------
    def arrival_rate(self, model: QueueModel, now: float) -> float:
        """Instantaneous arrivals/second on one device at time ``now``."""
        if self.num_tenants == 0:
            return 0.0
        base = self.num_tenants * self.jobs_per_tenant_hour / SECONDS_PER_HOUR
        return base * model.popularity * model.congestion_factor(now)

    # ------------------------------------------------------------------
    def attach(self, scheduler: "CloudScheduler") -> None:
        """Arm the first arrival event on every registered device."""
        if self.num_tenants == 0:
            return
        for queue in scheduler.queues.values():
            rng = scheduler.kernel.rng_stream(f"workload/{queue.name}")
            self._schedule_next(scheduler, queue, rng, now=scheduler.kernel.now)

    def _schedule_next(
        self,
        scheduler: "CloudScheduler",
        queue: DeviceServiceQueue,
        rng: np.random.Generator,
        now: float,
    ) -> None:
        rate = self.arrival_rate(queue.queue_model, now)
        if rate <= 0.0:
            return
        gap = float(rng.exponential(1.0 / rate))
        scheduler.kernel.schedule(
            now + gap,
            lambda t: self._on_arrival(scheduler, queue, rng, t),
            priority=EVENT_PRIORITY["arrival"],
            kind="tenant_arrival",
        )

    def _on_arrival(
        self,
        scheduler: "CloudScheduler",
        queue: DeviceServiceQueue,
        rng: np.random.Generator,
        now: float,
    ) -> None:
        lo, hi = self.circuit_range
        job = SchedJob(
            job_id=scheduler.next_job_id(),
            tenant=f"tenant{int(rng.integers(self.num_tenants))}",
            device_name=queue.name,
            arrival_time=now,
            num_circuits=int(rng.integers(lo, hi + 1)),
            priority=int(rng.integers(self.max_priority + 1)),
        )
        self.jobs_injected += 1
        queue.on_arrival(job, now)
        self._schedule_next(scheduler, queue, rng, now)
