"""Synthetic background tenant traffic for the multi-tenant cloud.

The paper motivates EQC with devices shared by a whole community: queue
delays are congestion-dependent because *other people's jobs* are in front of
yours.  The :class:`WorkloadGenerator` makes that literal — it injects a
Poisson stream of tenant jobs per device into the event kernel, so EQC
gradient jobs genuinely compete for capacity-1 devices instead of sampling a
closed-form wait.

Arrival rates follow the same structure as the statistical
:class:`~repro.cloud.queueing.QueueModel` they replace: each device's rate is
the fleet-wide tenant rate scaled by the device's ``popularity`` (users pile
onto well-rated devices) and its diurnal ``congestion_factor`` (community
load swings by time of day).  The process is a piecewise-homogeneous
approximation of the non-homogeneous Poisson process, generated in
**vectorized chunks**: the rate is frozen at the chunk's start time, a whole
block of inter-arrival gaps is drawn with one ``numpy`` call and accumulated
into absolute timestamps, and the tenant/batch-size/priority marks of the
chunk are drawn as three array calls from a second per-device stream.  The
chunk spans roughly ``chunk_refresh_seconds`` of simulated time (clamped to
``max_chunk`` arrivals), so the rate still tracks the multi-hour diurnal
curve while the kernel admits arrivals thousands at a time through
:meth:`~repro.sched.kernel.EventKernel.schedule_batch` instead of one heap
push and one RNG scalar draw per job.

Determinism: every device draws from two kernel RNG streams of its own
(``workload/<device>`` for gaps, ``workload/<device>/marks`` for job marks),
so the traffic on one device is a pure function of the kernel seed —
independent of fleet composition order or of how far other devices have been
simulated.  Batched and sequential admission (``batch_arrivals``) share the
same chunk generator, so they consume the RNG identically and agree
bit-for-bit on every arrival timestamp and job mark — a property pinned by
``tests/test_sched/test_workload.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..cloud.clock import SECONDS_PER_HOUR
from ..cloud.queueing import QueueModel
from .queues import EVENT_PRIORITY, DeviceServiceQueue, SchedJob

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import CloudScheduler

__all__ = ["WorkloadGenerator"]


class _DeviceArrivalStream:
    """Chunked arrival state for one device: timestamps, marks, a cursor.

    One chunk = one frozen-rate block of presorted arrival timestamps plus
    the per-arrival marks (tenant, circuits, priority) drawn up front.  The
    stream refills itself: firing the last arrival of a chunk generates and
    admits the next one, with the rate re-evaluated at that arrival's time.
    """

    __slots__ = (
        "workload",
        "scheduler",
        "queue",
        "gaps_rng",
        "marks_rng",
        "times",
        "tenants",
        "circuits",
        "priorities",
        "cursor",
    )

    def __init__(
        self,
        workload: "WorkloadGenerator",
        scheduler: "CloudScheduler",
        queue: DeviceServiceQueue,
        gaps_rng: np.random.Generator,
        marks_rng: np.random.Generator,
    ) -> None:
        self.workload = workload
        self.scheduler = scheduler
        self.queue = queue
        self.gaps_rng = gaps_rng
        self.marks_rng = marks_rng
        self.times: list[float] = []
        self.tenants: list[int] = []
        self.circuits: list[int] = []
        self.priorities: list[int] = []
        self.cursor = 0

    # ------------------------------------------------------------------
    def generate_chunk(self, t0: float) -> bool:
        """Draw the next chunk starting from time ``t0``; False when idle.

        RNG protocol (the bit-exactness contract): from the gaps stream, one
        ``standard_exponential(size=K)`` call; timestamps are
        ``t0 + cumsum(gaps / rate)``.  From the marks stream, exactly three
        calls — ``integers(num_tenants, size=K)``, ``integers(lo, hi+1,
        size=K)``, ``integers(max_priority+1, size=K)`` — in that order.
        """
        workload = self.workload
        rate = workload.arrival_rate(self.queue.queue_model, t0)
        if rate <= 0.0:
            return False
        size = int(rate * workload.chunk_refresh_seconds)
        size = max(1, min(workload.max_chunk, size))
        gaps = self.gaps_rng.standard_exponential(size)
        times = t0 + np.cumsum(gaps / rate)
        lo, hi = workload.circuit_range
        self.times = times.tolist()
        self.tenants = self.marks_rng.integers(
            workload.num_tenants, size=size
        ).tolist()
        self.circuits = self.marks_rng.integers(lo, hi + 1, size=size).tolist()
        self.priorities = self.marks_rng.integers(
            workload.max_priority + 1, size=size
        ).tolist()
        self.cursor = 0
        return True

    def admit_chunk(self) -> None:
        """Hand the current chunk's timestamps to the kernel."""
        kernel = self.scheduler.kernel
        if self.workload.batch_arrivals:
            kernel.schedule_batch(
                np.asarray(self.times),
                self.fire,
                priority=EVENT_PRIORITY["arrival"],
                kind="tenant_arrival",
            )
        else:
            # Sequential reference path: one event at a time, next armed by
            # the previous one's firing.  Same chunks, same RNG, same times.
            kernel.schedule(
                self.times[0],
                self.fire,
                priority=EVENT_PRIORITY["arrival"],
                kind="tenant_arrival",
            )

    # ------------------------------------------------------------------
    def fire(self, now: float) -> None:
        """One arrival: build the job from precomputed marks, inject, refill."""
        workload = self.workload
        i = self.cursor
        self.cursor = i + 1
        job = SchedJob(
            job_id=self.scheduler.next_job_id(),
            tenant=workload.tenant_name(self.tenants[i]),
            device_name=self.queue.name,
            arrival_time=now,
            num_circuits=self.circuits[i],
            priority=self.priorities[i],
        )
        workload.jobs_injected += 1
        self.queue.on_arrival(job, now)
        if self.cursor >= len(self.times):
            # Chunk exhausted: refill with the rate in force at this arrival.
            if self.generate_chunk(now):
                self.admit_chunk()
        elif not workload.batch_arrivals:
            self.scheduler.kernel.schedule(
                self.times[self.cursor],
                self.fire,
                priority=EVENT_PRIORITY["arrival"],
                kind="tenant_arrival",
            )


class WorkloadGenerator:
    """Poisson background tenant traffic across a device fleet.

    Attributes:
        num_tenants: size of the simulated community (0 disables traffic).
        jobs_per_tenant_hour: fleet-wide submission rate per tenant before
            popularity/diurnal scaling.
        circuit_range: inclusive (lo, hi) batch size of one tenant job.
        max_priority: tenant jobs draw a priority in [0, max_priority]
            (0 keeps every tenant job at the EQC default priority).
        chunk_refresh_seconds: target simulated span of one vectorized
            arrival chunk — the rate is frozen within a chunk, so this is
            the resolution at which the diurnal curve is tracked.
        max_chunk: hard cap on arrivals per chunk (bounds memory and how
            long a hot device can outrun a rate change).
        spread_load: when True, per-device rates are normalized by the
            fleet's total popularity, so a fixed tenant community *spreads*
            across however many devices are registered instead of offering
            the full community load to every device independently.  This is
            the fleet-scaling mode the tournament sweeps; the default False
            keeps the historical per-device semantics.
        batch_arrivals: admit chunks via ``schedule_batch`` (fast path).
            False replays the identical chunks one kernel event at a time —
            the reference mode the bit-exactness tests compare against.
    """

    def __init__(
        self,
        num_tenants: int,
        jobs_per_tenant_hour: float = 1.0,
        circuit_range: tuple[int, int] = (2, 8),
        max_priority: int = 0,
        chunk_refresh_seconds: float = 900.0,
        max_chunk: int = 4096,
        spread_load: bool = False,
        batch_arrivals: bool = True,
    ) -> None:
        if num_tenants < 0:
            raise ValueError("num_tenants must be non-negative")
        if jobs_per_tenant_hour <= 0:
            raise ValueError("jobs_per_tenant_hour must be positive")
        lo, hi = circuit_range
        if not 1 <= lo <= hi:
            raise ValueError("circuit_range must satisfy 1 <= lo <= hi")
        if max_priority < 0:
            raise ValueError("max_priority must be non-negative")
        if chunk_refresh_seconds <= 0:
            raise ValueError("chunk_refresh_seconds must be positive")
        if max_chunk < 1:
            raise ValueError("max_chunk must be at least 1")
        self.num_tenants = int(num_tenants)
        self.jobs_per_tenant_hour = float(jobs_per_tenant_hour)
        self.circuit_range = (int(lo), int(hi))
        self.max_priority = int(max_priority)
        self.chunk_refresh_seconds = float(chunk_refresh_seconds)
        self.max_chunk = int(max_chunk)
        self.spread_load = bool(spread_load)
        self.batch_arrivals = bool(batch_arrivals)
        self.jobs_injected = 0
        self._popularity_scale = 1.0
        self._tenant_names: dict[int, str] = {}

    # ------------------------------------------------------------------
    def tenant_name(self, index: int) -> str:
        """Interned ``tenant<i>`` string (10k tenants → 10k cached names)."""
        name = self._tenant_names.get(index)
        if name is None:
            name = f"tenant{index}"
            self._tenant_names[index] = name
        return name

    def arrival_rate(self, model: QueueModel, now: float) -> float:
        """Instantaneous arrivals/second on one device at time ``now``."""
        if self.num_tenants == 0:
            return 0.0
        base = self.num_tenants * self.jobs_per_tenant_hour / SECONDS_PER_HOUR
        return (
            base
            * model.popularity
            * self._popularity_scale
            * model.congestion_factor(now)
        )

    # ------------------------------------------------------------------
    def attach(self, scheduler: "CloudScheduler") -> None:
        """Arm the first arrival chunk on every registered device."""
        if self.num_tenants == 0:
            return
        if self.spread_load:
            total = sum(
                q.queue_model.popularity for q in scheduler.queues.values()
            )
            self._popularity_scale = 1.0 / total if total > 0 else 1.0
        now = scheduler.kernel.now
        for queue in scheduler.queues.values():
            stream = _DeviceArrivalStream(
                workload=self,
                scheduler=scheduler,
                queue=queue,
                gaps_rng=scheduler.kernel.rng_stream(f"workload/{queue.name}"),
                marks_rng=scheduler.kernel.rng_stream(
                    f"workload/{queue.name}/marks"
                ),
            )
            if stream.generate_chunk(now):
                stream.admit_chunk()
