"""The discrete-event kernel: one heap, one clock, deterministic replay.

Everything the multi-tenant cloud does — job arrivals, service starts and
completions, calibration downtime windows, background tenant traffic — fires
through a single binary heap.  The kernel pops entries in
``(time, priority, sequence)`` order, so two runs with the same seeds process
exactly the same events in exactly the same order, which is the property every
scheduling experiment in this reproduction leans on.

The fleet-scale rework keeps that contract while cutting the per-event cost
by roughly an order of magnitude.  Three mechanisms:

* **Sorted runs** (:meth:`EventKernel.schedule_batch`).  A batch of timestamps
  sharing one action is admitted as a single *run*: the timestamps are sorted
  once (numpy, C speed) and the run contributes exactly one cursor entry to
  the heap.  Popping the cursor fires the head timestamp and pushes the next
  one back, so a million-event arrival stream costs heap operations on a
  heap of size ~(runs + single events), not one million pushes on a
  million-entry heap — tuple comparisons per pop drop from ~20 to ~1.  The
  drain loops additionally fire consecutive run elements inline while they
  remain ahead of the rest of the heap (re-checking the heap top after every
  action, so an action that schedules an earlier event is never overtaken).
* **Cheap events.**  :class:`Event` is a ``__slots__`` class, and the heap
  entry carries the action callable directly so the hot loops never touch
  event attributes.
* **Lazy cancellation with a compaction sweep.**  ``Event.cancel()`` only
  flips a flag; dead entries are discarded when popped.  The kernel counts
  cancelled-but-pending events and, when more than half of the heap is dead,
  sweeps it in place (filter + ``heapify``), so pathological cancel storms
  cannot leave the heap dominated by corpses.

Two design points deserve a note:

* **The clock is a high-water mark.**  The kernel shares the cloud's
  :class:`~repro.cloud.clock.VirtualClock`; every processed event advances it
  with ``advance_to`` semantics (a documented no-op for past timestamps).
  The EQC master replays job completions out of submission order (it pops the
  *earliest* finish among in-flight jobs, then dispatches at that time), so an
  EQC submission may carry a timestamp older than the furthest point the
  kernel has already simulated.  Such events are legal: they are heap-ordered
  against all *pending* events by their own timestamp, they execute with that
  timestamp, and they simply cannot rewind work the kernel already committed
  (a late submission queues behind already-simulated traffic on its device,
  exactly as it would on a real cloud).
* **RNG streams are per label.**  :meth:`EventKernel.rng_stream` derives an
  independent ``numpy`` generator from ``(kernel seed, crc32(label))``, so the
  tenant-arrival randomness of one device never depends on how many draws
  another device consumed — scheduling order cannot leak into the statistics.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Callable

import numpy as np

from ..cloud.clock import VirtualClock

__all__ = ["Event", "EventKernel"]

#: An event's behaviour: called with the event's timestamp when it fires.
EventAction = Callable[[float], None]

#: Below this many heap entries a compaction sweep is not worth the heapify.
_COMPACTION_MIN_HEAP = 64


class Event:
    """One cancellable scheduled occurrence, ordered by ``(time, priority, sequence)``.

    ``priority`` breaks ties among simultaneous events (lower fires first);
    ``sequence`` is a kernel-assigned monotone counter that makes the order
    total and therefore deterministic.  The kernel stores the ordering key
    as a plain tuple on its heap (tuple comparison runs in C, which is most
    of the kernel's throughput), so the event itself is never compared.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "kind",
        "action",
        "cancelled",
        "_kernel",
        "_pending",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        kind: str = "event",
        action: EventAction | None = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.kind = kind
        self.action = action
        self.cancelled = cancelled
        #: Owning kernel, set by :meth:`EventKernel.schedule`; the back
        #: reference lets ``cancel()`` keep the kernel's live/dead accounting
        #: exact so the compaction sweep can trigger at the right moment.
        self._kernel: "EventKernel | None" = None
        self._pending = False

    def cancel(self) -> None:
        """Mark the event dead; the kernel discards it when popped (or sweeps
        it early once dead entries dominate the heap)."""
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None and self._pending:
            kernel._note_cancelled()

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return (
            f"Event(t={self.time:.3f}, prio={self.priority}, "
            f"seq={self.sequence}, kind={self.kind!r}, {state})"
        )


class _Run:
    """A batch of presorted timestamps sharing one action.

    The run keeps exactly one entry on the kernel heap — its cursor.  Firing
    the cursor advances it and re-pushes the next timestamp, so the heap size
    is bounded by the number of *runs*, not the number of batched events.
    Run elements are not individually cancellable (they carry no Event).
    """

    __slots__ = ("times", "count", "index", "priority", "seq0", "kind", "action")

    def __init__(
        self,
        times: list[float],
        priority: int,
        seq0: int,
        kind: str,
        action: EventAction,
    ) -> None:
        self.times = times
        self.count = len(times)
        self.index = 0
        self.priority = priority
        #: First sequence number of the block; element ``i`` owns ``seq0 + i``.
        self.seq0 = seq0
        self.kind = kind
        self.action = action

    @property
    def remaining(self) -> int:
        return self.count - self.index


class EventKernel:
    """A deterministic discrete-event simulation kernel."""

    def __init__(self, clock: VirtualClock | None = None, seed: int = 0) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.seed = int(seed)
        #: Heap of ``(time, priority, sequence, action, payload)`` where the
        #: payload is an :class:`Event` (single, cancellable) or a
        #: :class:`_Run` cursor (batched).  The unique sequence guarantees
        #: neither payload is ever compared.
        self._heap: list[tuple] = []
        self._seq = 0
        self._cancelled_on_heap = 0
        self._live = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """High-water mark of simulated time (seconds)."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still awaiting dispatch."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap entries (runs count once; includes dead events)."""
        return len(self._heap)

    def next_event_time(self) -> float | None:
        """Timestamp of the earliest live pending event (``None`` if empty)."""
        heap = self._heap
        while heap:
            payload = heap[0][4]
            if payload.__class__ is Event and payload.cancelled:
                heapq.heappop(heap)
                payload._pending = False
                self._cancelled_on_heap -= 1
                continue
            return heap[0][0]
        return None

    # ------------------------------------------------------------------
    def rng_stream(self, label: str) -> np.random.Generator:
        """An independent, reproducible RNG stream for one named entity.

        The stream depends only on the kernel seed and the label (via a
        stable CRC-32, never Python's randomized ``hash``), so per-device
        randomness is identical across runs and across event interleavings.
        """
        return np.random.default_rng((self.seed, zlib.crc32(label.encode()), 0xE7E7))

    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        action: EventAction,
        priority: int = 0,
        kind: str = "event",
    ) -> Event:
        """Add one event to the heap and return it (for cancellation)."""
        if time < 0:
            raise ValueError("events cannot be scheduled before t=0")
        seq = self._seq
        self._seq = seq + 1
        event = Event(float(time), int(priority), seq, kind, action)
        event._kernel = self
        event._pending = True
        heapq.heappush(self._heap, (event.time, event.priority, seq, action, event))
        self._live += 1
        return event

    def schedule_batch(
        self,
        times,
        action: EventAction,
        priority: int = 0,
        kind: str = "batch",
    ) -> int:
        """Admit a whole batch of events sharing one ``action`` at once.

        The timestamps are sorted (no-op when already non-decreasing, the
        common case for arrival streams) and enter the heap as a single
        sorted-run cursor, so admission is O(n log n) in C rather than n
        Python-level heap pushes, and dispatch never pays for the batch's
        size in heap depth.  Each element receives its own sequence number
        (allocated as one contiguous block, in time order), so ordering
        against single events is exactly as if the batch had been scheduled
        element-by-element.  Returns the number of admitted events.

        Run elements are not individually cancellable; use :meth:`schedule`
        when a handle is needed.
        """
        if action is None:
            raise ValueError("schedule_batch requires an action")
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("schedule_batch expects a 1-D array of timestamps")
        n = int(arr.size)
        if n == 0:
            return 0
        if not np.isfinite(arr).all():
            raise ValueError("batch timestamps must be finite")
        if float(arr.min()) < 0.0:
            raise ValueError("events cannot be scheduled before t=0")
        if n > 1 and bool((np.diff(arr) < 0).any()):
            arr = np.sort(arr)
        seq0 = self._seq
        self._seq = seq0 + n
        run = _Run(arr.tolist(), int(priority), seq0, kind, action)
        heapq.heappush(self._heap, (run.times[0], run.priority, seq0, action, run))
        self._live += n
        return n

    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Account one newly dead pending event; sweep when corpses dominate."""
        self._live -= 1
        self._cancelled_on_heap += 1
        heap = self._heap
        if (
            self._cancelled_on_heap * 2 > len(heap)
            and len(heap) >= _COMPACTION_MIN_HEAP
        ):
            survivors = []
            for entry in heap:
                payload = entry[4]
                if payload.__class__ is Event and payload.cancelled:
                    payload._pending = False
                else:
                    survivors.append(entry)
            # In place: the drain loops hold a reference to this exact list.
            heap[:] = survivors
            heapq.heapify(heap)
            self._cancelled_on_heap = 0

    # ------------------------------------------------------------------
    def _fire_one(self) -> tuple | None:
        """Pop and fire the earliest live event; returns its heap entry.

        Shared by :meth:`step` and :meth:`run_until`; the bulk drain in
        :meth:`run_until_time` inlines the same logic for throughput.
        """
        heap = self._heap
        clock = self.clock
        while heap:
            entry = heapq.heappop(heap)
            payload = entry[4]
            if payload.__class__ is _Run:
                run = payload
                i = run.index + 1
                run.index = i
                if i < run.count:
                    heapq.heappush(
                        heap,
                        (run.times[i], run.priority, run.seq0 + i, run.action, run),
                    )
            elif payload.cancelled:
                self._cancelled_on_heap -= 1
                payload._pending = False
                continue
            else:
                payload._pending = False
            time_ = entry[0]
            if time_ > clock._now:  # inlined VirtualClock.advance_to (no-op past)
                clock._now = time_
            self.events_processed += 1
            self._live -= 1
            action = entry[3]
            if action is not None:
                action(time_)
            return entry
        return None

    def step(self) -> Event | None:
        """Pop and execute the earliest live event (``None`` when drained).

        Batched (run) events have no persistent handle; ``step`` returns a
        transient :class:`Event` describing the firing.
        """
        entry = self._fire_one()
        if entry is None:
            return None
        payload = entry[4]
        if payload.__class__ is Event:
            return payload
        return Event(entry[0], entry[1], entry[2], kind=payload.kind, action=entry[3])

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_events: int = 50_000_000,
    ) -> int:
        """Process events until ``predicate()`` holds; returns events run.

        Raises ``RuntimeError`` if the heap drains (or ``max_events`` is hit)
        before the predicate is satisfied — a scheduler deadlock is a bug, not
        a quiet hang.
        """
        processed = 0
        while not predicate():
            if processed >= max_events:
                raise RuntimeError(
                    f"run_until exceeded {max_events} events without satisfying "
                    "its predicate (runaway workload or scheduler deadlock)"
                )
            if self._fire_one() is None:
                raise RuntimeError(
                    "event heap drained before run_until's predicate held"
                )
            processed += 1
        return processed

    def run_until_time(self, timestamp: float) -> int:
        """Process every pending event with ``time <= timestamp``.

        This is the bulk drain loop: consecutive elements of a sorted run
        fire inline, without per-element heap traffic, for as long as they
        remain strictly ahead of every other pending entry (the heap top is
        re-checked after each action, so anything an action schedules —
        including a past-timestamped replay — is dispatched in exact
        ``(time, priority, sequence)`` order).
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        clock = self.clock
        processed = 0
        while heap:
            if heap[0][0] > timestamp:
                break
            entry = pop(heap)
            time_, priority, _seq, action, payload = entry
            if payload.__class__ is _Run:
                run = payload
                times = run.times
                count = run.count
                seq0 = run.seq0
                i = run.index
                while True:
                    if time_ > clock._now:  # inlined advance_to (no-op past)
                        clock._now = time_
                    processed += 1
                    action(time_)
                    i += 1
                    if i >= count:
                        run.index = i
                        break
                    next_time = times[i]
                    if next_time > timestamp:
                        run.index = i
                        push(heap, (next_time, priority, seq0 + i, action, run))
                        break
                    if heap:
                        top = heap[0]
                        top_time = top[0]
                        if next_time > top_time or (
                            next_time == top_time
                            and (priority, seq0 + i) > (top[1], top[2])
                        ):
                            run.index = i
                            push(heap, (next_time, priority, seq0 + i, action, run))
                            break
                    time_ = next_time
                continue
            if payload.cancelled:
                self._cancelled_on_heap -= 1
                payload._pending = False
                continue
            payload._pending = False
            if time_ > clock._now:  # inlined advance_to (no-op past)
                clock._now = time_
            processed += 1
            if action is not None:
                action(time_)
        self.events_processed += processed
        self._live -= processed
        self.clock.advance_to(timestamp)
        return processed

    def __repr__(self) -> str:
        return (
            f"EventKernel(t={self.now:.1f}s, pending={self.pending}, "
            f"processed={self.events_processed})"
        )
