"""The discrete-event kernel: one heap, one clock, deterministic replay.

Everything the multi-tenant cloud does — job arrivals, service starts and
completions, calibration downtime windows, background tenant traffic — is an
:class:`Event` on a single binary heap.  The kernel pops events in
``(time, priority, sequence)`` order, so two runs with the same seeds process
exactly the same events in exactly the same order, which is the property every
scheduling experiment in this reproduction leans on.

Two design points deserve a note:

* **The clock is a high-water mark.**  The kernel shares the cloud's
  :class:`~repro.cloud.clock.VirtualClock`; every processed event calls
  ``advance_to(event.time)``, which is a documented no-op for past timestamps.
  The EQC master replays job completions out of submission order (it pops the
  *earliest* finish among in-flight jobs, then dispatches at that time), so an
  EQC submission may carry a timestamp older than the furthest point the
  kernel has already simulated.  Such events are legal: they are heap-ordered
  against all *pending* events by their own timestamp, they execute with that
  timestamp, and they simply cannot rewind work the kernel already committed
  (a late submission queues behind already-simulated traffic on its device,
  exactly as it would on a real cloud).
* **RNG streams are per label.**  :meth:`EventKernel.rng_stream` derives an
  independent ``numpy`` generator from ``(kernel seed, crc32(label))``, so the
  tenant-arrival randomness of one device never depends on how many draws
  another device consumed — scheduling order cannot leak into the statistics.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cloud.clock import VirtualClock

__all__ = ["Event", "EventKernel"]

#: An event's behaviour: called with the event's timestamp when it fires.
EventAction = Callable[[float], None]


@dataclass
class Event:
    """One scheduled occurrence, ordered by ``(time, priority, sequence)``.

    ``priority`` breaks ties among simultaneous events (lower fires first);
    ``sequence`` is a kernel-assigned monotone counter that makes the order
    total and therefore deterministic.  The kernel stores the ordering key
    as a plain tuple on its heap (tuple comparison runs in C, which is most
    of the kernel's throughput), so the dataclass itself is not ordered.
    """

    time: float
    priority: int
    sequence: int
    kind: str = "event"
    action: EventAction | None = None
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event dead; the kernel discards it when popped."""
        self.cancelled = True

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)


class EventKernel:
    """A deterministic discrete-event simulation kernel."""

    def __init__(self, clock: VirtualClock | None = None, seed: int = 0) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.seed = int(seed)
        #: Heap of ``(time, priority, sequence, Event)``; the unique sequence
        #: guarantees the Event object itself is never compared.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """High-water mark of simulated time (seconds)."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    def next_event_time(self) -> float | None:
        """Timestamp of the earliest live pending event (``None`` if empty)."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    def rng_stream(self, label: str) -> np.random.Generator:
        """An independent, reproducible RNG stream for one named entity.

        The stream depends only on the kernel seed and the label (via a
        stable CRC-32, never Python's randomized ``hash``), so per-device
        randomness is identical across runs and across event interleavings.
        """
        return np.random.default_rng((self.seed, zlib.crc32(label.encode()), 0xE7E7))

    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        action: EventAction,
        priority: int = 0,
        kind: str = "event",
    ) -> Event:
        """Add an event to the heap and return it (for cancellation)."""
        if time < 0:
            raise ValueError("events cannot be scheduled before t=0")
        event = Event(
            time=float(time),
            priority=int(priority),
            sequence=next(self._sequence),
            kind=kind,
            action=action,
        )
        heapq.heappush(self._heap, (event.time, event.priority, event.sequence, event))
        return event

    def step(self) -> Event | None:
        """Pop and execute the earliest live event (``None`` when drained)."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self.events_processed += 1
            if event.action is not None:
                event.action(event.time)
            return event
        return None

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_events: int = 50_000_000,
    ) -> int:
        """Process events until ``predicate()`` holds; returns events run.

        Raises ``RuntimeError`` if the heap drains (or ``max_events`` is hit)
        before the predicate is satisfied — a scheduler deadlock is a bug, not
        a quiet hang.
        """
        processed = 0
        while not predicate():
            if processed >= max_events:
                raise RuntimeError(
                    f"run_until exceeded {max_events} events without satisfying "
                    "its predicate (runaway workload or scheduler deadlock)"
                )
            if self.step() is None:
                raise RuntimeError(
                    "event heap drained before run_until's predicate held"
                )
            processed += 1
        return processed

    def run_until_time(self, timestamp: float) -> int:
        """Process every pending event with ``time <= timestamp``."""
        processed = 0
        while True:
            upcoming = self.next_event_time()
            if upcoming is None or upcoming > timestamp:
                break
            self.step()
            processed += 1
        self.clock.advance_to(timestamp)
        return processed

    def __repr__(self) -> str:
        return (
            f"EventKernel(t={self.now:.1f}s, pending={self.pending}, "
            f"processed={self.events_processed})"
        )
