"""The cloud scheduler facade: kernel + device queues + policy + workload.

:class:`CloudScheduler` is what the rest of the reproduction talks to.  The
:class:`~repro.cloud.provider.CloudProvider` registers its fleet here and, in
kernel mode, submits EQC jobs as :class:`~repro.sched.queues.SchedJob`
handles whose physics run inside the service-start event; background tenant
traffic from a :class:`~repro.sched.workload.WorkloadGenerator` competes in
the same per-device queues under the same
:class:`~repro.sched.policies.SchedulingPolicy`.

The provider's submit-and-wait contract is preserved by
:meth:`run_until_complete`: the kernel is advanced exactly until the handle's
completion event fires, leaving all later traffic pending on the heap for the
next submission to consume.
"""

from __future__ import annotations

import itertools

from ..cloud.clock import VirtualClock
from ..cloud.queueing import QueueModel
from ..devices.qpu import QPU
from ..telemetry import TELEMETRY as _telemetry
from ..telemetry.report import jains_index, percentile
from .kernel import EventKernel
from .policies import SchedulingPolicy, resolve_policy
from .queues import EVENT_PRIORITY, DeviceServiceQueue, SchedJob, ServiceFn
from .workload import WorkloadGenerator

__all__ = ["CloudScheduler"]

#: Default device outage at each calibration boundary (before drift scaling).
DEFAULT_DOWNTIME_SECONDS = 20 * 60.0

#: Default admission-control cap on background jobs waiting per device.
DEFAULT_MAX_QUEUE_LENGTH = 32


class CloudScheduler:
    """Discrete-event scheduler for a fleet of shared quantum devices."""

    def __init__(
        self,
        policy: SchedulingPolicy | str | None = None,
        workload: WorkloadGenerator | None = None,
        seed: int = 0,
        clock: VirtualClock | None = None,
        downtime_seconds: float = DEFAULT_DOWNTIME_SECONDS,
        max_queue_length: int | None = DEFAULT_MAX_QUEUE_LENGTH,
    ) -> None:
        self.kernel = EventKernel(clock=clock, seed=seed)
        self.policy = resolve_policy(policy)
        self.workload = workload
        self.downtime_seconds = float(downtime_seconds)
        self.max_queue_length = max_queue_length
        self.queues: dict[str, DeviceServiceQueue] = {}
        self._job_ids = itertools.count()
        self._started = False

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(self.queues.keys())

    def next_job_id(self) -> int:
        return next(self._job_ids)

    # ------------------------------------------------------------------
    def register_device(self, qpu: QPU, queue_model: QueueModel) -> DeviceServiceQueue:
        """Add one device to the simulated fleet (before any submission)."""
        if self._started:
            raise RuntimeError("cannot register devices after the first submission")
        if qpu.name in self.queues:
            raise ValueError(f"device {qpu.name!r} already registered")
        queue = DeviceServiceQueue(
            kernel=self.kernel,
            qpu=qpu,
            queue_model=queue_model,
            policy=self.policy,
            downtime_base_seconds=self.downtime_seconds,
            max_queue_length=self.max_queue_length,
        )
        self.queues[qpu.name] = queue
        return queue

    def _ensure_started(self) -> None:
        """Arm calibration-downtime and tenant-arrival events exactly once."""
        if self._started:
            return
        if not self.queues:
            raise RuntimeError("no devices registered with the scheduler")
        self._started = True
        for queue in self.queues.values():
            queue.schedule_calibration_cycle()
        if self.workload is not None:
            self.workload.attach(self)

    # ------------------------------------------------------------------
    def submit(
        self,
        device_name: str | None = None,
        arrival: float = 0.0,
        tenant: str = "eqc",
        num_circuits: int = 2,
        priority: int = 0,
        service: ServiceFn | None = None,
        duration: float | None = None,
        foreground: bool = True,
    ) -> SchedJob:
        """Enqueue one job; returns its handle (not yet simulated).

        ``device_name=None`` defers placement to the policy's
        ``select_device`` at arrival time (least-loaded, calibration-aware).
        Exactly one of ``service`` (physics callback) / ``duration`` (fixed
        seconds) may be given; with neither, the device's drift-aware job
        clock prices the batch.  Directly submitted jobs are *foreground*
        (never rejected by admission control) unless stated otherwise.
        """
        self._ensure_started()
        if service is not None and duration is not None:
            raise ValueError("pass either service or duration, not both")
        if duration is not None:
            fixed = float(duration)
            if fixed <= 0:
                raise ValueError("duration must be positive")
            service = lambda _start, _d=fixed: _d  # noqa: E731
        if device_name is not None and device_name not in self.queues:
            raise KeyError(f"unknown device {device_name!r}")
        job = SchedJob(
            job_id=self.next_job_id(),
            tenant=tenant,
            device_name=device_name,
            arrival_time=float(arrival),
            num_circuits=int(num_circuits),
            priority=int(priority),
            foreground=bool(foreground),
            service=service,
        )
        self.kernel.schedule(
            job.arrival_time,
            lambda now, job=job: self._admit(job, now),
            priority=EVENT_PRIORITY["arrival"],
            kind="arrival",
        )
        return job

    def _admit(self, job: SchedJob, now: float) -> None:
        target = self.policy.select_device(job, self.queues, now)
        self.queues[target].on_arrival(job, now)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject_outage(
        self,
        device_name: str,
        start: float,
        duration: float = float("inf"),
        permanent: bool = False,
    ) -> None:
        """Arm one injected outage on a registered device.

        The outage preempts any job in service when it opens (the job is
        requeued at the head of the waiting list) and holds the device shut
        until the window closes — forever, when permanent.
        """
        if device_name not in self.queues:
            raise KeyError(f"unknown device {device_name!r}")
        self.queues[device_name].inject_outage(
            start, duration=duration, permanent=permanent
        )

    def apply_fault_plan(self, plan) -> None:
        """Arm every outage window of a :class:`~repro.faults.FaultPlan`.

        Only outages translate onto the kernel path — transient failures and
        result timeouts belong to the provider's statistical fault path (the
        two regimes are mutually exclusive by construction).
        """
        for window in plan.outages:
            self.inject_outage(
                window.device,
                window.start,
                duration=window.duration,
                permanent=window.permanent,
            )

    # ------------------------------------------------------------------
    def run_until_complete(self, job: SchedJob) -> SchedJob:
        """Advance the kernel exactly until ``job``'s completion event fires."""
        self.kernel.run_until(lambda: job.done)
        return job

    def run_until_time(self, timestamp: float) -> int:
        """Process all pending events up to ``timestamp``; returns the count."""
        self._ensure_started()
        return self.kernel.run_until_time(timestamp)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def completed_jobs(self) -> list[SchedJob]:
        """Every finished job fleet-wide, in completion order per device."""
        return [job for queue in self.queues.values() for job in queue.completed]

    def tenant_report(self) -> dict[str, dict[str, float]]:
        """Per-tenant latency/throughput aggregates across the fleet."""
        jobs: dict[str, list[SchedJob]] = {}
        for job in self.completed_jobs():
            jobs.setdefault(job.tenant, []).append(job)
        report: dict[str, dict[str, float]] = {}
        for tenant, tenant_jobs in sorted(jobs.items()):
            waits = [job.wait_seconds for job in tenant_jobs]
            turnarounds = [job.turnaround_seconds for job in tenant_jobs]
            report[tenant] = {
                "jobs_completed": float(len(tenant_jobs)),
                "mean_wait_seconds": float(sum(waits) / len(waits)),
                "max_wait_seconds": float(max(waits)),
                "mean_turnaround_seconds": float(sum(turnarounds) / len(turnarounds)),
            }
        return report

    def metrics(self) -> dict[str, object]:
        """Kernel and per-device counters for benchmarks and experiments."""
        per_device = {
            name: {
                "jobs_completed": len(queue.completed),
                "jobs_rejected": queue.jobs_rejected,
                "waiting": queue.queue_length,
                "busy_seconds": queue.busy_seconds,
                "downtime_windows": len(queue.downtime_windows),
                "downtime_seconds": sum(w.duration for w in queue.downtime_windows),
                "outage_windows": len(queue.outage_windows),
            }
            for name, queue in self.queues.items()
        }
        return {
            "policy": self.policy.name,
            "events_processed": self.kernel.events_processed,
            "simulated_seconds": self.kernel.now,
            "devices": per_device,
            "slo": self.slo_metrics(),
        }

    def slo_metrics(self) -> dict[str, float]:
        """Fleet-wide latency percentiles and tenant fairness.

        Queue-wait percentiles cover every completed job (foreground and
        tenant); the fairness index is Jain's index over the device seconds
        each tenant received, so 1.0 means perfectly even service.
        """
        jobs = self.completed_jobs()
        waits = [job.wait_seconds for job in jobs]
        rejected = sum(queue.jobs_rejected for queue in self.queues.values())
        offered = len(jobs) + rejected
        service_by_tenant: dict[str, float] = {}
        for queue in self.queues.values():
            for tenant, seconds in queue.service_given.items():
                service_by_tenant[tenant] = (
                    service_by_tenant.get(tenant, 0.0) + seconds
                )
        return {
            "jobs_completed": float(len(jobs)),
            "queue_wait_mean": float(sum(waits) / len(waits)) if waits else 0.0,
            "queue_wait_p50": percentile(waits, 50.0),
            "queue_wait_p99": percentile(waits, 99.0),
            "rejected_fraction": rejected / offered if offered else 0.0,
            "tenant_fairness_jain": jains_index(list(service_by_tenant.values())),
        }

    def publish(self, registry=None, prefix: str = "sched") -> None:
        """Write kernel totals and SLO metrics into a metrics registry.

        Called at collection time (not per event) so the event loop carries
        no telemetry cost beyond the per-job hooks in the device queues.
        """
        if registry is None:
            registry = _telemetry.registry
        registry.gauge(f"{prefix}.events_processed").set(self.kernel.events_processed)
        registry.gauge(f"{prefix}.simulated_seconds").set(self.kernel.now)
        for field, value in self.slo_metrics().items():
            registry.gauge(f"{prefix}.slo.{field}").set(value)
        for name, queue in self.queues.items():
            registry.gauge(f"{prefix}.queue_depth", device=name).set(
                queue.queue_length
            )

    def __repr__(self) -> str:
        return (
            f"CloudScheduler(policy={self.policy.name!r}, "
            f"devices={len(self.queues)}, t={self.now:.1f}s)"
        )
