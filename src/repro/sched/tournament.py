"""Policy tournament: sweep (devices x tenants x policy) at fleet scale.

The contention sweep in ``benchmarks/bench_sched.py`` shows *that* EQC
training collapses under community load; the tournament shows *which policy
survives it*.  Each cell of a (device count x tenant level x policy) grid
simulates a synthetic fleet — the fast Table I devices cloned out to 25, 100
or more QPUs — under a spread-load Poisson community of up to tens of
thousands of tenants, and drives a foreground **proxy EQC master** through
``num_epochs`` training epochs: one fixed-cost foreground job per client
device per epoch, the epoch completing when the last client finishes, the
next epoch submitted at that instant.  That is exactly the master-loop shape
of :class:`~repro.core.ensemble.EQCEnsemble` with the circuit physics
replaced by a fixed device-seconds price, which keeps a 16-cell grid at 10k
tenants affordable while preserving the quantity the paper cares about:
epochs per simulated hour under contention.

Each cell records the foreground throughput (``epochs_per_hour``), the
fleet SLOs (p50/p99 queue wait, Jain fairness over per-tenant device
seconds, rejected fraction) and the kernel's wall-clock event rate, so the
throughput-vs-fairness tradeoff is a tracked curve in ``BENCH_sched.json``
rather than an anecdote.  :func:`publish_tournament` mirrors every cell into
``sched.tournament.*`` gauges so :func:`repro.telemetry.report.run_report`
can render the grid as a table.

Determinism: the whole grid is a pure function of
:class:`TournamentConfig` — cloned device seeds, workload streams and
policy decisions all derive from the config seed and device names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as _dc_replace

from ..cloud.queueing import QueueModel, queue_model_for
from ..devices.catalog import TABLE_I
from ..devices.qpu import QPU
from ..telemetry import TELEMETRY as _telemetry
from .scheduler import DEFAULT_MAX_QUEUE_LENGTH, CloudScheduler
from .workload import WorkloadGenerator

__all__ = [
    "FLEET_TEMPLATES",
    "TournamentConfig",
    "SMOKE_CONFIG",
    "FULL_CONFIG",
    "clone_fleet",
    "run_cell",
    "run_tournament",
    "publish_tournament",
]

#: Fast Table I devices the synthetic fleet cycles through.  Santiago and
#: Manhattan are excluded: their week-to-month job clocks would turn every
#: tournament epoch into the terminated runs of the paper's Fig. 6.
FLEET_TEMPLATES: tuple[str, ...] = (
    "x2",
    "Belem",
    "Bogota",
    "Casablanca",
    "Lima",
    "Quito",
    "Manila",
    "Lagos",
)


@dataclass(frozen=True)
class TournamentConfig:
    """One tournament grid: the axes plus the fixed per-cell knobs.

    Attributes:
        device_counts: fleet sizes to sweep (clones of FLEET_TEMPLATES).
        tenant_levels: background community sizes to sweep.
        policies: policy registry names to race.
        num_epochs: foreground proxy epochs per cell.
        clients: devices the proxy EQC master trains on (first N of fleet).
        epoch_job_seconds: device seconds of one client's epoch job — the
            fixed stand-in for a full gradient batch, sized like a heavy
            EQC step so epochs/hour is comparable to the real-EQC
            contention sweep.
        jobs_per_tenant_hour: community submission rate per tenant.
        seed: kernel seed for every cell (cells differ by their axes only).
        downtime_seconds: base calibration outage per device per cycle.
        max_queue_length: admission cap per device queue.
    """

    device_counts: tuple[int, ...] = (25, 100)
    tenant_levels: tuple[int, ...] = (1000, 10000)
    policies: tuple[str, ...] = ("fifo", "fair_share", "backpressure", "deadline")
    num_epochs: int = 4
    clients: int = 8
    epoch_job_seconds: float = 600.0
    jobs_per_tenant_hour: float = 1.0
    seed: int = 7
    downtime_seconds: float = 20.0 * 60.0
    max_queue_length: int = DEFAULT_MAX_QUEUE_LENGTH


#: The CI grid: 2 policies x 2 tenant loads on one fleet size, 2 epochs.
SMOKE_CONFIG = TournamentConfig(
    device_counts=(25,),
    tenant_levels=(1000, 10_000),
    policies=("fifo", "backpressure"),
    num_epochs=2,
)

#: The tracked grid: 2 fleet sizes x {1k, 10k} tenants x 4 policies.
FULL_CONFIG = TournamentConfig()


def clone_fleet(count: int) -> list[tuple[QPU, QueueModel]]:
    """Build ``count`` synthetic devices by cloning the fast Table I specs.

    Clone ``k`` reuses template ``k % len(FLEET_TEMPLATES)`` with a unique
    name and a distinct drift seed, and inherits the template's community
    queue model (popularity, diurnal swing), so a 100-device fleet has the
    same *mix* of fast/noisy/volatile hardware as the paper's Table I.
    """
    if count < 1:
        raise ValueError("fleet size must be at least 1")
    fleet: list[tuple[QPU, QueueModel]] = []
    for k in range(count):
        template = FLEET_TEMPLATES[k % len(FLEET_TEMPLATES)]
        spec = TABLE_I[template]
        clone = _dc_replace(spec, name=f"{template}-{k:03d}", seed=spec.seed + 7919 * k)
        fleet.append((QPU(clone), queue_model_for(template)))
    return fleet


def run_cell(
    policy: str,
    num_devices: int,
    num_tenants: int,
    config: TournamentConfig = FULL_CONFIG,
) -> dict:
    """Simulate one (policy, devices, tenants) cell; returns its record.

    The background community uses ``spread_load=True`` — a fixed tenant
    population spreads across the fleet by popularity share, so adding
    devices dilutes per-device load (the fleet-scaling question the
    tournament exists to answer).
    """
    workload = None
    if num_tenants > 0:
        workload = WorkloadGenerator(
            num_tenants=num_tenants,
            jobs_per_tenant_hour=config.jobs_per_tenant_hour,
            spread_load=True,
        )
    scheduler = CloudScheduler(
        policy=policy,
        workload=workload,
        seed=config.seed,
        downtime_seconds=config.downtime_seconds,
        max_queue_length=config.max_queue_length,
    )
    for qpu, model in clone_fleet(num_devices):
        scheduler.register_device(qpu, model)
    clients = list(scheduler.device_names)[: config.clients]

    wall_start = time.perf_counter()
    epoch_end = 0.0
    foreground_waits: list[float] = []
    for _epoch in range(config.num_epochs):
        jobs = [
            scheduler.submit(
                device_name=name,
                arrival=epoch_end,
                tenant="eqc",
                num_circuits=4,
                duration=config.epoch_job_seconds,
                foreground=True,
            )
            for name in clients
        ]
        for job in jobs:
            scheduler.run_until_complete(job)
        epoch_end = max(job.finish_time for job in jobs)
        foreground_waits.extend(job.wait_seconds for job in jobs)
    wall_seconds = time.perf_counter() - wall_start

    simulated_hours = epoch_end / 3600.0
    slo = scheduler.slo_metrics()
    events = scheduler.kernel.events_processed
    return {
        "policy": policy,
        "devices": num_devices,
        "tenants": num_tenants,
        "epochs": config.num_epochs,
        "simulated_hours": simulated_hours,
        "epochs_per_hour": (
            config.num_epochs / simulated_hours if simulated_hours > 0 else 0.0
        ),
        "foreground_wait_mean": (
            sum(foreground_waits) / len(foreground_waits)
            if foreground_waits
            else 0.0
        ),
        "foreground_wait_max": max(foreground_waits) if foreground_waits else 0.0,
        "events_processed": events,
        "wall_seconds": wall_seconds,
        "events_per_sec_wall": events / wall_seconds if wall_seconds > 0 else 0.0,
        **{f"slo_{key}": value for key, value in slo.items()},
    }


def run_tournament(config: TournamentConfig = FULL_CONFIG) -> dict:
    """Sweep the full grid; returns ``{"config": ..., "cells": [...]}``."""
    cells = []
    for num_devices in config.device_counts:
        for num_tenants in config.tenant_levels:
            for policy in config.policies:
                cells.append(run_cell(policy, num_devices, num_tenants, config))
    return {
        "config": {
            "device_counts": list(config.device_counts),
            "tenant_levels": list(config.tenant_levels),
            "policies": list(config.policies),
            "num_epochs": config.num_epochs,
            "clients": config.clients,
            "epoch_job_seconds": config.epoch_job_seconds,
            "jobs_per_tenant_hour": config.jobs_per_tenant_hour,
            "seed": config.seed,
        },
        "cells": cells,
    }


#: Per-cell fields mirrored into gauges (JSON key -> gauge suffix).
_GAUGE_FIELDS = {
    "epochs_per_hour": "epochs_per_hour",
    "foreground_wait_mean": "foreground_wait_mean",
    "slo_queue_wait_p50": "queue_wait_p50",
    "slo_queue_wait_p99": "queue_wait_p99",
    "slo_rejected_fraction": "rejected_fraction",
    "slo_tenant_fairness_jain": "fairness_jain",
}


def publish_tournament(result: dict, registry=None, prefix: str = "sched.tournament") -> None:
    """Mirror every tournament cell into ``<prefix>.*`` gauges.

    Each cell publishes one gauge per :data:`_GAUGE_FIELDS` entry, labelled
    by its grid coordinates, e.g.
    ``sched.tournament.epochs_per_hour{devices=25,policy=fifo,tenants=1000}``
    — the shape :func:`repro.telemetry.report.run_report` renders as the
    tournament table.
    """
    if registry is None:
        registry = _telemetry.registry
    for cell in result["cells"]:
        labels = {
            "policy": cell["policy"],
            "devices": cell["devices"],
            "tenants": cell["tenants"],
        }
        for field, suffix in _GAUGE_FIELDS.items():
            registry.gauge(f"{prefix}.{suffix}", **labels).set(cell[field])


def _main() -> None:  # pragma: no cover - CLI convenience
    import argparse
    import json

    parser = argparse.ArgumentParser(description="Run the scheduler policy tournament")
    parser.add_argument("--smoke", action="store_true", help="run the reduced CI grid")
    args = parser.parse_args()
    result = run_tournament(SMOKE_CONFIG if args.smoke else FULL_CONFIG)
    print(json.dumps(result, indent=2))


if __name__ == "__main__":  # pragma: no cover
    _main()
