"""Per-device service queues: capacity-1 devices with calibration downtime.

One :class:`DeviceServiceQueue` models what one shared cloud QPU actually is:
a single serial resource that every tenant's jobs funnel through.  Jobs wait
in an arrival-ordered list; whenever the device is free (not serving, not in a
calibration window), the active :class:`~repro.sched.policies.SchedulingPolicy`
picks which waiting job runs next.  Service is capacity-1 and non-preemptive —
a calibration window that opens mid-job lets the job finish, then holds the
queue shut until the window closes.

Calibration downtime is driven by the same :mod:`repro.noise.drift` physics
that degrades circuit fidelity: at every calibration boundary the device goes
down for ``base downtime x drift factor at the end of the previous cycle`` —
a device that drifted badly needs a longer recalibration, which is another
channel through which device weather shapes tenant-visible latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..cloud.clock import SECONDS_PER_HOUR
from ..cloud.queueing import QueueModel
from ..devices.qpu import QPU, job_slot_circuit_seconds
from ..telemetry import TELEMETRY as _telemetry
from .kernel import Event, EventKernel

if TYPE_CHECKING:  # pragma: no cover - circular only for type checkers
    from .policies import SchedulingPolicy

__all__ = ["SchedJob", "DeviceServiceQueue", "EVENT_PRIORITY"]

#: Tie-break priorities for simultaneous events: a calibration window opens
#: before a completion frees the device, completions free the device before
#: new arrivals see it, and wake-ups run last.
EVENT_PRIORITY = {
    "downtime": -1,
    "service_complete": 0,
    "arrival": 1,
    "wakeup": 2,
}

#: Runs a job's physics at its service start time, returns elapsed seconds.
ServiceFn = Callable[[float], float]


@dataclass
class SchedJob:
    """One unit of device work inside the scheduler (EQC or tenant).

    The job doubles as the *handle* callers hold: ``start_time`` and
    ``finish_time`` are populated as the kernel simulates it, and ``done``
    flips once the completion event has fired.

    Attributes:
        job_id: scheduler-assigned id (monotone, deterministic).
        tenant: owning tenant ("eqc" for foreground training jobs).
        device_name: target device; ``None`` until the policy routes the job.
        arrival_time: simulation time the job enters the system.
        num_circuits: batch size (drives the default service duration).
        priority: larger = more urgent (used by priority policies only).
        foreground: foreground jobs (EQC training) are always admitted;
            background tenant jobs are rejected when the device queue is at
            its admission-control cap.
        service: optional physics callback; called once with the service
            start time, must return the elapsed device seconds.  Tenant jobs
            leave this ``None`` and get the device-clock default.
        deadline: absolute completion target (seconds of simulated time),
            assigned by deadline-aware policies at admission; ``None`` under
            every other policy.
    """

    job_id: int
    tenant: str
    device_name: str | None = None
    arrival_time: float = 0.0
    num_circuits: int = 2
    priority: int = 0
    foreground: bool = False
    service: ServiceFn | None = None
    start_time: float | None = None
    finish_time: float | None = None
    service_seconds: float = 0.0
    rejected: bool = False
    deadline: float | None = None

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def wait_seconds(self) -> float:
        """Arrival-to-service latency (0 until the job starts)."""
        if self.start_time is None:
            return 0.0
        return max(0.0, self.start_time - self.arrival_time)

    @property
    def turnaround_seconds(self) -> float:
        if self.finish_time is None:
            return 0.0
        return max(0.0, self.finish_time - self.arrival_time)


@dataclass
class DowntimeWindow:
    """One calibration outage: [start, start + duration)."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class DeviceServiceQueue:
    """The kernel-side state of one device: waiting jobs, service, downtime."""

    def __init__(
        self,
        kernel: EventKernel,
        qpu: QPU,
        queue_model: QueueModel,
        policy: "SchedulingPolicy",
        downtime_base_seconds: float = 0.0,
        max_queue_length: int | None = None,
    ) -> None:
        self.kernel = kernel
        self.qpu = qpu
        self.queue_model = queue_model
        self.policy = policy
        self.downtime_base_seconds = float(downtime_base_seconds)
        #: Admission-control cap on *background* jobs: a tenant arrival is
        #: rejected when the waiting list is this long.  Without a cap an
        #: overloaded device (offered load > 1) grows its backlog without
        #: bound and foreground latency diverges; real clouds bound the
        #: queue, so the simulation does too.  Foreground jobs always enter.
        #: The check itself lives in :meth:`SchedulingPolicy.admit`, so
        #: policies like backpressure can substitute their own gate.
        self.max_queue_length = max_queue_length

        self.waiting: list[SchedJob] = []
        #: Running sum of waiting circuits, so :meth:`backlog_seconds` is
        #: O(1) — placement scans every queue per unpinned arrival, which
        #: would otherwise cost O(fleet x queue depth) per job.
        self._waiting_circuits = 0
        #: Per-circuit estimate at the device's calibrated speed (waiting
        #: jobs' true durations are only known once they start).
        self._slot_estimate = job_slot_circuit_seconds(qpu.spec.base_job_seconds)
        self.in_service: SchedJob | None = None
        #: Device-local timeline: when the current/last service ends.
        self.free_at = 0.0
        #: End of the latest calibration window (0 when never down).
        self.downtime_until = 0.0
        self.downtime_windows: list[DowntimeWindow] = []
        #: Injected outage windows (fault layer), kept apart from the
        #: physics-driven calibration windows for accounting.
        self.outage_windows: list[DowntimeWindow] = []

        self.completed: list[SchedJob] = []
        self.jobs_rejected = 0
        self.busy_seconds = 0.0
        #: Accumulated service per tenant (what fair-share policies consume).
        self.service_given: dict[str, float] = {}
        self._wakeup: Event | None = None
        self._service_event: Event | None = None

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.qpu.name

    @property
    def queue_length(self) -> int:
        return len(self.waiting)

    def backlog_seconds(self, now: float) -> float:
        """Estimated seconds of work ahead of a job arriving at ``now``.

        The in-service remainder and any calibration window are exact; the
        waiting jobs are estimated at the device's calibrated speed (their
        true durations are only known once they start).
        """
        horizon = max(self.free_at, self.downtime_until) - float(now)
        estimated = self._slot_estimate * self._waiting_circuits
        return max(0.0, horizon) + estimated

    def in_downtime(self, now: float) -> bool:
        return float(now) < self.downtime_until

    # ------------------------------------------------------------------
    # calibration downtime lifecycle
    # ------------------------------------------------------------------
    def schedule_calibration_cycle(self) -> None:
        """Arm the first calibration-window event (cycle-1 boundary)."""
        if self.downtime_base_seconds <= 0:
            return
        period = self.qpu.spec.calibration_period_hours * SECONDS_PER_HOUR
        self.kernel.schedule(
            period,
            self._begin_downtime,
            priority=EVENT_PRIORITY["downtime"],
            kind="downtime",
        )

    def _begin_downtime(self, now: float) -> None:
        # Recalibration takes longer the further the device drifted during
        # the cycle that just ended (sampled one second before the boundary).
        factor = self.qpu.drift_factor(max(0.0, now - 1.0))
        duration = self.downtime_base_seconds * factor
        self.downtime_until = max(self.downtime_until, now + duration)
        self.downtime_windows.append(DowntimeWindow(start=now, duration=duration))
        if _telemetry.enabled:
            # Downtime gets its own lane: calibration windows overlap jobs
            # that were already in service (non-preemptive queue), which
            # would break span nesting on the device lane.
            _telemetry.tracer.add_sim_span(
                "calibration",
                "sched.downtime",
                f"{self.name} downtime",
                now,
                duration,
                args={"drift_factor": round(factor, 4)},
            )

        period = self.qpu.spec.calibration_period_hours * SECONDS_PER_HOUR
        self.kernel.schedule(
            now + period,
            self._begin_downtime,
            priority=EVENT_PRIORITY["downtime"],
            kind="downtime",
        )
        if (
            self.in_service is None
            and self.waiting
            and math.isfinite(self.downtime_until)
        ):
            self._ensure_wakeup(self.downtime_until)

    # ------------------------------------------------------------------
    # injected outages (fault layer)
    # ------------------------------------------------------------------
    def inject_outage(
        self, start: float, duration: float = float("inf"), permanent: bool = False
    ) -> None:
        """Arm one injected outage window beginning at ``start``.

        ``permanent=True`` (or an infinite duration) takes the device down
        for good.  Unlike calibration downtime, an outage *preempts*: a job
        in service when the window opens is cut and requeued at the head of
        the waiting list, to restart from scratch once the device returns.
        """
        if start < 0:
            raise ValueError("outage start must be non-negative")
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        if permanent:
            duration = float("inf")
        self.kernel.schedule(
            float(start),
            lambda now, d=float(duration): self._begin_outage(now, d),
            priority=EVENT_PRIORITY["downtime"],
            kind="outage",
        )

    def _begin_outage(self, now: float, duration: float) -> None:
        self.downtime_until = max(self.downtime_until, now + duration)
        self.outage_windows.append(DowntimeWindow(start=now, duration=duration))
        preempted = self.in_service
        if preempted is not None:
            # Cut the running job: cancel its completion, rewind its state,
            # and requeue it at the head so it restarts first on recovery.
            if self._service_event is not None:
                self._service_event.cancel()
                self._service_event = None
            preempted.start_time = None
            preempted.service_seconds = 0.0
            self.waiting.insert(0, preempted)
            self._waiting_circuits += preempted.num_circuits
            self.in_service = None
            self.free_at = now
        if _telemetry.enabled:
            _telemetry.registry.counter("faults.outages", device=self.name).inc()
            _telemetry.tracer.add_sim_span(
                "outage",
                "sched.downtime",
                f"{self.name} downtime",
                now,
                duration if math.isfinite(duration) else 0.0,
                args={"permanent": not math.isfinite(duration)},
            )
        if (
            self.waiting
            and self.in_service is None
            and math.isfinite(self.downtime_until)
        ):
            self._ensure_wakeup(self.downtime_until)

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------
    def on_arrival(self, job: SchedJob, now: float) -> None:
        """Admit a job to the waiting list and start it if the device is free."""
        job.device_name = self.name
        if not self.policy.admit(job, self, now):
            job.rejected = True
            self.jobs_rejected += 1
            if _telemetry.enabled:
                _telemetry.registry.counter(
                    "sched.jobs_rejected", device=self.name
                ).inc()
            return
        self.waiting.append(job)
        self._waiting_circuits += job.num_circuits
        if self.in_service is None:
            # A late-replayed submission (arrival behind the device's local
            # timeline) cannot rewind committed work: it queues from free_at.
            self._try_start(max(now, self.free_at))

    def _try_start(self, now: float) -> None:
        if self.in_service is not None or not self.waiting:
            return
        if now < self.downtime_until:
            if math.isfinite(self.downtime_until):
                self._ensure_wakeup(self.downtime_until)
            return
        index = self.policy.next_job(self.waiting, self, now)
        job = self.waiting.pop(index)
        self._waiting_circuits -= job.num_circuits
        self.in_service = job
        job.start_time = now
        duration = self._service_duration(job, now)
        job.service_seconds = duration
        self.free_at = now + duration
        self._service_event = self.kernel.schedule(
            self.free_at,
            lambda t, job=job: self._complete(job, t),
            priority=EVENT_PRIORITY["service_complete"],
            kind="service_complete",
        )

    def _complete(self, job: SchedJob, now: float) -> None:
        job.finish_time = now
        self.in_service = None
        self._service_event = None
        self.completed.append(job)
        self.busy_seconds += job.service_seconds
        self.service_given[job.tenant] = (
            self.service_given.get(job.tenant, 0.0) + job.service_seconds
        )
        if _telemetry.enabled:
            self._record_completion(job)
        self._try_start(now)

    def _record_completion(self, job: SchedJob) -> None:
        """Telemetry for one finished job (enabled-path only).

        Per-job, not per-event: the kernel's event loop stays untouched and
        the fleet-wide event counters are published at collection time by
        :meth:`CloudScheduler.publish` instead.
        """
        registry = _telemetry.registry
        registry.counter("sched.jobs_completed", device=self.name).inc()
        registry.histogram("sched.queue_wait_seconds").observe(job.wait_seconds)
        registry.histogram(
            "sched.queue_wait_seconds", tenant=job.tenant
        ).observe(job.wait_seconds)
        registry.gauge("sched.queue_depth", device=self.name).set(self.queue_length)
        _telemetry.tracer.add_sim_span(
            f"{job.tenant} job",
            "sched",
            self.name,
            job.start_time,
            job.service_seconds,
            args={
                "tenant": job.tenant,
                "wait_s": round(job.wait_seconds, 6),
                "circuits": job.num_circuits,
            },
        )

    def _service_duration(self, job: SchedJob, start: float) -> float:
        if job.service is not None:
            return float(job.service(start))
        # Default tenant physics: the device's drift-aware job clock, one
        # half-slot per circuit (a full slot covers a forward/backward pair).
        slot = job_slot_circuit_seconds(self.qpu.job_duration_seconds(start))
        return slot * max(1, job.num_circuits)

    # ------------------------------------------------------------------
    def _ensure_wakeup(self, when: float) -> None:
        if self._wakeup is not None and not self._wakeup.cancelled:
            if self._wakeup.time <= when:
                return
            self._wakeup.cancel()
        self._wakeup = self.kernel.schedule(
            when,
            self._on_wakeup,
            priority=EVENT_PRIORITY["wakeup"],
            kind="wakeup",
        )

    def _on_wakeup(self, now: float) -> None:
        self._wakeup = None
        self._try_start(now)

    def __repr__(self) -> str:
        return (
            f"DeviceServiceQueue({self.name!r}, waiting={self.queue_length}, "
            f"busy={self.in_service is not None}, free_at={self.free_at:.1f}s)"
        )
