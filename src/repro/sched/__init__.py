"""Discrete-event multi-tenant scheduling for the shared quantum cloud.

The ``sched`` layer replaces the closed-form queue-delay draws of
:mod:`repro.cloud.queueing` with an actual simulation of contention: one
event kernel (sorted-run batched admission, millions of events per second),
capacity-1 device queues with calibration-window downtime, pluggable
scheduling policies (including backpressure shedding and EDF deadlines), a
chunk-vectorized Poisson background-tenant workload, and a policy
tournament harness (:mod:`repro.sched.tournament`) that races the policies
across a (devices x tenants x policy) grid at fleet scale.

The statistical model survives as :class:`StatisticalQueuePolicy`, the
provider's default path, keeping every pre-scheduler seeded history
bit-exact.
"""

from .kernel import Event, EventKernel
from .policies import (
    POLICY_REGISTRY,
    BackpressurePolicy,
    CalibrationAwarePolicy,
    DeadlinePolicy,
    FairSharePolicy,
    FifoPolicy,
    LeastLoadedPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    StatisticalQueuePolicy,
    resolve_policy,
)
from .queues import DeviceServiceQueue, SchedJob
from .scheduler import DEFAULT_DOWNTIME_SECONDS, CloudScheduler
from .tournament import (
    FULL_CONFIG,
    SMOKE_CONFIG,
    TournamentConfig,
    publish_tournament,
    run_tournament,
)
from .workload import WorkloadGenerator

__all__ = [
    "Event",
    "EventKernel",
    "SchedJob",
    "DeviceServiceQueue",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "LeastLoadedPolicy",
    "CalibrationAwarePolicy",
    "BackpressurePolicy",
    "DeadlinePolicy",
    "StatisticalQueuePolicy",
    "POLICY_REGISTRY",
    "resolve_policy",
    "WorkloadGenerator",
    "CloudScheduler",
    "DEFAULT_DOWNTIME_SECONDS",
    "TournamentConfig",
    "SMOKE_CONFIG",
    "FULL_CONFIG",
    "run_tournament",
    "publish_tournament",
]
