"""Discrete-event multi-tenant scheduling for the shared quantum cloud.

The ``sched`` layer replaces the closed-form queue-delay draws of
:mod:`repro.cloud.queueing` with an actual simulation of contention: one
event kernel, capacity-1 device queues with calibration-window downtime,
pluggable scheduling policies, and a Poisson background-tenant workload, so
EQC training jobs compete with community traffic for the same devices.

The statistical model survives as :class:`StatisticalQueuePolicy`, the
provider's default path, keeping every pre-scheduler seeded history
bit-exact.
"""

from .kernel import Event, EventKernel
from .policies import (
    POLICY_REGISTRY,
    CalibrationAwarePolicy,
    FairSharePolicy,
    FifoPolicy,
    LeastLoadedPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    StatisticalQueuePolicy,
    resolve_policy,
)
from .queues import DeviceServiceQueue, SchedJob
from .scheduler import DEFAULT_DOWNTIME_SECONDS, CloudScheduler
from .workload import WorkloadGenerator

__all__ = [
    "Event",
    "EventKernel",
    "SchedJob",
    "DeviceServiceQueue",
    "SchedulingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "LeastLoadedPolicy",
    "CalibrationAwarePolicy",
    "StatisticalQueuePolicy",
    "POLICY_REGISTRY",
    "resolve_policy",
    "WorkloadGenerator",
    "CloudScheduler",
    "DEFAULT_DOWNTIME_SECONDS",
]
