"""Quantum circuit intermediate representation and ansatz library."""

from .circuit import QuantumCircuit
from .gates import BASIS_GATES, GATE_SPECS, Instruction, gate_matrix, is_two_qubit
from .library import (
    ghz_state,
    hardware_efficient_ansatz,
    linear_entangler_demo,
    qaoa_maxcut_ansatz,
    qnn_encoder_ansatz,
)
from .parameters import Parameter, ParameterExpression, ParameterVector, bind_value

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "GATE_SPECS",
    "BASIS_GATES",
    "gate_matrix",
    "is_two_qubit",
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "bind_value",
    "hardware_efficient_ansatz",
    "qaoa_maxcut_ansatz",
    "ghz_state",
    "linear_entangler_demo",
    "qnn_encoder_ansatz",
]
