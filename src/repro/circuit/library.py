"""Circuit library: the ansatze and reference states used in the paper.

* :func:`hardware_efficient_ansatz` — the 4-qubit VQE circuit of Fig. 8:
  an RY+RZ full-Bloch-sphere rotation layer, a linear CNOT entangler, and a
  second RY+RZ layer (16 parameters for 4 qubits).
* :func:`qaoa_maxcut_ansatz` — the 2-parameter QAOA circuit of Fig. 10:
  Hadamards, a ZZ cost layer over the graph edges (angle ``beta``), and an RX
  mixer layer (angle ``alpha``).
* :func:`ghz_state` — the n-qubit GHZ preparation used to validate the
  ``PCorrect`` analytic model (Fig. 4).
* :func:`linear_entangler_demo` — the small illustrative circuit of Fig. 3
  used to show topology-dependent transpilation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .circuit import QuantumCircuit
from .parameters import Parameter, ParameterVector

__all__ = [
    "hardware_efficient_ansatz",
    "qaoa_maxcut_ansatz",
    "ghz_state",
    "linear_entangler_demo",
    "qnn_encoder_ansatz",
]


def hardware_efficient_ansatz(
    num_qubits: int,
    num_layers: int = 1,
    measure: bool = True,
    prefix: str = "theta",
) -> QuantumCircuit:
    """The hardware-efficient VQE ansatz of paper Fig. 8.

    Each layer applies RY then RZ on every qubit, a linear chain of CNOTs
    (``CNOT(0,1), CNOT(1,2), ...``), then RY and RZ on every qubit again.
    For 4 qubits and one layer this yields 16 trainable parameters, matching
    the paper's VQE experiment.

    Args:
        num_qubits: circuit width.
        num_layers: number of (rotation, entangler, rotation) blocks.
        measure: append measurements on all qubits when True.
        prefix: name prefix for the generated parameters.

    Returns:
        A parameterized :class:`QuantumCircuit` with
        ``4 * num_qubits * num_layers`` free parameters.
    """
    if num_qubits < 2:
        raise ValueError("the hardware-efficient ansatz needs at least 2 qubits")
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    params = ParameterVector(prefix, 4 * num_qubits * num_layers)
    qc = QuantumCircuit(num_qubits, name="hw_efficient_ansatz")
    idx = 0
    for _ in range(num_layers):
        for q in range(num_qubits):
            qc.ry(params[idx], q)
            idx += 1
        for q in range(num_qubits):
            qc.rz(params[idx], q)
            idx += 1
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
        for q in range(num_qubits):
            qc.ry(params[idx], q)
            idx += 1
        for q in range(num_qubits):
            qc.rz(params[idx], q)
            idx += 1
    if measure:
        qc.measure_all()
    return qc


def qaoa_maxcut_ansatz(
    num_qubits: int,
    edges: Iterable[tuple[int, int]],
    num_layers: int = 1,
    measure: bool = True,
) -> QuantumCircuit:
    """The QAOA MaxCut ansatz of paper Fig. 10.

    One layer is: Hadamard on every qubit (first layer only), an RZZ cost
    layer parameterized by ``beta`` applied on every graph edge, and an RX
    mixer layer parameterized by ``alpha`` on every qubit.  With one layer
    this has exactly 2 trainable parameters, as in the paper's experiment.

    Args:
        num_qubits: number of graph nodes / circuit qubits.
        edges: undirected edges of the MaxCut graph (0-indexed).
        num_layers: QAOA depth ``p``.
        measure: append measurements on all qubits when True.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    edge_list = [(int(a), int(b)) for a, b in edges]
    for a, b in edge_list:
        if a == b:
            raise ValueError("MaxCut graph must not contain self-loops")
        if not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise ValueError(f"edge ({a}, {b}) out of range for {num_qubits} qubits")
    qc = QuantumCircuit(num_qubits, name="qaoa_maxcut_ansatz")
    for q in range(num_qubits):
        qc.h(q)
    for layer in range(num_layers):
        beta = Parameter(f"beta[{layer}]")
        alpha = Parameter(f"alpha[{layer}]")
        for a, b in edge_list:
            qc.rzz(beta, a, b)
        for q in range(num_qubits):
            qc.rx(alpha, q)
    if measure:
        qc.measure_all()
    return qc


def ghz_state(num_qubits: int, measure: bool = True) -> QuantumCircuit:
    """The n-qubit GHZ state preparation used in the Fig. 4 validation.

    ``H`` on qubit 0 followed by a CNOT ladder; the ideal output distribution
    is an even mixture of all-zeros and all-ones bitstrings, so any other
    outcome witnesses a hardware error.
    """
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least 2 qubits")
    qc = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    if measure:
        qc.measure_all()
    return qc


def linear_entangler_demo(num_qubits: int = 4) -> QuantumCircuit:
    """The illustrative circuit of paper Fig. 3.

    A single RY rotation per qubit followed by a linear CNOT chain — small
    enough to show, transpiled, how topology changes the SWAP overhead.
    """
    params = ParameterVector("u", num_qubits)
    qc = QuantumCircuit(num_qubits, name="linear_entangler_demo")
    for q in range(num_qubits):
        qc.ry(params[q], q)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    qc.measure_all()
    return qc


def qnn_encoder_ansatz(
    num_qubits: int,
    features: Sequence[float],
    num_layers: int = 1,
    prefix: str = "w",
) -> QuantumCircuit:
    """A simple data-reuploading QNN circuit (paper Section III-A, QNN case).

    Each layer encodes the classical feature vector with RX rotations and
    applies a trainable RY+entangler block.  Used by the QNN task-decomposition
    path of EQC (per-datapoint gradient parallelism).

    Args:
        num_qubits: circuit width; features are wrapped modulo ``num_qubits``.
        features: classical input features encoded as RX angles.
        num_layers: number of (encode, train) blocks.
        prefix: name prefix for trainable parameters.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    params = ParameterVector(prefix, num_qubits * num_layers)
    qc = QuantumCircuit(num_qubits, name="qnn_encoder")
    idx = 0
    for _ in range(num_layers):
        for q in range(num_qubits):
            qc.rx(float(features[q % len(features)]), q)
        for q in range(num_qubits):
            qc.ry(params[idx], q)
            idx += 1
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
    qc.measure_all()
    return qc
