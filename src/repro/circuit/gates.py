"""Gate definitions and unitary matrices.

The gate set covers everything the EQC paper needs:

* the IBMQ *basis gates* ``ID, RZ, SX, X, CNOT`` that transpiled circuits are
  expressed in,
* the *logical* gates used to author ansatze (``H, RX, RY, RZ, RZZ, CX, SWAP``),
* ``MEASURE`` markers.

Each instruction is an immutable :class:`Instruction` record naming the gate,
its qubits, and its (possibly symbolic) parameters.  Unitary matrices are
produced by :func:`gate_matrix` once parameters have been bound to floats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping, Sequence

import numpy as np

from .parameters import Parameter, ParameterValue, bind_value, free_parameters

__all__ = [
    "GateSpec",
    "Instruction",
    "GATE_SPECS",
    "BASIS_GATES",
    "gate_matrix",
    "is_two_qubit",
    "is_parameterized_gate",
]


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type."""

    name: str
    num_qubits: int
    num_params: int
    #: True for gates native to IBMQ-style superconducting hardware.
    is_basis: bool = False
    #: True for measurement/barrier style directives with no unitary.
    is_directive: bool = False


GATE_SPECS: dict[str, GateSpec] = {
    "id": GateSpec("id", 1, 0, is_basis=True),
    "x": GateSpec("x", 1, 0, is_basis=True),
    "sx": GateSpec("sx", 1, 0, is_basis=True),
    "rz": GateSpec("rz", 1, 1, is_basis=True),
    "cx": GateSpec("cx", 2, 0, is_basis=True),
    "h": GateSpec("h", 1, 0),
    "y": GateSpec("y", 1, 0),
    "z": GateSpec("z", 1, 0),
    "s": GateSpec("s", 1, 0),
    "sdg": GateSpec("sdg", 1, 0),
    "t": GateSpec("t", 1, 0),
    "rx": GateSpec("rx", 1, 1),
    "ry": GateSpec("ry", 1, 1),
    "rzz": GateSpec("rzz", 2, 1),
    "swap": GateSpec("swap", 2, 0),
    "cz": GateSpec("cz", 2, 0),
    "cp": GateSpec("cp", 2, 1),
    "measure": GateSpec("measure", 1, 0, is_directive=True),
    "barrier": GateSpec("barrier", 0, 0, is_directive=True),
}

#: The IBMQ basis-gate alphabet used by the paper's devices (Section II-A).
BASIS_GATES: tuple[str, ...] = ("id", "rz", "sx", "x", "cx")


@dataclass(frozen=True)
class Instruction:
    """One gate application inside a circuit.

    Attributes:
        name: gate name, lowercase, one of :data:`GATE_SPECS`.
        qubits: target qubit indices (control first for ``cx``).
        params: gate angles; floats or symbolic parameters.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[ParameterValue, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise ValueError(f"unknown gate {self.name!r}")
        if spec.name != "barrier" and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} applied to duplicate qubits {self.qubits}")
        if len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} parameters, "
                f"got {len(self.params)}"
            )

    @property
    def spec(self) -> GateSpec:
        """Static gate description."""
        return GATE_SPECS[self.name]

    @property
    def is_measurement(self) -> bool:
        return self.name == "measure"

    @property
    def is_barrier(self) -> bool:
        return self.name == "barrier"

    @property
    def is_unitary(self) -> bool:
        """True when the instruction has a unitary matrix representation."""
        return not self.spec.is_directive

    @property
    def free_parameters(self) -> frozenset[Parameter]:
        """Free (unbound) parameters used by this instruction."""
        return free_parameters(self.params)

    def bind(self, values: Mapping[Parameter, float]) -> "Instruction":
        """Return a copy with known symbolic parameters replaced by floats.

        Parameters missing from ``values`` are left symbolic (partial
        binding), so callers can layer bindings or detect leftovers.
        """
        if not self.free_parameters:
            return self
        bound = tuple(
            bind_value(p, values)
            if not hasattr(p, "parameters") or p.parameters <= values.keys()
            else p
            for p in self.params
        )
        return Instruction(self.name, self.qubits, bound)

    def remap(self, mapping: Mapping[int, int]) -> "Instruction":
        """Return a copy with qubit indices translated through ``mapping``."""
        return Instruction(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(str(p) for p in self.params)
            return f"{self.name}({args}) q{list(self.qubits)}"
        return f"{self.name} q{list(self.qubits)}"


def is_two_qubit(name: str) -> bool:
    """True when ``name`` is a two-qubit gate."""
    spec = GATE_SPECS.get(name)
    return spec is not None and spec.num_qubits == 2 and not spec.is_directive


def is_parameterized_gate(name: str) -> bool:
    """True when ``name`` takes at least one angle parameter."""
    spec = GATE_SPECS.get(name)
    return spec is not None and spec.num_params > 0


# ---------------------------------------------------------------------------
# Unitary matrices
# ---------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)

_FIXED_1Q: dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV,
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
}

_FIXED_2Q: dict[str, np.ndarray] = {
    # Qubit ordering convention: for cx, qubits = (control, target); the
    # matrix is written in the basis |control, target>.
    "cx": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-0.5j * theta), 0], [0, np.exp(0.5j * theta)]], dtype=complex
    )


def _rzz(theta: float) -> np.ndarray:
    phase = np.exp(-0.5j * theta)
    conj = np.exp(0.5j * theta)
    return np.diag([phase, conj, conj, phase]).astype(complex)


def _cp(theta: float) -> np.ndarray:
    return np.diag([1.0, 1.0, 1.0, np.exp(1j * theta)]).astype(complex)


@lru_cache(maxsize=4096)
def _cached_gate_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    """Build (once) the read-only unitary for a (name, params) pair.

    Simulation re-applies the same few unitaries thousands of times per
    training run; memoizing the built matrices removes that rebuild cost.
    The cached arrays are marked read-only so sharing them is safe.
    """
    if name in _FIXED_1Q:
        matrix = _FIXED_1Q[name].copy()
    elif name in _FIXED_2Q:
        matrix = _FIXED_2Q[name].copy()
    else:
        theta = params[0]
        if name == "rx":
            matrix = _rx(theta)
        elif name == "ry":
            matrix = _ry(theta)
        elif name == "rz":
            matrix = _rz(theta)
        elif name == "rzz":
            matrix = _rzz(theta)
        elif name == "cp":
            matrix = _cp(theta)
        else:
            raise ValueError(f"no matrix rule for gate {name!r}")
    matrix.setflags(write=False)
    return matrix


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix for a gate with bound (float) parameters.

    The returned array is a shared, memoized, **read-only** matrix; copy it
    before mutating.

    Args:
        name: gate name from :data:`GATE_SPECS`.
        params: bound angle values; length must match the gate's arity.

    Raises:
        ValueError: for measurement/barrier directives or unknown gates.
    """
    spec = GATE_SPECS.get(name)
    if spec is None:
        raise ValueError(f"unknown gate {name!r}")
    if spec.is_directive:
        raise ValueError(f"gate {name!r} has no unitary representation")
    if len(params) != spec.num_params:
        raise ValueError(
            f"gate {name!r} expects {spec.num_params} parameters, got {len(params)}"
        )
    return _cached_gate_matrix(name, tuple(float(p) for p in params))
