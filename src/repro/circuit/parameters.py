"""Symbolic parameters for variational quantum circuits.

Variational quantum algorithms optimize circuits whose gate angles are not
fixed numbers but free parameters.  This module provides the small symbolic
layer used throughout the library: :class:`Parameter` (a named free angle),
:class:`ParameterExpression` (a parameter scaled and shifted by constants,
enough to express the parameter-shift rule and QAOA cost layers), and
:class:`ParameterVector` (a convenience factory for ``theta[0] .. theta[n-1]``).

The design intentionally avoids a full symbolic-algebra system: every
expression is affine in exactly one parameter (``coeff * p + offset``), which
covers everything the EQC paper requires (parameter-shift forward/backward
circuits, RZZ cost layers parameterized by a shared angle) while keeping
binding and equality semantics trivial to reason about.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Union

__all__ = [
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "ParameterValue",
    "bind_value",
]

_uid_counter = itertools.count()

#: A gate angle is either a concrete float, a free parameter, or an affine
#: expression of a free parameter.
ParameterValue = Union[float, "Parameter", "ParameterExpression"]


class Parameter:
    """A named free parameter of a variational circuit.

    Two parameters are equal only if they are the *same object* (or share the
    same unique id), so distinct parameters may reuse a display name without
    colliding.  Parameters support the small amount of arithmetic needed to
    build shifted/scaled angles: ``theta + 0.5``, ``0.5 * theta``, ``-theta``.
    """

    __slots__ = ("name", "_uid")

    def __init__(self, name: str) -> None:
        self.name = str(name)
        self._uid = next(_uid_counter)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self, coeff=1.0, offset=float(other))

    __radd__ = __add__

    def __sub__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self, coeff=1.0, offset=-float(other))

    def __rsub__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self, coeff=-1.0, offset=float(other))

    def __mul__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self, coeff=float(other), offset=0.0)

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self, coeff=-1.0, offset=0.0)

    # -- identity ---------------------------------------------------------
    def __hash__(self) -> int:
        return hash(("Parameter", self._uid))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Parameter) and other._uid == self._uid

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"

    # -- binding ----------------------------------------------------------
    def bind(self, values: Mapping["Parameter", float]) -> float:
        """Resolve this parameter to a float using ``values``.

        Raises:
            KeyError: if the parameter is missing from ``values``.
        """
        if self not in values:
            raise KeyError(f"no value bound for parameter {self.name!r}")
        return float(values[self])

    @property
    def parameters(self) -> frozenset["Parameter"]:
        """The set of free parameters (always a singleton for a Parameter)."""
        return frozenset({self})


@dataclass(frozen=True)
class ParameterExpression:
    """An affine expression ``coeff * parameter + offset``.

    This is the only expression form the library needs: the parameter-shift
    rule shifts an angle by a constant, and QAOA layers scale a shared angle
    by a constant edge weight.
    """

    parameter: Parameter
    coeff: float = 1.0
    offset: float = 0.0

    def bind(self, values: Mapping[Parameter, float]) -> float:
        """Resolve the expression to a float using ``values``."""
        return self.coeff * self.parameter.bind(values) + self.offset

    @property
    def parameters(self) -> frozenset[Parameter]:
        """The set of free parameters appearing in the expression."""
        return frozenset({self.parameter})

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self.parameter, self.coeff, self.offset + float(other))

    __radd__ = __add__

    def __sub__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self.parameter, self.coeff, self.offset - float(other))

    def __mul__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(
            self.parameter, self.coeff * float(other), self.offset * float(other)
        )

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self.parameter, -self.coeff, -self.offset)

    def __repr__(self) -> str:
        return f"{self.coeff}*{self.parameter.name} + {self.offset}"


class ParameterVector:
    """A list of related parameters named ``prefix[0] .. prefix[n-1]``.

    Example:
        >>> theta = ParameterVector("theta", 3)
        >>> [p.name for p in theta]
        ['theta[0]', 'theta[1]', 'theta[2]']
    """

    def __init__(self, prefix: str, length: int) -> None:
        if length < 0:
            raise ValueError("ParameterVector length must be non-negative")
        self.prefix = prefix
        self._params = [Parameter(f"{prefix}[{i}]") for i in range(length)]

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __getitem__(self, index):
        return self._params[index]

    def __repr__(self) -> str:
        return f"ParameterVector({self.prefix!r}, {len(self)})"

    @property
    def params(self) -> list[Parameter]:
        """The underlying parameters as a list (copy)."""
        return list(self._params)


def bind_value(value: ParameterValue, values: Mapping[Parameter, float]) -> float:
    """Resolve a gate angle (float, Parameter, or expression) to a float."""
    if isinstance(value, (Parameter, ParameterExpression)):
        return value.bind(values)
    return float(value)


def free_parameters(values: Iterable[ParameterValue]) -> frozenset[Parameter]:
    """Collect the free parameters appearing in an iterable of angles."""
    found: set[Parameter] = set()
    for value in values:
        if isinstance(value, (Parameter, ParameterExpression)):
            found |= value.parameters
    return frozenset(found)
