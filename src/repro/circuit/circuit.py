"""The :class:`QuantumCircuit` intermediate representation.

A circuit is an ordered list of :class:`~repro.circuit.gates.Instruction`
records over ``num_qubits`` qubits.  It supports the operations the rest of
the library needs:

* building ansatze gate by gate (``circuit.ry(theta, 0)`` style helpers),
* binding symbolic parameters to floats (parameter-shift evaluations),
* composition and qubit remapping (transpiler passes),
* structural metrics — gate counts, depth, critical depth — which feed the
  EQC ``PCorrect`` analytic model (paper Eq. 2).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

from .gates import GATE_SPECS, Instruction, is_two_qubit
from .parameters import Parameter, ParameterValue

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered gate list over a fixed number of qubits.

    Example:
        >>> qc = QuantumCircuit(2)
        >>> qc.h(0)
        >>> qc.cx(0, 1)
        >>> qc.measure_all()
        >>> qc.depth()
        3
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: list[Instruction] = []
        # Derived views are cached (and invalidated on mutation): hot paths —
        # the batch engine, the program compiler, structure-keyed caches —
        # read `instructions` and `structure_key` far more often than circuits
        # are built.
        self._instructions_cache: tuple[Instruction, ...] | None = None
        self._structure_key_cache: tuple | None = None
        self._parameters_cache: frozenset | None = None
        self._measured_qubits_cache: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a pre-built instruction, validating qubit indices."""
        for q in instruction.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for a {self.num_qubits}-qubit circuit"
                )
        self._instructions.append(instruction)
        self._invalidate_caches()
        return self

    def _invalidate_caches(self) -> None:
        self._instructions_cache = None
        self._structure_key_cache = None
        self._parameters_cache = None
        self._measured_qubits_cache = None

    def add_gate(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[ParameterValue] = (),
    ) -> "QuantumCircuit":
        """Append a gate by name."""
        return self.append(Instruction(name, tuple(int(q) for q in qubits), tuple(params)))

    # single-qubit helpers ------------------------------------------------
    def id(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("id", [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("x", [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("y", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("z", [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("h", [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("s", [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("sdg", [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("t", [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("sx", [qubit])

    def rx(self, theta: ParameterValue, qubit: int) -> "QuantumCircuit":
        return self.add_gate("rx", [qubit], [theta])

    def ry(self, theta: ParameterValue, qubit: int) -> "QuantumCircuit":
        return self.add_gate("ry", [qubit], [theta])

    def rz(self, theta: ParameterValue, qubit: int) -> "QuantumCircuit":
        return self.add_gate("rz", [qubit], [theta])

    # two-qubit helpers ---------------------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate("cx", [control, target])

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate("cz", [a, b])

    def cp(self, theta: ParameterValue, control: int, target: int) -> "QuantumCircuit":
        return self.add_gate("cp", [control, target], [theta])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate("swap", [a, b])

    def rzz(self, theta: ParameterValue, a: int, b: int) -> "QuantumCircuit":
        return self.add_gate("rzz", [a, b], [theta])

    # directives ----------------------------------------------------------
    def measure(self, qubit: int) -> "QuantumCircuit":
        return self.add_gate("measure", [qubit])

    def measure_all(self) -> "QuantumCircuit":
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    def barrier(self) -> "QuantumCircuit":
        return self.append(Instruction("barrier", ()))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> tuple[Instruction, ...]:
        """The instruction sequence (read-only view, cached until mutation)."""
        if self._instructions_cache is None:
            self._instructions_cache = tuple(self._instructions)
        return self._instructions_cache

    @property
    def structure_key(self) -> tuple:
        """A hashable key identifying the circuit's gate *structure*.

        Two circuits share a key exactly when they apply the same gate names
        to the same qubits in the same order (parameter values excluded) —
        the condition for sharing one compiled gate program or one stacked
        batch simulation.  Cached until the circuit is mutated.
        """
        if self._structure_key_cache is None:
            self._structure_key_cache = (
                self.num_qubits,
                tuple((inst.name, inst.qubits) for inst in self._instructions),
            )
        return self._structure_key_cache

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    @property
    def parameters(self) -> frozenset[Parameter]:
        """All free parameters appearing in the circuit (cached view)."""
        if self._parameters_cache is None:
            found: set[Parameter] = set()
            for inst in self._instructions:
                found |= inst.free_parameters
            self._parameters_cache = frozenset(found)
        return self._parameters_cache

    @property
    def is_bound(self) -> bool:
        """True when no symbolic parameters remain."""
        return not self.parameters

    @property
    def num_measurements(self) -> int:
        """Number of measurement directives (``M`` in paper Eq. 2)."""
        return sum(1 for inst in self._instructions if inst.is_measurement)

    @property
    def measured_qubits(self) -> tuple[int, ...]:
        """Qubit indices that carry a measurement, in insertion order (cached)."""
        if self._measured_qubits_cache is None:
            seen: list[int] = []
            for inst in self._instructions:
                if inst.is_measurement and inst.qubits[0] not in seen:
                    seen.append(inst.qubits[0])
            self._measured_qubits_cache = tuple(seen)
        return self._measured_qubits_cache

    def count_ops(self) -> Counter:
        """Histogram of gate names."""
        return Counter(inst.name for inst in self._instructions)

    @property
    def num_single_qubit_gates(self) -> int:
        """Count of unitary one-qubit gates (``G1`` in paper Eq. 2)."""
        return sum(
            1
            for inst in self._instructions
            if inst.is_unitary and GATE_SPECS[inst.name].num_qubits == 1
        )

    @property
    def num_two_qubit_gates(self) -> int:
        """Count of unitary two-qubit gates (``G2`` in paper Eq. 2).

        SWAPs that survive to this representation count as three CNOTs, the
        cost they incur on hardware (Section II-A of the paper).
        """
        total = 0
        for inst in self._instructions:
            if not inst.is_unitary or not is_two_qubit(inst.name):
                continue
            total += 3 if inst.name == "swap" else 1
        return total

    def depth(self) -> int:
        """Circuit depth: longest chain of dependent instructions.

        Measurements count as a layer on their qubit; barriers synchronize
        all qubits without adding depth.
        """
        level = [0] * self.num_qubits
        for inst in self._instructions:
            if inst.is_barrier:
                sync = max(level) if level else 0
                level = [sync] * self.num_qubits
                continue
            start = max(level[q] for q in inst.qubits)
            for q in inst.qubits:
                level[q] = start + 1
        return max(level) if level else 0

    def critical_depth(self) -> int:
        """Critical depth: longest chain counting only two-qubit gates.

        This is the ``CD`` term of the paper's ``PCorrect`` model (Eq. 2) —
        two-qubit gates dominate both error and duration, so the critical
        path is measured in units of entangling layers.
        """
        level = [0] * self.num_qubits
        for inst in self._instructions:
            if inst.is_barrier:
                sync = max(level) if level else 0
                level = [sync] * self.num_qubits
                continue
            if not inst.is_unitary:
                continue
            weight = 1 if is_two_qubit(inst.name) else 0
            start = max(level[q] for q in inst.qubits)
            for q in inst.qubits:
                level[q] = start + weight
        return max(level) if level else 0

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Shallow copy (instructions are immutable, so this is safe)."""
        other = QuantumCircuit(self.num_qubits, name or self.name)
        other._instructions = list(self._instructions)
        return other

    def bind_parameters(self, values: Mapping[Parameter, float]) -> "QuantumCircuit":
        """Return a copy with symbolic parameters replaced by floats.

        Raises:
            KeyError: if any free parameter is missing from ``values``.
        """
        bound = self.copy()
        bound._instructions = [inst.bind(values) for inst in self._instructions]
        bound._invalidate_caches()
        return bound

    def assign_by_order(self, values: Sequence[float]) -> "QuantumCircuit":
        """Bind parameters by their first-appearance order in the circuit.

        Convenience for optimizers that track a flat parameter vector.
        """
        ordered = self.ordered_parameters()
        if len(values) != len(ordered):
            raise ValueError(
                f"expected {len(ordered)} values, got {len(values)}"
            )
        return self.bind_parameters(dict(zip(ordered, values)))

    def ordered_parameters(self) -> list[Parameter]:
        """Free parameters in the order they first appear."""
        seen: list[Parameter] = []
        for inst in self._instructions:
            for p in inst.free_parameters:
                if p not in seen:
                    seen.append(p)
        return seen

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.num_qubits > self.num_qubits:
            raise ValueError("cannot compose a wider circuit onto a narrower one")
        combined = self.copy()
        combined._instructions.extend(other._instructions)
        combined._invalidate_caches()
        return combined

    def remap_qubits(self, mapping: Mapping[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Return a copy with qubits relabelled via ``mapping``.

        Args:
            mapping: logical-to-physical index map; must cover every qubit used.
            num_qubits: width of the new circuit (defaults to current width).
        """
        width = num_qubits if num_qubits is not None else self.num_qubits
        out = QuantumCircuit(width, self.name)
        for inst in self._instructions:
            if inst.is_barrier:
                out.barrier()
                continue
            out.append(inst.remap(mapping))
        return out

    def without_measurements(self) -> "QuantumCircuit":
        """Return a copy with measurement directives removed."""
        out = QuantumCircuit(self.num_qubits, self.name)
        out._instructions = [i for i in self._instructions if not i.is_measurement]
        out._invalidate_caches()
        return out

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._instructions)}, params={len(self.parameters)})"
        )

    def draw(self) -> str:
        """A plain-text, one-instruction-per-line rendering (for debugging)."""
        lines = [f"{self.name}: {self.num_qubits} qubits"]
        lines.extend(f"  {inst!r}" for inst in self._instructions)
        return "\n".join(lines)
