"""The simulated QPU: calibration lifecycle, drift, and noisy execution.

A :class:`QPU` plays the role of one IBMQ backend.  It owns:

* a static :class:`QPUSpec` (name, topology, quantum volume, noise and drift
  profiles, speed characteristics — the Table I row),
* a calibration lifecycle: every ``calibration_period_hours`` a fresh
  :class:`~repro.noise.calibration.CalibrationSnapshot` is generated; the
  *reported* snapshot is what clients see, while the *effective* noise drifts
  away from it with calibration age,
* an execution path: given a logical circuit and the footprint of its
  transpiled form, the QPU computes its **true** probability of error-free
  execution (including latent cross-talk and drift the estimator cannot see)
  and produces sampled counts through the analytic mixing executor.

The distinction between *reported* and *effective* calibration is the crux of
the paper's Fig. 4/Fig. 5 observations and of the EQC weighting system: the
estimator works from stale reported data, the hardware behaves according to
its drifted reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..noise.calibration import CalibrationSnapshot
from ..noise.drift import DriftModel, DriftProfile
from ..noise.generator import CalibrationGenerator, NoiseProfile
from ..simulator.mixing import (
    MixingNoiseSpec,
    execute_with_mixing,
    noisy_probabilities,
    noisy_probabilities_batch,
    noisy_sweep_probabilities,
)
from ..simulator.result import Counts, ExecutionResult
from ..simulator.sampler import sample_distribution_batch
from .topology import Topology

__all__ = [
    "CircuitFootprint",
    "QPUSpec",
    "QPU",
    "SECONDS_PER_HOUR",
    "job_slot_circuit_seconds",
    "success_probability",
]

SECONDS_PER_HOUR = 3600.0


def job_slot_circuit_seconds(job_duration_seconds: float) -> float:
    """Device-clock seconds one circuit of a batch occupies.

    One device "job slot" (``QPUSpec.base_job_seconds``) covers a
    forward/backward circuit pair, so each circuit advances the clock by half
    a slot.  Both the in-batch noise clock (:meth:`QPU.execute_batch`) and the
    cloud provider's finish-time/busy accounting use this single definition —
    changing the convention here keeps them consistent.
    """
    return job_duration_seconds / 2.0


@dataclass(frozen=True)
class CircuitFootprint:
    """Structural cost of a transpiled circuit on a particular device.

    This is the information the ``PCorrect`` model (paper Eq. 2) consumes:
    single- and two-qubit gate counts after routing, the critical depth, the
    number of measurements, and which physical couplings/qubits are used.
    """

    num_single_qubit_gates: int
    num_two_qubit_gates: int
    critical_depth: int
    num_measurements: int
    used_qubits: tuple[int, ...] = ()
    used_couplings: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "num_single_qubit_gates",
            "num_two_qubit_gates",
            "critical_depth",
            "num_measurements",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def from_circuit(
        cls,
        circuit: QuantumCircuit,
        used_qubits: Sequence[int] | None = None,
        used_couplings: Sequence[tuple[int, int]] | None = None,
    ) -> "CircuitFootprint":
        """Footprint of a circuit that is already expressed for the device."""
        return cls(
            num_single_qubit_gates=circuit.num_single_qubit_gates,
            num_two_qubit_gates=circuit.num_two_qubit_gates,
            critical_depth=circuit.critical_depth(),
            num_measurements=circuit.num_measurements,
            used_qubits=tuple(used_qubits or ()),
            used_couplings=tuple(used_couplings or ()),
        )


@dataclass(frozen=True)
class QPUSpec:
    """Static description of one backend — a row of the paper's Table I."""

    name: str
    num_qubits: int
    processor: str
    quantum_volume: int
    topology: Topology
    noise_profile: NoiseProfile = field(default_factory=NoiseProfile)
    drift_profile: DriftProfile = field(default_factory=DriftProfile)
    #: Average wall-clock seconds to run one gradient job (two circuits) once
    #: the job reaches the device, including classical overheads.
    base_job_seconds: float = 30.0
    #: Calibration cadence, hours.
    calibration_period_hours: float = 24.0
    #: How often the provider republishes measured device properties (T1/T2,
    #: readout, gate errors) between full calibrations.  Client-side
    #: ``PCorrect`` estimates can therefore track drift with at most this lag.
    properties_refresh_hours: float = 2.0
    #: Deterministic seed for this device's calibration / drift randomness.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_qubits != self.topology.num_qubits:
            raise ValueError(
                f"{self.name}: num_qubits={self.num_qubits} does not match "
                f"topology width {self.topology.num_qubits}"
            )
        if self.base_job_seconds <= 0:
            raise ValueError("base_job_seconds must be positive")
        if self.calibration_period_hours <= 0:
            raise ValueError("calibration_period_hours must be positive")


class QPU:
    """A stateful simulated quantum backend."""

    def __init__(self, spec: QPUSpec) -> None:
        self.spec = spec
        self._generator = CalibrationGenerator(spec.noise_profile, spec.seed)
        self._drift = DriftModel(spec.drift_profile, spec.seed)
        self._rng = np.random.default_rng((spec.seed, 0xD1CE))
        #: Reported snapshots are a pure function of the calibration cycle;
        #: regenerating one costs ~150us of lognormal draws, so the batched
        #: execution path memoizes them per cycle (values are identical).
        self._reported_cache: dict[int, CalibrationSnapshot] = {}
        #: Raw per-cycle calibration value lists consumed by the fast
        #: execution-noise path (see :meth:`execution_noise`).
        self._cycle_stats: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # identity / convenience
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_qubits(self) -> int:
        return self.spec.num_qubits

    @property
    def topology(self) -> Topology:
        return self.spec.topology

    def __repr__(self) -> str:
        return (
            f"QPU({self.name!r}, qubits={self.num_qubits}, "
            f"QV={self.spec.quantum_volume}, topology={self.topology.name!r})"
        )

    def __getstate__(self) -> dict:
        """Pickle support (spawn-started worker processes).

        The per-cycle memo caches are pure functions of the spec and rebuild
        on demand with identical values; dropping them keeps the payload
        lean.  The device RNG state transfers as-is so a pickled device
        resumes its stream exactly.
        """
        state = self.__dict__.copy()
        state["_reported_cache"] = {}
        state["_cycle_stats"] = {}
        return state

    # ------------------------------------------------------------------
    # calibration lifecycle
    # ------------------------------------------------------------------
    def calibration_cycle(self, now: float) -> int:
        """Index of the calibration cycle containing simulation time ``now``."""
        period = self.spec.calibration_period_hours * SECONDS_PER_HOUR
        return max(0, int(float(now) // period))

    def hours_since_calibration(self, now: float) -> float:
        """Age of the current calibration, in hours."""
        period = self.spec.calibration_period_hours * SECONDS_PER_HOUR
        return (float(now) % period) / SECONDS_PER_HOUR

    def reported_calibration(self, now: float) -> CalibrationSnapshot:
        """The calibration snapshot the provider publishes at time ``now``.

        This is what EQC client nodes see; it does not change between
        calibration events no matter how far the hardware drifts.
        """
        cycle = self.calibration_cycle(now)
        snapshot = self._reported_cache.get(cycle)
        if snapshot is None:
            period = self.spec.calibration_period_hours * SECONDS_PER_HOUR
            snapshot = self._generator.generate(
                device_name=self.name,
                num_qubits=self.num_qubits,
                couplings=self.topology.directed_couplings,
                timestamp=cycle * period,
                cycle=cycle,
            )
            self._reported_cache[cycle] = snapshot
        return snapshot

    def effective_calibration(self, now: float) -> CalibrationSnapshot:
        """The device's *actual* noise at time ``now`` (reported + drift)."""
        reported = self.reported_calibration(now)
        factor = self.drift_factor(now)
        return reported.scale_errors(factor)

    def estimated_calibration(self, now: float) -> CalibrationSnapshot:
        """The freshest property data a client can obtain at time ``now``.

        Between full calibrations the provider republishes measured device
        properties every ``properties_refresh_hours``; the estimate therefore
        tracks the true drift with a bounded lag, but it never sees latent
        cross-talk or a burst that started after the last refresh — which is
        the gap the Fig. 4 scatter quantifies.
        """
        reported = self.reported_calibration(now)
        refresh = max(self.spec.properties_refresh_hours, 1e-6)
        age = self.hours_since_calibration(now)
        last_refresh_age = math.floor(age / refresh) * refresh
        factor = self._drift.drift_factor(last_refresh_age, self.calibration_cycle(now))
        return reported.scale_errors(factor)

    def drift_factor(self, now: float) -> float:
        """Multiplicative error inflation relative to the reported snapshot."""
        return self._drift.drift_factor(
            self.hours_since_calibration(now), self.calibration_cycle(now)
        )

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def job_duration_seconds(self, now: float) -> float:
        """Wall-clock seconds to execute one gradient job starting at ``now``.

        The base device speed is slowed down by the drift model (noisy windows
        come with retries and maintenance) — this is what makes Toronto-style
        devices swing between 6.5 and 0.03 epochs/hour.
        """
        speed = self._drift.speed_factor(
            self.hours_since_calibration(now), self.calibration_cycle(now)
        )
        return self.spec.base_job_seconds / max(speed, 1e-6)

    # ------------------------------------------------------------------
    # noisy execution
    # ------------------------------------------------------------------
    def true_success_probability(self, footprint: CircuitFootprint, now: float) -> float:
        """Ground-truth probability the circuit runs without a fault.

        Mirrors the structure of the paper's Eq. 2 but is evaluated on the
        *effective* (drifted) calibration and includes the latent cross-talk
        penalty of dense topologies; the estimator only ever approximates this
        from the reported snapshot.
        """
        calibration = self.effective_calibration(now)
        return success_probability(
            calibration,
            footprint,
            crosstalk=self.spec.noise_profile.crosstalk,
            connectivity=self.topology.average_degree,
        )

    def execution_noise(self, footprint: CircuitFootprint, now: float) -> MixingNoiseSpec:
        """Noise specification for one execution at time ``now``.

        The coherent over-rotation bias grows with the drift factor: a device
        deep into a noisy window not only depolarizes more, it also behaves
        *differently* from its calibrated self, which is what makes learned
        parameters device-biased and what produces Casablanca-style
        post-convergence divergence in the Fig. 6 reproduction.

        This is the hot call of a device batch (one spec per circuit on the
        clock), so it scales the raw per-cycle calibration values directly —
        element for element the arithmetic of
        :meth:`CalibrationSnapshot.scale_errors` followed by the snapshot's
        ``average_*`` sums, without constructing the intermediate snapshot —
        and feeds the scalar averages straight into the Eq. 2 core.  The
        resulting spec is bit-identical to the snapshot-based construction
        (pinned by the test suite against :meth:`true_success_probability`).
        """
        factor = self.drift_factor(now)
        t1s, t2s, p01s, p10s, sq_errors, cx_errors, mu_g1, mu_g2 = self._stats_for(
            self.calibration_cycle(now)
        )
        n = len(t1s)
        t1_avg = sum(t1 / factor for t1 in t1s) / n
        t2_avg = sum(min(t2 / factor, 2 * t1 / factor) for t1, t2 in zip(t1s, t2s)) / n
        scaled_p01 = [min(1.0, max(0.0, p * factor)) for p in p01s]
        scaled_p10 = [min(1.0, max(0.0, p * factor)) for p in p10s]
        omega = sum(
            0.5 * (p01 + p10) for p01, p10 in zip(scaled_p01, scaled_p10)
        ) / n
        gamma = sum(min(1.0, max(0.0, e * factor)) for e in sq_errors) / n
        beta = (
            sum(min(1.0, max(0.0, e * factor)) for e in cx_errors) / len(cx_errors)
            if cx_errors
            else 0.0
        )
        success = _success_from_averages(
            footprint,
            mu_g1=mu_g1,
            mu_g2=mu_g2 or mu_g1,
            t1=t1_avg,
            t2=t2_avg,
            gamma=gamma,
            beta=beta,
            omega=omega,
            crosstalk=self.spec.noise_profile.crosstalk,
            connectivity=self.topology.average_degree,
        )
        per_qubit = tuple(
            zip(scaled_p01, scaled_p10)
        )[: max(1, footprint.num_measurements)]
        return MixingNoiseSpec(
            success_probability=success,
            per_qubit_readout=per_qubit,
            coherent_bias=self.spec.noise_profile.coherent_bias * factor,
        )

    def _stats_for(self, cycle: int) -> tuple:
        """Raw calibration value lists of one cycle, extracted once."""
        stats = self._cycle_stats.get(cycle)
        if stats is None:
            period = self.spec.calibration_period_hours * SECONDS_PER_HOUR
            snapshot = self.reported_calibration(cycle * period)
            stats = (
                [q.t1 for q in snapshot.qubits],
                [q.t2 for q in snapshot.qubits],
                [q.readout_p01 for q in snapshot.qubits],
                [q.readout_p10 for q in snapshot.qubits],
                [g.error for g in snapshot.single_qubit_gates],
                [g.error for g in snapshot.two_qubit_gates.values()],
                snapshot.average_single_qubit_gate_time,
                snapshot.average_cx_gate_time,
            )
            self._cycle_stats[cycle] = stats
        return stats

    def execute(
        self,
        circuit: QuantumCircuit,
        footprint: CircuitFootprint,
        shots: int,
        now: float,
        rng: np.random.Generator | None = None,
    ) -> ExecutionResult:
        """Run a bound logical circuit with this device's current noise.

        Args:
            circuit: the fully-bound *logical* circuit (4–5 qubits); the
                statevector is simulated at this width.
            footprint: structural cost of the circuit's transpiled form on
                this device (drives the error magnitude).
            shots: number of measurement shots.
            now: simulation time (seconds) the job starts executing.
            rng: randomness source; defaults to the device's own stream.
        """
        rng = rng if rng is not None else self._rng
        noise = self.execution_noise(footprint, now)
        counts = execute_with_mixing(circuit, noise, shots, rng)
        duration = self.job_duration_seconds(now)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            backend_name=self.name,
            duration_seconds=duration,
            metadata={
                "success_probability": noise.success_probability,
                "calibration_age_hours": self.hours_since_calibration(now),
                "drift_factor": self.drift_factor(now),
            },
        )

    def noise_timeline(
        self, num_circuits: int, footprint: CircuitFootprint, now: float
    ) -> tuple[list[float], list[float], list[MixingNoiseSpec]]:
        """Per-circuit (start time, duration, noise spec) for one batch.

        The device clock advances *within* a batch: circuit ``i`` starts at
        ``now`` plus half the accumulated job durations of its predecessors
        (one device job slot covers a forward/backward pair), and its noise
        spec is evaluated at that start time.  Pure clock/calibration
        arithmetic — no simulation, no RNG consumption — so the whole
        timeline can be computed up front and handed to the batched pipeline.
        """
        starts, durations, specs, _ = self._timeline_with_metadata(
            num_circuits, footprint, now
        )
        return starts, durations, specs

    def _timeline_with_metadata(
        self, num_circuits: int, footprint: CircuitFootprint, now: float
    ) -> tuple[list[float], list[float], list[MixingNoiseSpec], list[dict]]:
        """:meth:`noise_timeline` plus the per-result metadata dicts."""
        starts: list[float] = []
        durations: list[float] = []
        specs: list[MixingNoiseSpec] = []
        metadata: list[dict] = []
        elapsed = 0.0
        for _ in range(num_circuits):
            start = now + elapsed
            duration = self.job_duration_seconds(start)
            spec = self.execution_noise(footprint, start)
            starts.append(start)
            durations.append(duration)
            specs.append(spec)
            metadata.append(
                {
                    "success_probability": spec.success_probability,
                    "calibration_age_hours": self.hours_since_calibration(start),
                    "drift_factor": self.drift_factor(start),
                }
            )
            elapsed += job_slot_circuit_seconds(duration)
        return starts, durations, specs, metadata

    def execute_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        footprint: CircuitFootprint,
        shots: int,
        now: float,
        rng: np.random.Generator | None = None,
    ) -> list[ExecutionResult]:
        """Run a batch of bound circuits back to back on this device.

        This is the device-side batch entry point the cloud layer submits
        multi-circuit jobs through.  The per-circuit clock offsets and noise
        specs are computed up front (:meth:`noise_timeline`), the whole batch
        flows through the vectorized mixing pipeline
        (:func:`~repro.simulator.mixing.noisy_probabilities_batch`) as one
        ``(batch, 2**n)`` matrix, and shots are sampled from the device RNG
        stream in batch order — so noise, drift, and the RNG stream evolve
        exactly as they would for the equivalent sequence of single
        executions (:meth:`execute`, the sequential reference).  Batching
        changes the wall-clock cost, never the physics.
        """
        if not circuits:
            raise ValueError("a batch needs at least one circuit")
        if shots < 1:
            raise ValueError("shots must be >= 1")
        rng = rng if rng is not None else self._rng
        _, durations, specs, metadata = self._timeline_with_metadata(
            len(circuits), footprint, now
        )
        probabilities = noisy_probabilities_batch(circuits, specs)
        return self._sampled_results(
            circuits, probabilities, durations, metadata, shots, rng
        )

    def execute_sweep(
        self,
        templates: Sequence[QuantumCircuit],
        theta_matrix: np.ndarray,
        footprint: CircuitFootprint,
        shots: int,
        now: float,
        rng: np.random.Generator | None = None,
    ) -> list[ExecutionResult]:
        """Run a zero-rebind parameter sweep with this device's noise.

        The sweep's flat execution order is point-major with templates inner
        (the :func:`repro.vqa.gradient.parameter_shift_batch` order); each
        flat position occupies its own device job slot, exactly as if the
        bound circuits had been submitted through :meth:`execute_batch` — but
        no circuit is ever bound.
        """
        templates = list(templates)
        theta = np.atleast_2d(np.asarray(theta_matrix, dtype=float))
        if not templates:
            raise ValueError("a sweep needs at least one template")
        if shots < 1:
            raise ValueError("shots must be >= 1")
        rng = rng if rng is not None else self._rng
        flat = theta.shape[0] * len(templates)
        _, durations, specs, metadata = self._timeline_with_metadata(
            flat, footprint, now
        )
        probabilities = noisy_sweep_probabilities(templates, theta, specs)
        flat_templates = [
            templates[i % len(templates)] for i in range(flat)
        ]
        return self._sampled_results(
            flat_templates, probabilities, durations, metadata, shots, rng
        )

    def _sampled_results(
        self,
        circuits: Sequence[QuantumCircuit],
        probabilities: Sequence[np.ndarray],
        durations: Sequence[float],
        metadata: Sequence[dict],
        shots: int,
        rng: np.random.Generator,
    ) -> list[ExecutionResult]:
        """Sample a batch's distributions in batch order from one RNG stream.

        Consecutive circuits with equal measured-register widths draw their
        shots through one batched multinomial call; NumPy consumes the bit
        stream row by row, so draws and the final generator state are
        identical to per-circuit :func:`sample_distribution` calls.
        """
        widths = [
            len(c.measured_qubits or tuple(range(c.num_qubits))) for c in circuits
        ]
        counts_list: list[Counts] = []
        index = 0
        total = len(circuits)
        while index < total:
            end = index + 1
            while end < total and widths[end] == widths[index]:
                end += 1
            counts_list.extend(
                sample_distribution_batch(
                    np.stack(probabilities[index:end]),
                    shots,
                    rng,
                    num_bits=widths[index],
                )
            )
            index = end

        results: list[ExecutionResult] = []
        for counts, duration, meta in zip(counts_list, durations, metadata):
            results.append(
                ExecutionResult(
                    counts=counts,
                    shots=shots,
                    backend_name=self.name,
                    duration_seconds=duration,
                    metadata=meta,
                )
            )
        return results

    def noisy_distribution(
        self, circuit: QuantumCircuit, footprint: CircuitFootprint, now: float
    ) -> np.ndarray:
        """The exact (un-sampled) noisy outcome distribution at time ``now``."""
        return noisy_probabilities(circuit, self.execution_noise(footprint, now))


# ---------------------------------------------------------------------------
# shared success-probability formula
# ---------------------------------------------------------------------------

def success_probability(
    calibration: CalibrationSnapshot,
    footprint: CircuitFootprint,
    crosstalk: float = 0.0,
    connectivity: float = 0.0,
) -> float:
    """Probability of an error-free run given a calibration and a footprint.

    The functional form follows paper Eq. 2:

    ``P = exp(-CD * (mu_g1 + mu_g2)/2 / (T1 * T2 normalized))
        * (1 - gamma)^G1 * (1 - beta)^G2 * (1 - omega)^M``

    with an extra ``(1 - crosstalk * connectivity/4)^G2`` latent term applied
    only by the device truth model (``crosstalk=0`` reproduces Eq. 2 exactly,
    which is what the estimator uses).
    """
    return _success_from_averages(
        footprint,
        mu_g1=calibration.average_single_qubit_gate_time,
        mu_g2=calibration.average_cx_gate_time or calibration.average_single_qubit_gate_time,
        t1=calibration.average_t1,
        t2=calibration.average_t2,
        gamma=calibration.average_single_qubit_error,
        beta=calibration.average_cx_error,
        omega=calibration.average_readout_error,
        crosstalk=crosstalk,
        connectivity=connectivity,
    )


def _success_from_averages(
    footprint: CircuitFootprint,
    *,
    mu_g1: float,
    mu_g2: float,
    t1: float,
    t2: float,
    gamma: float,
    beta: float,
    omega: float,
    crosstalk: float,
    connectivity: float,
) -> float:
    """The Eq. 2 core on scalar calibration averages (see the wrapper above)."""
    g1 = footprint.num_single_qubit_gates
    g2 = footprint.num_two_qubit_gates
    cd = footprint.critical_depth
    m = footprint.num_measurements

    # Decoherence along the critical path: each entangling layer exposes the
    # register for roughly the average gate duration; the decay constant is
    # the geometric combination of T1 and T2 (paper Eq. 2 writes T1*T2 — we
    # use sqrt(T1*T2) so the exponent has dimensions of time over time).
    exposure = cd * 0.5 * (mu_g1 + mu_g2)
    decay_constant = math.sqrt(t1 * t2)
    coherence_term = math.exp(-exposure / decay_constant) if decay_constant > 0 else 0.0

    gate_term = ((1.0 - gamma) ** g1) * ((1.0 - beta) ** g2)
    spam_term = (1.0 - omega) ** m

    crosstalk_term = 1.0
    if crosstalk > 0.0 and g2 > 0:
        per_gate = min(1.0, crosstalk * max(connectivity, 1.0) / 4.0)
        crosstalk_term = (1.0 - per_gate) ** g2

    probability = coherence_term * gate_term * spam_term * crosstalk_term
    return float(min(1.0, max(0.0, probability)))
