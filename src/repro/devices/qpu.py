"""The simulated QPU: calibration lifecycle, drift, and noisy execution.

A :class:`QPU` plays the role of one IBMQ backend.  It owns:

* a static :class:`QPUSpec` (name, topology, quantum volume, noise and drift
  profiles, speed characteristics — the Table I row),
* a calibration lifecycle: every ``calibration_period_hours`` a fresh
  :class:`~repro.noise.calibration.CalibrationSnapshot` is generated; the
  *reported* snapshot is what clients see, while the *effective* noise drifts
  away from it with calibration age,
* an execution path: given a logical circuit and the footprint of its
  transpiled form, the QPU computes its **true** probability of error-free
  execution (including latent cross-talk and drift the estimator cannot see)
  and produces sampled counts through the analytic mixing executor.

The distinction between *reported* and *effective* calibration is the crux of
the paper's Fig. 4/Fig. 5 observations and of the EQC weighting system: the
estimator works from stale reported data, the hardware behaves according to
its drifted reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..noise.calibration import CalibrationSnapshot
from ..noise.drift import DriftModel, DriftProfile
from ..noise.generator import CalibrationGenerator, NoiseProfile
from ..simulator.mixing import MixingNoiseSpec, execute_with_mixing, noisy_probabilities
from ..simulator.result import Counts, ExecutionResult
from .topology import Topology

__all__ = [
    "CircuitFootprint",
    "QPUSpec",
    "QPU",
    "SECONDS_PER_HOUR",
    "job_slot_circuit_seconds",
    "success_probability",
]

SECONDS_PER_HOUR = 3600.0


def job_slot_circuit_seconds(job_duration_seconds: float) -> float:
    """Device-clock seconds one circuit of a batch occupies.

    One device "job slot" (``QPUSpec.base_job_seconds``) covers a
    forward/backward circuit pair, so each circuit advances the clock by half
    a slot.  Both the in-batch noise clock (:meth:`QPU.execute_batch`) and the
    cloud provider's finish-time/busy accounting use this single definition —
    changing the convention here keeps them consistent.
    """
    return job_duration_seconds / 2.0


@dataclass(frozen=True)
class CircuitFootprint:
    """Structural cost of a transpiled circuit on a particular device.

    This is the information the ``PCorrect`` model (paper Eq. 2) consumes:
    single- and two-qubit gate counts after routing, the critical depth, the
    number of measurements, and which physical couplings/qubits are used.
    """

    num_single_qubit_gates: int
    num_two_qubit_gates: int
    critical_depth: int
    num_measurements: int
    used_qubits: tuple[int, ...] = ()
    used_couplings: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "num_single_qubit_gates",
            "num_two_qubit_gates",
            "critical_depth",
            "num_measurements",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def from_circuit(
        cls,
        circuit: QuantumCircuit,
        used_qubits: Sequence[int] | None = None,
        used_couplings: Sequence[tuple[int, int]] | None = None,
    ) -> "CircuitFootprint":
        """Footprint of a circuit that is already expressed for the device."""
        return cls(
            num_single_qubit_gates=circuit.num_single_qubit_gates,
            num_two_qubit_gates=circuit.num_two_qubit_gates,
            critical_depth=circuit.critical_depth(),
            num_measurements=circuit.num_measurements,
            used_qubits=tuple(used_qubits or ()),
            used_couplings=tuple(used_couplings or ()),
        )


@dataclass(frozen=True)
class QPUSpec:
    """Static description of one backend — a row of the paper's Table I."""

    name: str
    num_qubits: int
    processor: str
    quantum_volume: int
    topology: Topology
    noise_profile: NoiseProfile = field(default_factory=NoiseProfile)
    drift_profile: DriftProfile = field(default_factory=DriftProfile)
    #: Average wall-clock seconds to run one gradient job (two circuits) once
    #: the job reaches the device, including classical overheads.
    base_job_seconds: float = 30.0
    #: Calibration cadence, hours.
    calibration_period_hours: float = 24.0
    #: How often the provider republishes measured device properties (T1/T2,
    #: readout, gate errors) between full calibrations.  Client-side
    #: ``PCorrect`` estimates can therefore track drift with at most this lag.
    properties_refresh_hours: float = 2.0
    #: Deterministic seed for this device's calibration / drift randomness.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_qubits != self.topology.num_qubits:
            raise ValueError(
                f"{self.name}: num_qubits={self.num_qubits} does not match "
                f"topology width {self.topology.num_qubits}"
            )
        if self.base_job_seconds <= 0:
            raise ValueError("base_job_seconds must be positive")
        if self.calibration_period_hours <= 0:
            raise ValueError("calibration_period_hours must be positive")


class QPU:
    """A stateful simulated quantum backend."""

    def __init__(self, spec: QPUSpec) -> None:
        self.spec = spec
        self._generator = CalibrationGenerator(spec.noise_profile, spec.seed)
        self._drift = DriftModel(spec.drift_profile, spec.seed)
        self._rng = np.random.default_rng((spec.seed, 0xD1CE))

    # ------------------------------------------------------------------
    # identity / convenience
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_qubits(self) -> int:
        return self.spec.num_qubits

    @property
    def topology(self) -> Topology:
        return self.spec.topology

    def __repr__(self) -> str:
        return (
            f"QPU({self.name!r}, qubits={self.num_qubits}, "
            f"QV={self.spec.quantum_volume}, topology={self.topology.name!r})"
        )

    # ------------------------------------------------------------------
    # calibration lifecycle
    # ------------------------------------------------------------------
    def calibration_cycle(self, now: float) -> int:
        """Index of the calibration cycle containing simulation time ``now``."""
        period = self.spec.calibration_period_hours * SECONDS_PER_HOUR
        return max(0, int(float(now) // period))

    def hours_since_calibration(self, now: float) -> float:
        """Age of the current calibration, in hours."""
        period = self.spec.calibration_period_hours * SECONDS_PER_HOUR
        return (float(now) % period) / SECONDS_PER_HOUR

    def reported_calibration(self, now: float) -> CalibrationSnapshot:
        """The calibration snapshot the provider publishes at time ``now``.

        This is what EQC client nodes see; it does not change between
        calibration events no matter how far the hardware drifts.
        """
        cycle = self.calibration_cycle(now)
        period = self.spec.calibration_period_hours * SECONDS_PER_HOUR
        return self._generator.generate(
            device_name=self.name,
            num_qubits=self.num_qubits,
            couplings=self.topology.directed_couplings,
            timestamp=cycle * period,
            cycle=cycle,
        )

    def effective_calibration(self, now: float) -> CalibrationSnapshot:
        """The device's *actual* noise at time ``now`` (reported + drift)."""
        reported = self.reported_calibration(now)
        factor = self.drift_factor(now)
        return reported.scale_errors(factor)

    def estimated_calibration(self, now: float) -> CalibrationSnapshot:
        """The freshest property data a client can obtain at time ``now``.

        Between full calibrations the provider republishes measured device
        properties every ``properties_refresh_hours``; the estimate therefore
        tracks the true drift with a bounded lag, but it never sees latent
        cross-talk or a burst that started after the last refresh — which is
        the gap the Fig. 4 scatter quantifies.
        """
        reported = self.reported_calibration(now)
        refresh = max(self.spec.properties_refresh_hours, 1e-6)
        age = self.hours_since_calibration(now)
        last_refresh_age = math.floor(age / refresh) * refresh
        factor = self._drift.drift_factor(last_refresh_age, self.calibration_cycle(now))
        return reported.scale_errors(factor)

    def drift_factor(self, now: float) -> float:
        """Multiplicative error inflation relative to the reported snapshot."""
        return self._drift.drift_factor(
            self.hours_since_calibration(now), self.calibration_cycle(now)
        )

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def job_duration_seconds(self, now: float) -> float:
        """Wall-clock seconds to execute one gradient job starting at ``now``.

        The base device speed is slowed down by the drift model (noisy windows
        come with retries and maintenance) — this is what makes Toronto-style
        devices swing between 6.5 and 0.03 epochs/hour.
        """
        speed = self._drift.speed_factor(
            self.hours_since_calibration(now), self.calibration_cycle(now)
        )
        return self.spec.base_job_seconds / max(speed, 1e-6)

    # ------------------------------------------------------------------
    # noisy execution
    # ------------------------------------------------------------------
    def true_success_probability(self, footprint: CircuitFootprint, now: float) -> float:
        """Ground-truth probability the circuit runs without a fault.

        Mirrors the structure of the paper's Eq. 2 but is evaluated on the
        *effective* (drifted) calibration and includes the latent cross-talk
        penalty of dense topologies; the estimator only ever approximates this
        from the reported snapshot.
        """
        calibration = self.effective_calibration(now)
        return success_probability(
            calibration,
            footprint,
            crosstalk=self.spec.noise_profile.crosstalk,
            connectivity=self.topology.average_degree,
        )

    def execution_noise(self, footprint: CircuitFootprint, now: float) -> MixingNoiseSpec:
        """Noise specification for one execution at time ``now``.

        The coherent over-rotation bias grows with the drift factor: a device
        deep into a noisy window not only depolarizes more, it also behaves
        *differently* from its calibrated self, which is what makes learned
        parameters device-biased and what produces Casablanca-style
        post-convergence divergence in the Fig. 6 reproduction.
        """
        calibration = self.effective_calibration(now)
        success = self.true_success_probability(footprint, now)
        per_qubit = tuple(
            (q.readout_p01, q.readout_p10)
            for q in calibration.qubits[: max(1, footprint.num_measurements)]
        )
        return MixingNoiseSpec(
            success_probability=success,
            per_qubit_readout=per_qubit,
            coherent_bias=self.spec.noise_profile.coherent_bias * self.drift_factor(now),
        )

    def execute(
        self,
        circuit: QuantumCircuit,
        footprint: CircuitFootprint,
        shots: int,
        now: float,
        rng: np.random.Generator | None = None,
    ) -> ExecutionResult:
        """Run a bound logical circuit with this device's current noise.

        Args:
            circuit: the fully-bound *logical* circuit (4–5 qubits); the
                statevector is simulated at this width.
            footprint: structural cost of the circuit's transpiled form on
                this device (drives the error magnitude).
            shots: number of measurement shots.
            now: simulation time (seconds) the job starts executing.
            rng: randomness source; defaults to the device's own stream.
        """
        rng = rng if rng is not None else self._rng
        noise = self.execution_noise(footprint, now)
        counts = execute_with_mixing(circuit, noise, shots, rng)
        duration = self.job_duration_seconds(now)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            backend_name=self.name,
            duration_seconds=duration,
            metadata={
                "success_probability": noise.success_probability,
                "calibration_age_hours": self.hours_since_calibration(now),
                "drift_factor": self.drift_factor(now),
            },
        )

    def execute_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        footprint: CircuitFootprint,
        shots: int,
        now: float,
        rng: np.random.Generator | None = None,
    ) -> list[ExecutionResult]:
        """Run a batch of bound circuits back to back on this device.

        This is the device-side batch entry point the cloud layer submits
        multi-circuit jobs through.  The device clock advances *within* the
        batch: circuit ``i`` executes at ``now`` plus half the accumulated job
        durations of its predecessors (one device job slot covers a
        forward/backward pair), so noise, drift, and the RNG stream evolve
        exactly as they would for the equivalent sequence of single
        executions — batching changes scheduling, never physics.
        """
        if not circuits:
            raise ValueError("a batch needs at least one circuit")
        rng = rng if rng is not None else self._rng
        results: list[ExecutionResult] = []
        elapsed = 0.0
        for circuit in circuits:
            result = self.execute(circuit, footprint, shots, now=now + elapsed, rng=rng)
            results.append(result)
            elapsed += job_slot_circuit_seconds(result.duration_seconds)
        return results

    def noisy_distribution(
        self, circuit: QuantumCircuit, footprint: CircuitFootprint, now: float
    ) -> np.ndarray:
        """The exact (un-sampled) noisy outcome distribution at time ``now``."""
        return noisy_probabilities(circuit, self.execution_noise(footprint, now))


# ---------------------------------------------------------------------------
# shared success-probability formula
# ---------------------------------------------------------------------------

def success_probability(
    calibration: CalibrationSnapshot,
    footprint: CircuitFootprint,
    crosstalk: float = 0.0,
    connectivity: float = 0.0,
) -> float:
    """Probability of an error-free run given a calibration and a footprint.

    The functional form follows paper Eq. 2:

    ``P = exp(-CD * (mu_g1 + mu_g2)/2 / (T1 * T2 normalized))
        * (1 - gamma)^G1 * (1 - beta)^G2 * (1 - omega)^M``

    with an extra ``(1 - crosstalk * connectivity/4)^G2`` latent term applied
    only by the device truth model (``crosstalk=0`` reproduces Eq. 2 exactly,
    which is what the estimator uses).
    """
    g1 = footprint.num_single_qubit_gates
    g2 = footprint.num_two_qubit_gates
    cd = footprint.critical_depth
    m = footprint.num_measurements

    mu_g1 = calibration.average_single_qubit_gate_time
    mu_g2 = calibration.average_cx_gate_time or calibration.average_single_qubit_gate_time
    t1 = calibration.average_t1
    t2 = calibration.average_t2

    # Decoherence along the critical path: each entangling layer exposes the
    # register for roughly the average gate duration; the decay constant is
    # the geometric combination of T1 and T2 (paper Eq. 2 writes T1*T2 — we
    # use sqrt(T1*T2) so the exponent has dimensions of time over time).
    exposure = cd * 0.5 * (mu_g1 + mu_g2)
    decay_constant = math.sqrt(t1 * t2)
    coherence_term = math.exp(-exposure / decay_constant) if decay_constant > 0 else 0.0

    gamma = calibration.average_single_qubit_error
    beta = calibration.average_cx_error
    omega = calibration.average_readout_error

    gate_term = ((1.0 - gamma) ** g1) * ((1.0 - beta) ** g2)
    spam_term = (1.0 - omega) ** m

    crosstalk_term = 1.0
    if crosstalk > 0.0 and g2 > 0:
        per_gate = min(1.0, crosstalk * max(connectivity, 1.0) / 4.0)
        crosstalk_term = (1.0 - per_gate) ** g2

    probability = coherence_term * gate_term * spam_term * crosstalk_term
    return float(min(1.0, max(0.0, probability)))
